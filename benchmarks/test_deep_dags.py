"""Deep DAGs (Bing/Scope-style, Table 1): packing gains persist, and the
barrier knob matters more when every job has many barriers.

The paper's Bing cluster runs Scope scripts with large DAG depth; deep
chains mean many barriers per job, so straggler promotion (Section 3.5)
gets more opportunities than on two-stage map-reduce.
"""

from conftest import print_table

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.workload.tracegen import BingTraceConfig, generate_bing_trace

MACHINES = 20


def test_deep_dag_workload(benchmark):
    trace = generate_bing_trace(
        BingTraceConfig(num_jobs=40, arrival_horizon=1200,
                        max_map_tasks=120, seed=13)
    )

    def regenerate():
        return run_comparison(
            trace,
            {
                "tetris": TetrisScheduler,
                "tetris-no-barrier": lambda: TetrisScheduler(
                    TetrisConfig(barrier_knob=0.0)
                ),
                "slot-fair": SlotFairScheduler,
                "drf": DRFScheduler,
            },
            ExperimentConfig(num_machines=MACHINES, seed=13,
                             use_tracker=True),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = [
        (name, r.mean_jct, r.makespan)
        for name, r in results.items()
    ]
    print_table(
        "Deep-DAG (Bing-style) workload",
        ["scheduler", "mean JCT", "makespan"],
        rows,
    )
    for baseline in ("slot-fair", "drf"):
        gain = improvement_percent(
            results[baseline].mean_jct, results["tetris"].mean_jct
        )
        print(f"Tetris JCT gain vs {baseline}: {gain:.1f}%")
        assert gain > 10.0, (baseline, gain)
    # barrier promotion never hurts on barrier-rich DAGs
    assert (
        results["tetris"].mean_jct
        <= results["tetris-no-barrier"].mean_jct * 1.05
    )
