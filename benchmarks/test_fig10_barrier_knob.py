"""Figure 10 / Section 5.3.3: the barrier knob.

Paper: promoting stragglers of a nearly-finished stage helps when the
threshold is high (b ~ 0.9); b < 0.75 preferentially treats too many
tasks, taking resources from other jobs, and is worse than not using
barrier promotion at all (b -> 1 / disabled).
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler

BARRIERS = (0.0, 0.5, 0.75, 0.9, 0.95)


def test_fig10_barrier_knob_sweep(benchmark):
    def regenerate():
        schedulers = {"drf": DRFScheduler}
        for b in BARRIERS:
            schedulers[f"b={b}"] = (
                lambda knob=b: TetrisScheduler(
                    TetrisConfig(barrier_knob=knob)
                )
            )
        return run_comparison(
            deploy_trace(),
            schedulers,
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1,
                             use_tracker=True),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    drf = results["drf"]

    gains = {}
    for b in BARRIERS:
        r = results[f"b={b}"]
        gains[b] = (
            improvement_percent(drf.mean_jct, r.mean_jct),
            improvement_percent(drf.makespan, r.makespan),
        )
    print_table(
        "Figure 10: gains vs DRF by barrier knob "
        "(paper: b~0.9 best; aggressive promotion hurts)",
        ["knob b", "JCT gain %", "makespan gain %"],
        [(b, j, m) for b, (j, m) in gains.items()],
    )

    # every setting still improves on DRF
    for b, (jct_gain, _) in gains.items():
        assert jct_gain > 0, (b, jct_gain)
    # a high threshold is at least as good as aggressive promotion
    assert gains[0.9][0] >= gains[0.5][0] - 5.0
    # and the recommended b=0.9 is competitive with disabling it
    assert gains[0.9][0] >= gains[0.0][0] - 10.0
