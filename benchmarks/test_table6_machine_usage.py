"""Table 6 / Section 5.2: machine-level resource usage per scheduler.

Paper: Tetris drives machines to high usage across all resources
without ever crossing capacity; CS and DRF under-use (fragmentation)
and occasionally over-allocate disk and network (the >100% column).
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
    standard_comparison,
)

from repro.analysis.tightness import machine_usage_tightness

THRESHOLDS = (0.6, 0.8, 1.0)
IO_DIMS = ("diskr", "diskw", "netin", "netout")


def test_table6_machine_level_usage(benchmark):
    def regenerate():
        # without the tracker: Section 3.2's base heuristic guarantees
        # booked demand never exceeds capacity (the tracker deliberately
        # re-packs reclaimed headroom, which can transiently overshoot)
        results = standard_comparison(
            deploy_trace(), DEPLOY_MACHINES, seed=1,
            track_machine_usage=True, use_tracker=False,
        )
        tightness = {
            name: machine_usage_tightness(
                result.collector.machine_usage_arrays(),
                thresholds=THRESHOLDS,
            )
            for name, result in results.items()
        }
        return results, tightness

    results, tightness = benchmark.pedantic(regenerate, rounds=1,
                                            iterations=1)

    rows = []
    for scheduler, by_resource in tightness.items():
        for resource, vals in sorted(by_resource.items()):
            rows.append(
                (f"{scheduler}/{resource}", vals[0.6], vals[0.8], vals[1.0])
            )
    print_table(
        "Table 6: P(machine uses resource above fraction of capacity)",
        ["scheduler/resource", ">60%", ">80%", ">100%"],
        rows,
    )

    # baselines over-allocate some I/O resource at machine level ...
    for baseline in ("capacity", "slot-fair", "drf"):
        over = max(tightness[baseline][d][1.0] for d in IO_DIMS)
        assert over > 0.0, baseline
    # ... Tetris never exceeds capacity on its locally-booked dimensions
    for dim in ("diskw", "netin", "mem"):
        assert tightness["tetris"][dim][1.0] == 0.0, dim
