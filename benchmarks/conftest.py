"""Shared setup for the per-table/figure benchmark harness.

Every module in this directory regenerates one table or figure of the
paper.  Heavy simulations run once per module in cached fixtures; the
``benchmark`` fixture then times the core computation so that
``pytest benchmarks/ --benchmark-only`` both reproduces the numbers
(printed in the paper's layout) and reports timings.

Scale note: the paper's testbed had 250 machines and its simulations
replayed a multi-thousand-machine trace.  The default scale here (tens
of machines, a few thousand tasks) keeps a full regeneration under a few
minutes of pure Python while preserving every *relative* result — who
wins, by roughly what factor, and where the knob knees fall.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence

from repro.bench.scenarios import (  # noqa: F401  (re-exported for benches)
    DEPLOY_MACHINES,
    DEPLOY_SUITE,
    FB_MACHINES,
    FB_TRACE,
)
from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.tracegen import (
    generate_facebook_trace,
    generate_workload_suite,
)


def deploy_trace():
    return generate_workload_suite(DEPLOY_SUITE)


def fb_trace():
    return generate_facebook_trace(FB_TRACE)


def standard_comparison(
    trace,
    num_machines: int,
    schedulers: Dict[str, Callable] = None,
    **config_kw,
):
    if schedulers is None:
        schedulers = {
            "tetris": TetrisScheduler,
            "capacity": CapacityScheduler,
            "slot-fair": SlotFairScheduler,
            "drf": DRFScheduler,
        }
    # the tracker is part of the Tetris system (Section 4.1); baselines
    # never consult it, so enabling it cluster-wide is harmless for them
    config_kw.setdefault("use_tracker", True)
    return run_comparison(
        trace,
        schedulers,
        ExperimentConfig(num_machines=num_machines, **config_kw),
    )


def print_table(title: str, header: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    """Print a paper-style table."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        cells = [
            f"{c:.2f}" if isinstance(c, float) else str(c) for c in row
        ]
        print("  ".join(c.ljust(w) for c, w in zip(cells, widths)))


def print_series(title: str, series: Dict[str, Sequence[float]]) -> None:
    print(f"\n=== {title} ===")
    for name, values in series.items():
        rendered = ", ".join(f"{v:.1f}" for v in values)
        print(f"{name}: {rendered}")
