"""Figure 1 / Section 2.1: DRF vs multi-resource packing on the 3-job
worked example.

Paper numbers: DRF finishes all three jobs at 6t; a packing schedule
finishes them at {2t, 3t, 4t} — average completion time down 50%,
makespan down 33%, and no job finishes later.
"""

from conftest import print_table

from repro.experiments.motivating import drf_schedule, packing_schedule


def test_fig1_drf_vs_packing(benchmark):
    def regenerate():
        return drf_schedule(), packing_schedule()

    drf, packing = benchmark(regenerate)

    print_table(
        "Figure 1: completion times (units of t)",
        ["job", "DRF", "packing"],
        [
            (name, drf.completion[name], packing.completion[name])
            for name in sorted(drf.completion)
        ],
    )
    print_table(
        "Figure 1: aggregates",
        ["metric", "DRF", "packing"],
        [
            ("avg completion", drf.average_completion,
             packing.average_completion),
            ("makespan", float(drf.makespan), float(packing.makespan)),
        ],
    )

    # the paper's exact outcome
    assert drf.completion == {"A": 6, "B": 6, "C": 6}
    assert sorted(packing.completion.values()) == [2, 3, 4]
    assert packing.average_completion / drf.average_completion == 0.5
    assert packing.makespan / drf.makespan == 4 / 6
    assert all(
        packing.completion[j] <= drf.completion[j] for j in drf.completion
    )
