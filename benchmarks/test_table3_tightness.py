"""Table 3 / Section 2.2.2: tightness of resources over time.

Paper (Facebook cluster, fair scheduler): multiple resources become
tight — CPU and memory are often above 60% of capacity, disk and
network spike above high thresholds a nontrivial fraction of the time —
and different resources are tight at different times, motivating
multi-resource packing.
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

from repro.analysis.tightness import utilization_tightness
from repro.experiments.harness import ExperimentConfig, run_trace
from repro.schedulers.slot_fair import SlotFairScheduler


def test_table3_resource_tightness(benchmark):
    def regenerate():
        result = run_trace(
            deploy_trace(),
            SlotFairScheduler(),
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1,
                             use_tracker=True),
        )
        return result, utilization_tightness(
            result.collector.timeline, thresholds=(0.6, 0.8, 0.95)
        )

    result, tightness = benchmark.pedantic(regenerate, rounds=1,
                                           iterations=1)

    print_table(
        "Table 3: P(resource usage above fraction of capacity) under the "
        "fair scheduler",
        ["resource", ">60%", ">80%", ">95%"],
        [
            (res, vals[0.6], vals[0.8], vals[0.95])
            for res, vals in sorted(tightness.items())
        ],
    )

    # at least two distinct resources get tight at some point
    tight_resources = [
        res for res, vals in tightness.items() if vals[0.6] > 0.02
    ]
    assert len(tight_resources) >= 2, tightness
    # and they are not always tight simultaneously: total time above 60%
    # varies across resources
    fractions = sorted(vals[0.6] for vals in tightness.values())
    assert fractions[-1] > fractions[0]
