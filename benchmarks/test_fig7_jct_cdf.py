"""Figure 7 / Section 5.3.1: simulated CDF of JCT improvement on the
Facebook-statistics trace.

Paper: ~40% average improvement vs the fair scheduler and ~30% vs DRF;
the top quintile improves >70%; gains reach ~90% of the simple upper
bound; fewer than 4% of jobs slow down.
"""

import numpy as np
from conftest import (
    FB_MACHINES,
    fb_trace,
    print_series,
    print_table,
)

from repro.cluster.cluster import Cluster
from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import (
    cdf_points,
    improvement_distribution,
    improvement_percent,
)
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.schedulers.upper_bound import aggregate_upper_bound
from repro.workload.trace import materialize_trace


def test_fig7_simulated_jct_improvement(benchmark):
    trace = fb_trace()

    def regenerate():
        runs = run_comparison(
            trace,
            {
                "tetris": TetrisScheduler,
                "slot-fair": SlotFairScheduler,
                "drf": DRFScheduler,
            },
            ExperimentConfig(num_machines=FB_MACHINES, seed=7,
                             use_tracker=True),
        )
        cluster = Cluster(FB_MACHINES, seed=7)
        jobs = materialize_trace(trace, cluster, seed=7)
        ub = aggregate_upper_bound(
            jobs, cluster.total_capacity(), cluster.machine_capacity()
        )
        return runs, ub

    runs, ub = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    tetris = runs["tetris"]

    rows = []
    for baseline in ("slot-fair", "drf"):
        base = runs[baseline]
        dist = improvement_distribution(
            base.completion_by_name(), tetris.completion_by_name()
        )
        cdf = cdf_points(dist, num_points=11)
        print_series(
            f"Figure 7: JCT improvement CDF vs {baseline}",
            {baseline: [v for v, _ in cdf]},
        )
        mean_gain = improvement_percent(base.mean_jct, tetris.mean_jct)
        ub_gain = improvement_percent(base.mean_jct, ub.mean_jct)
        slowed = sum(1 for v in dist if v < 0) / len(dist)
        rows.append(
            (baseline, mean_gain, ub_gain,
             100 * mean_gain / ub_gain if ub_gain > 0 else 0.0,
             100 * slowed, float(np.percentile(dist, 80)))
        )
    print_table(
        "Figure 7 summary (paper: ~40%/~30% gains; ~90% of UB; <4% of "
        "jobs slowed; top quintile >70%)",
        ["baseline", "mean gain %", "UB gain %", "% of UB",
         "% jobs slowed", "p80 gain %"],
        rows,
    )

    for baseline, mean_gain, ub_gain, frac_ub, slowed, p80 in rows:
        assert mean_gain > 15.0, (baseline, mean_gain)
        assert frac_ub > 30.0, (baseline, frac_ub)
        assert slowed < 35.0, (baseline, slowed)
        assert p80 > mean_gain, (baseline, p80)
