"""Figure 6 / Section 5.2.1: the resource-tracker microbenchmark.

Paper: ingestion begins on one machine; Tetris's tracker observes the
rising disk usage and stops scheduling tasks there (tasks already
running drain out), while the Capacity Scheduler proceeds unaware and
the resulting contention slows both its tasks and the ingestion itself.
"""

from conftest import print_table

from repro.activity.ingestion import ingestion
from repro.cluster.cluster import Cluster
from repro.estimation.tracker import ResourceTracker, TrackerConfig
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskWork
from repro.resources import DEFAULT_MODEL

NUM_MACHINES = 4
INGEST_MACHINE = 0


def _disk_job(num_tasks, arrival):
    tasks = [
        Task(
            DEFAULT_MODEL.vector(cpu=1, mem=2, diskw=100),
            TaskWork(cpu_core_seconds=2.0, write_mb=1000.0),
        )
        for _ in range(num_tasks)
    ]
    return Job([Stage("write", tasks)], arrival_time=arrival)


def _run(scheduler, use_tracker):
    cluster = Cluster(NUM_MACHINES, machines_per_rack=2, seed=3)
    tracker = None
    if use_tracker:
        tracker = ResourceTracker(
            cluster, TrackerConfig(report_period=1.0, ramp_seconds=2.0)
        )
    # ingestion loads machine 0's NIC and disk from t=50 on (120 MB/s:
    # nearly the full 125 MB/s NIC, leaving less disk headroom than one
    # task's 100 MB/s write demand)
    activity = ingestion(
        INGEST_MACHINE, start_time=50.0, size_mb=80_000, rate_mbps=120
    )
    jobs = [_disk_job(6, arrival=10.0 * i) for i in range(12)]
    engine = Engine(
        cluster,
        scheduler,
        jobs,
        activities=[activity],
        tracker=tracker,
        config=EngineConfig(tracker_period=1.0, seed=3),
    )
    engine.run()
    tasks = [t for j in jobs for t in j.all_tasks()]
    started_after = [
        t for t in tasks
        if t.machine_id == INGEST_MACHINE and t.start_time > 55.0
    ]
    overlapping = [
        t for t in tasks
        if t.machine_id == INGEST_MACHINE
        and t.finish_time > 50.0
    ]
    mean_duration = sum(t.duration for t in tasks) / len(tasks)
    return {
        "started_on_loaded_after_ingest": len(started_after),
        "running_on_loaded_during_ingest": len(overlapping),
        "mean_task_duration": mean_duration,
        "ingest_duration": activity.finish_time - activity.start_time,
    }


def test_fig6_tracker_steers_around_ingestion(benchmark):
    def regenerate():
        tetris = _run(
            TetrisScheduler(TetrisConfig(fairness_knob=0.0)),
            use_tracker=True,
        )
        cs = _run(CapacityScheduler(), use_tracker=False)
        return tetris, cs

    tetris, cs = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print_table(
        "Figure 6: behaviour under ingestion on one machine",
        ["metric", "Tetris+tracker", "Capacity"],
        [
            ("tasks started on loaded machine after ingest",
             float(tetris["started_on_loaded_after_ingest"]),
             float(cs["started_on_loaded_after_ingest"])),
            ("tasks contending with ingestion",
             float(tetris["running_on_loaded_during_ingest"]),
             float(cs["running_on_loaded_during_ingest"])),
            ("mean task duration (s)",
             tetris["mean_task_duration"], cs["mean_task_duration"]),
            ("ingestion duration (s)",
             tetris["ingest_duration"], cs["ingest_duration"]),
        ],
    )

    # Tetris stops scheduling on the loaded machine; its running tasks
    # drain out and nothing contends with ingestion for long
    assert tetris["started_on_loaded_after_ingest"] == 0
    # CS leaves tasks grinding against the ingestion stream: both the
    # tasks and the ingestion slow down dramatically (the Figure 6 story)
    assert cs["running_on_loaded_during_ingest"] > 0
    assert cs["mean_task_duration"] > 2 * tetris["mean_task_duration"]
    assert cs["ingest_duration"] > 1.2 * tetris["ingest_duration"]
