"""Figure 11 / Section 5.3.3: gains grow with cluster load.

Paper: halving the number of servers doubles load; at 4x the original
load Tetris improves makespan by well over 50% and average completion
time by over 40%.  At trivial load there is nothing to pack and gains
shrink.
"""

from conftest import deploy_trace, print_table

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler

#: machine counts: 40 is light load for this trace, 10 is ~4x that load
MACHINE_COUNTS = (40, 20, 10)


def test_fig11_gains_vs_cluster_load(benchmark):
    trace = deploy_trace()

    def regenerate():
        out = {}
        for machines in MACHINE_COUNTS:
            out[machines] = run_comparison(
                trace,
                {"tetris": TetrisScheduler, "slot-fair": SlotFairScheduler},
                ExperimentConfig(num_machines=machines, seed=1,
                                 use_tracker=True),
            )
        return out

    by_load = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    gains = {}
    for machines in MACHINE_COUNTS:
        runs = by_load[machines]
        jct_gain = improvement_percent(
            runs["slot-fair"].mean_jct, runs["tetris"].mean_jct
        )
        makespan_gain = improvement_percent(
            runs["slot-fair"].makespan, runs["tetris"].makespan
        )
        gains[machines] = (jct_gain, makespan_gain)
        rows.append(
            (f"{machines} machines (load x{MACHINE_COUNTS[0]/machines:.0f})",
             jct_gain, makespan_gain)
        )
    print_table(
        "Figure 11: Tetris gains vs slot-fair as load grows "
        "(paper: gains increase with load)",
        ["configuration", "JCT gain %", "makespan gain %"],
        rows,
    )

    # gains at the highest load clearly exceed gains at the lightest
    light = gains[MACHINE_COUNTS[0]]
    heavy = gains[MACHINE_COUNTS[-1]]
    assert heavy[0] > light[0], (light, heavy)
    assert heavy[0] > 20.0
