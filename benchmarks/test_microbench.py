"""Core-operation micro-benchmarks.

Not a paper figure — these time the hot paths that make the whole
reproduction tractable in pure Python: the vectorized fluid-rate
recomputation, flow advancement, the stage-index candidate lookup, and
the Tetris packing round (scalar reference vs the batched engine).
They guard against performance regressions as the library evolves.
"""

import dataclasses
from time import perf_counter

import pytest
from conftest import print_table

from repro.bench.scenarios import get_scenario, packing_state
from repro.cluster.cluster import Cluster
from repro.profiling import Profiler
from repro.resources import DEFAULT_MODEL
from repro.schedulers.stage_index import StageIndex
from repro.sim.fluid import FlowSpec, FlowTable
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskInput, TaskWork


def loaded_flow_table(num_machines=100, flows_per_machine=8):
    table = FlowTable(
        DEFAULT_MODEL,
        [
            DEFAULT_MODEL.vector(cpu=16, mem=48, diskr=200, diskw=200,
                                 netin=125, netout=125).data
            for _ in range(num_machines)
        ],
    )
    for machine in range(num_machines):
        for k in range(flows_per_machine):
            dim = ("cpu", "diskr", "diskw", "netin")[k % 4]
            table.add_flow(
                FlowSpec(work=1e6, nominal_rate=30 + k,
                         slots=((machine, dim),))
            )
    return table


def test_fluid_rate_recomputation(benchmark):
    table = loaded_flow_table()

    def recompute():
        table._rates_dirty = True
        return table.time_to_next_completion()

    result = benchmark(recompute)
    assert result > 0


def test_fluid_advance(benchmark):
    table = loaded_flow_table()

    def advance():
        table._rates_dirty = True
        return table.advance(0.001)

    completed = benchmark(advance)
    assert completed == []


def test_slot_demand_observation(benchmark):
    table = loaded_flow_table()
    demand = benchmark(table.slot_demand)
    assert demand.shape[0] == 100


def test_stage_index_candidate_lookup(benchmark):
    cluster = Cluster(50, seed=0)
    tasks = []
    for i in range(5000):
        block = cluster.blockstore.add_block(64.0)
        tasks.append(
            Task(
                DEFAULT_MODEL.vector(cpu=1, mem=1),
                TaskWork(cpu_core_seconds=10.0),
                inputs=[TaskInput(64.0, block.replicas)],
            )
        )
    stage = Stage("big", tasks)
    Job([stage])
    index = StageIndex()
    index.add_stage(stage)

    def lookup():
        local = index.local_candidate(stage, 7)
        any_ = index.any_candidate(stage)
        return local, any_

    local, any_ = benchmark(lookup)
    assert any_ is not None


# ---------------------------------------------------------------------------
# Tetris packing round: scalar reference vs batched engine
# ---------------------------------------------------------------------------

def _packing_state(vectorized):
    """A 100-machine x 200-job scheduler mid-simulation: every machine
    partially loaded, every job with pending work.  The workload is the
    ``packing-full`` bench scenario, so this pytest benchmark and
    ``repro bench run`` time the identical state."""
    scenario = dataclasses.replace(
        get_scenario("packing-full"), vectorized=vectorized
    )
    return packing_state(scenario)


def _round_time(scheduler, machine_ids, rounds=3, warmup=1):
    """Mean wall-clock of one full scheduling round over ``machine_ids``.

    Rounds are made repeatable by undoing the scheduler's tentative state
    (claims, remote grants) between passes; placements are returned so
    the caller can cross-check scalar vs vectorized decisions.
    """
    prof = Profiler()
    placements = None
    for i in range(warmup + rounds):
        scheduler.index.reset_claims()
        scheduler._remote_granted.clear()
        scheduler._remote_by_task.clear()
        start = perf_counter()
        out = scheduler.schedule(0.0, machine_ids)
        elapsed = perf_counter() - start
        if i >= warmup:
            prof.record("round", elapsed)
        placements = out
    return prof.stats("round").mean, placements


def test_packing_round_vectorized_speedup():
    """The tentpole acceptance bar: the batched packing engine is >= 3x
    faster per scheduling round than the scalar reference on a
    100-machine x 200-job workload — with identical decisions."""
    machine_ids = list(range(100))
    scalar = _packing_state(vectorized=False)
    vector = _packing_state(vectorized=True)
    scalar_mean, scalar_placed = _round_time(scalar, machine_ids)
    vector_mean, vector_placed = _round_time(vector, machine_ids)

    scalar_key = [
        (p.task.job.name, p.task.index, p.machine_id)
        for p in scalar_placed
    ]
    vector_key = [
        (p.task.job.name, p.task.index, p.machine_id)
        for p in vector_placed
    ]
    assert scalar_key == vector_key, "paths diverged"
    assert len(scalar_key) > 0

    speedup = scalar_mean / vector_mean
    print_table(
        "Packing round, 100 machines x 200 jobs (4000 pending tasks)",
        ["path", "mean round (ms)"],
        [("scalar", scalar_mean * 1e3),
         ("vectorized", vector_mean * 1e3),
         ("speedup (x)", speedup)],
    )
    assert speedup >= 3.0, f"only {speedup:.2f}x"


@pytest.mark.parametrize("vectorized", [False, True],
                         ids=["scalar", "vectorized"])
def test_packing_round_cost(benchmark, vectorized):
    """Absolute per-round cost of each path, for the record."""
    scheduler = _packing_state(vectorized=vectorized)
    machine_ids = list(range(100))

    def one_round():
        scheduler.index.reset_claims()
        scheduler._remote_granted.clear()
        scheduler._remote_by_task.clear()
        return scheduler.schedule(0.0, machine_ids)

    placements = benchmark.pedantic(one_round, rounds=3, warmup_rounds=1)
    assert len(placements) > 0
