"""Core-operation micro-benchmarks.

Not a paper figure — these time the hot paths that make the whole
reproduction tractable in pure Python: the vectorized fluid-rate
recomputation, flow advancement, and the stage-index candidate lookup.
They guard against performance regressions as the library evolves.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.stage_index import StageIndex
from repro.sim.fluid import FlowSpec, FlowTable
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskInput, TaskWork


def loaded_flow_table(num_machines=100, flows_per_machine=8):
    table = FlowTable(
        DEFAULT_MODEL,
        [
            DEFAULT_MODEL.vector(cpu=16, mem=48, diskr=200, diskw=200,
                                 netin=125, netout=125).data
            for _ in range(num_machines)
        ],
    )
    for machine in range(num_machines):
        for k in range(flows_per_machine):
            dim = ("cpu", "diskr", "diskw", "netin")[k % 4]
            table.add_flow(
                FlowSpec(work=1e6, nominal_rate=30 + k,
                         slots=((machine, dim),))
            )
    return table


def test_fluid_rate_recomputation(benchmark):
    table = loaded_flow_table()

    def recompute():
        table._rates_dirty = True
        return table.time_to_next_completion()

    result = benchmark(recompute)
    assert result > 0


def test_fluid_advance(benchmark):
    table = loaded_flow_table()

    def advance():
        table._rates_dirty = True
        return table.advance(0.001)

    completed = benchmark(advance)
    assert completed == []


def test_slot_demand_observation(benchmark):
    table = loaded_flow_table()
    demand = benchmark(table.slot_demand)
    assert demand.shape[0] == 100


def test_stage_index_candidate_lookup(benchmark):
    cluster = Cluster(50, seed=0)
    tasks = []
    for i in range(5000):
        block = cluster.blockstore.add_block(64.0)
        tasks.append(
            Task(
                DEFAULT_MODEL.vector(cpu=1, mem=1),
                TaskWork(cpu_core_seconds=10.0),
                inputs=[TaskInput(64.0, block.replicas)],
            )
        )
    stage = Stage("big", tasks)
    Job([stage])
    index = StageIndex()
    index.add_stage(stage)

    def lookup():
        local = index.local_candidate(stage, 7)
        any_ = index.any_candidate(stage)
        return local, any_

    local, any_ = benchmark(lookup)
    assert any_ is not None
