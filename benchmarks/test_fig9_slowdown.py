"""Figure 9 + relative integral unfairness / Section 5.3.2.

Paper: with f in [0.25, 0.5] only a few percent of jobs slow down and
only slightly; f = 0 (most efficient, most unfair) slows more jobs;
even f -> 1 slows some jobs (statistical noise + packing-driven task
order).  The relative-integral-unfairness check shows violations of
fair allocation are transient: ~7% of jobs net-negative, ~5% magnitude.
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

import numpy as np

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.fairness import (
    relative_integral_unfairness_summary,
    slowdown_summary,
)
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler

KNOBS = (0.0, 0.25, 0.5, 0.99)
#: ignore sub-5% jitters, as CDF eyeballing in the paper effectively does
SLOWDOWN_THRESHOLD = 0.05


def test_fig9_job_slowdown_vs_knob(benchmark):
    def regenerate():
        schedulers = {"slot-fair": SlotFairScheduler}
        for f in KNOBS:
            schedulers[f"f={f}"] = (
                lambda knob=f: TetrisScheduler(
                    TetrisConfig(fairness_knob=knob)
                )
            )
        return run_comparison(
            deploy_trace(),
            schedulers,
            ExperimentConfig(
                num_machines=DEPLOY_MACHINES, seed=1, track_fairness=True,
                use_tracker=True,
            ),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    fair_jcts = results["slot-fair"].completion_by_name()

    rows = []
    summaries = {}
    for f in KNOBS:
        summary = slowdown_summary(
            fair_jcts,
            results[f"f={f}"].completion_by_name(),
            threshold=SLOWDOWN_THRESHOLD,
        )
        summaries[f] = summary
        rows.append(
            (f, 100 * summary.fraction_slowed,
             100 * summary.mean_slowdown_of_slowed,
             100 * summary.max_slowdown)
        )
    print_table(
        "Figure 9: job slowdown vs fair scheduler by knob "
        "(paper: f in [0.25,0.5] slows only a few %, slightly)",
        ["knob f", "% jobs slowed", "mean slowdown %", "max slowdown %"],
        rows,
    )

    # the knob works: moving toward fairness never slows *more* jobs
    # than the most aggressive setting by a wide margin
    assert (
        summaries[0.25].fraction_slowed
        <= summaries[0.0].fraction_slowed + 0.10
    )
    # at the recommended setting the impact is limited
    assert summaries[0.25].fraction_slowed < 0.40

    # relative integral unfairness at the recommended knob
    r = results["f=0.25"]
    runtimes = {
        job.job_id: job.completion_time
        for job in r.jobs
        if job.completion_time
    }
    riu = relative_integral_unfairness_summary(
        r.collector.unfairness_integral, runtimes
    )
    print_table(
        "Relative integral unfairness at f=0.25 "
        "(paper: ~7% of jobs negative, ~5% average magnitude)",
        ["metric", "value"],
        sorted(riu.items()),
    )
    assert riu["fraction_negative"] < 0.75
