"""Section 5.3.1 ablations: where do the gains come from?

Paper: task durations improve ~20% (from avoiding over-allocation);
restricting Tetris to CPU+memory (so it over-allocates I/O like the
baselines) forfeits roughly two-thirds of the gains; SRTF alone and
packing alone are each worse than the combination.
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.packing_only import PackingOnlyScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.srtf import SRTFScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler


def test_ablations(benchmark):
    def regenerate():
        return run_comparison(
            deploy_trace(),
            {
                "slot-fair": SlotFairScheduler,
                "tetris": TetrisScheduler,
                "tetris-cpu-mem": lambda: TetrisScheduler(
                    TetrisConfig(considered_dims=("cpu", "mem"))
                ),
                "srtf-only": SRTFScheduler,
                "packing-only": PackingOnlyScheduler,
            },
            # no tracker here: the ablation isolates the *scheduling
            # heuristics*; reclamation would blur their differences
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1,
                             use_tracker=False),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    fair = results["slot-fair"]

    rows = []
    for name, result in results.items():
        rows.append(
            (
                name,
                result.mean_jct,
                result.makespan,
                result.collector.mean_task_duration(),
                improvement_percent(fair.mean_jct, result.mean_jct),
                improvement_percent(fair.makespan, result.makespan),
            )
        )
    print_table(
        "Section 5.3.1 ablations (gains are % vs slot-fair)",
        ["scheduler", "mean JCT", "makespan", "task dur",
         "JCT gain %", "makespan gain %"],
        rows,
    )

    tetris = results["tetris"]

    # avoiding over-allocation shortens tasks
    assert (
        tetris.collector.mean_task_duration()
        < fair.collector.mean_task_duration()
    )
    # CPU+mem-only Tetris forfeits most of the gain (paper: roughly
    # two-thirds of the gains come from avoiding I/O over-allocation)
    full_gain = improvement_percent(fair.mean_jct, tetris.mean_jct)
    partial_gain = improvement_percent(
        fair.mean_jct, results["tetris-cpu-mem"].mean_jct
    )
    assert partial_gain < 0.5 * full_gain, (partial_gain, full_gain)
    # both single-heuristic variants and the combination beat the fair
    # baseline decisively ...
    for variant in ("tetris", "srtf-only", "packing-only"):
        gain = improvement_percent(
            fair.mean_jct, results[variant].mean_jct
        )
        assert gain > 25.0, (variant, gain)
    # ... and the combination is within 15% of the better half on each
    # metric (on this synthetic workload the two halves nearly tie; see
    # EXPERIMENTS.md for the deviation note)
    assert tetris.mean_jct <= 1.15 * min(
        results["srtf-only"].mean_jct, results["packing-only"].mean_jct
    )
    assert tetris.makespan <= 1.15 * min(
        results["srtf-only"].makespan, results["packing-only"].makespan
    )
