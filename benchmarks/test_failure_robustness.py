"""Failure robustness: the paper's simulator replays per-task failure
probabilities; Tetris's gains should survive them.

Failures re-run tasks, adding load and breaking estimator assumptions
mid-flight.  This benchmark injects a 10% per-attempt failure rate into
both Tetris and the slot-fair baseline.
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

from repro.experiments.harness import ExperimentConfig, run_trace
from repro.metrics.comparison import improvement_percent
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.engine import EngineConfig

FAILURE_PROB = 0.1


def _config(prob):
    return ExperimentConfig(
        num_machines=DEPLOY_MACHINES,
        seed=1,
        use_tracker=True,
        engine_config=EngineConfig(
            seed=1, task_failure_prob=prob
        ),
    )


def test_gains_survive_task_failures(benchmark):
    trace = deploy_trace()

    def regenerate():
        out = {}
        for prob in (0.0, FAILURE_PROB):
            for name, factory in (
                ("tetris", TetrisScheduler),
                ("slot-fair", SlotFairScheduler),
            ):
                out[(name, prob)] = run_trace(
                    trace, factory(), _config(prob)
                )
        return out

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for prob in (0.0, FAILURE_PROB):
        tetris = results[("tetris", prob)]
        fair = results[("slot-fair", prob)]
        gain = improvement_percent(fair.mean_jct, tetris.mean_jct)
        rows.append(
            (f"p={prob}", tetris.mean_jct, fair.mean_jct, gain,
             float(tetris.collector.task_failures))
        )
    print_table(
        "Failure robustness: Tetris vs slot-fair with task retries",
        ["failure prob", "tetris JCT", "fair JCT", "gain %",
         "tetris retries"],
        rows,
    )

    clean_gain = rows[0][3]
    flaky_gain = rows[1][3]
    # failures happened and were absorbed
    assert results[("tetris", FAILURE_PROB)].collector.task_failures > 0
    # every job still finished
    for result in results.values():
        assert len(result.collector.jobs) == len(trace)
    # the gain survives (within a broad band of the clean gain)
    assert flaky_gain > 0.5 * clean_gain, (clean_gain, flaky_gain)
