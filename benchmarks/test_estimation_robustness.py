"""Estimation-error robustness (Section 4.1's design rationale).

The paper argues Tetris tolerates imperfect demand estimates because the
resource tracker reports actual usage and the scheduler corrects course:
over-estimates idle resources the tracker reclaims; under-estimates show
up as observed load.  This benchmark sweeps multiplicative estimate
noise with the tracker on and off: gains over the fair baseline should
degrade gracefully, and the tracker should recover part of the loss at
high noise.
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

from repro.estimation.estimator import NoisyEstimator
from repro.experiments.harness import ExperimentConfig, run_trace
from repro.metrics.comparison import improvement_percent
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler

SIGMAS = (0.0, 0.25, 0.5)


def test_estimation_noise_robustness(benchmark):
    trace = deploy_trace()

    def regenerate():
        fair = run_trace(
            trace, SlotFairScheduler(),
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1),
        )
        out = {"fair_jct": fair.mean_jct}
        for sigma in SIGMAS:
            for tracker in (False, True):
                config = ExperimentConfig(
                    num_machines=DEPLOY_MACHINES,
                    seed=1,
                    use_tracker=tracker,
                    estimator_factory=(
                        (lambda s=sigma: NoisyEstimator(sigma=s, seed=3))
                        if sigma > 0
                        else None
                    ),
                )
                result = run_trace(trace, TetrisScheduler(), config)
                out[(sigma, tracker)] = result.mean_jct
        return out

    data = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    fair_jct = data["fair_jct"]

    rows = []
    gains = {}
    for sigma in SIGMAS:
        for tracker in (False, True):
            gain = improvement_percent(fair_jct, data[(sigma, tracker)])
            gains[(sigma, tracker)] = gain
            rows.append(
                (f"sigma={sigma} tracker={'on' if tracker else 'off'}",
                 data[(sigma, tracker)], gain)
            )
    print_table(
        "Estimation-noise robustness: Tetris JCT gain vs slot-fair",
        ["configuration", "mean JCT", "gain %"],
        rows,
    )

    # perfect estimates give the headline gains
    assert gains[(0.0, True)] > 25.0
    # even with heavy lognormal noise Tetris never falls behind the
    # baseline (graceful degradation)
    for sigma in SIGMAS:
        assert gains[(sigma, True)] > 0.0, sigma
        assert gains[(sigma, False)] > 0.0, sigma
    # the tracker recovers ground at the highest noise level
    assert gains[(0.5, True)] >= gains[(0.5, False)] - 5.0
