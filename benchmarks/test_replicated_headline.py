"""Headline claim with error bars: Tetris vs baselines across seeds.

The paper repeats each deployment run five times; this benchmark
replays the deployment-style comparison across five seeds (workload and
simulation randomness both vary) and reports mean ± std of the gains —
the statistically honest version of Figure 4.
"""

from conftest import print_table

from repro.experiments.replication import replicate
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite

SEEDS = (1, 2, 3, 4, 5)
MACHINES = 14


def make_trace(seed):
    return generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=25, task_scale=0.04,
                            arrival_horizon=700, seed=seed)
    )


def test_replicated_headline_gains(benchmark):
    def regenerate():
        return replicate(
            make_trace,
            {
                "tetris": TetrisScheduler,
                "slot-fair": SlotFairScheduler,
                "drf": DRFScheduler,
            },
            seeds=SEEDS,
            num_machines=MACHINES,
            use_tracker=True,
        )

    replicated = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for baseline in ("slot-fair", "drf"):
        jct = replicated.improvement(baseline, "tetris", "mean_jct")
        makespan = replicated.improvement(baseline, "tetris", "makespan")
        rows.append(
            (f"vs {baseline}", str(jct), str(makespan))
        )
    print_table(
        f"Figure 4 with error bars ({len(SEEDS)} seeds): Tetris gains (%)",
        ["baseline", "JCT gain", "makespan gain"],
        rows,
    )

    for baseline in ("slot-fair", "drf"):
        jct = replicated.improvement(baseline, "tetris", "mean_jct")
        # the JCT gain is positive beyond one standard deviation and on
        # every individual seed
        assert jct.mean - jct.std > 0, (baseline, jct)
        assert all(v > 0 for v in jct.values), (baseline, jct.values)
