"""Table 2 / Section 2.2.2: cross-resource demand correlation.

Paper: even the strongest pair (cores-memory) is only moderately
correlated (~0.55 on Bing, ~0.64 on Facebook); most pairs are near zero
— demands are complementary, which is what packing exploits.
"""

from conftest import FB_MACHINES, fb_trace, print_table

from repro.analysis.correlation import demand_correlation_matrix
from repro.cluster.cluster import Cluster
from repro.workload.trace import materialize_trace


def test_table2_correlation_matrix(benchmark):
    cluster = Cluster(FB_MACHINES)
    jobs = materialize_trace(fb_trace(), cluster, seed=0)
    tasks = [t for j in jobs for t in j.all_tasks()]

    corr = benchmark(demand_correlation_matrix, tasks)

    print_table(
        "Table 2: correlation of task resource demands "
        "(paper: all pairs weak; max ~0.64)",
        ["pair", "correlation"],
        [(f"{a}-{b}", v) for (a, b), v in sorted(corr.items())],
    )

    for pair, value in corr.items():
        assert abs(value) < 0.65, (pair, value)
    # and no *strong* average correlation overall
    mean_abs = sum(abs(v) for v in corr.values()) / len(corr)
    assert mean_abs < 0.35
