"""Why Tetris is greedy: decision latency vs a flow-network scheduler.

Section 5.2.2: "scalability was a key reason behind our choice to avoid
more complex solutions based on flow-networks and integer linear
programming".  This benchmark times one scheduling round of Tetris's
greedy matcher against a Quincy-style min-cost-flow solve on identical
pending-task state, at growing scale — the flow solve cost grows far
faster than the heartbeat-time greedy match.
"""

import time

import pytest
from conftest import print_table

from repro.cluster.cluster import Cluster
from repro.schedulers.flow_network import FlowNetworkScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskWork
from repro.resources import DEFAULT_MODEL

SCALES = (200, 1000)
MACHINES = 50


def _pending_jobs(num_tasks):
    jobs = []
    per_job = 50
    for j in range(num_tasks // per_job):
        tasks = [
            Task(
                DEFAULT_MODEL.vector(cpu=2, mem=4, diskr=30),
                TaskWork(cpu_core_seconds=60.0),
            )
            for _ in range(per_job)
        ]
        jobs.append(Job([Stage("work", tasks)], arrival_time=0.0))
    return jobs


def _prepare(scheduler, num_tasks):
    """Pending backlog on a nearly-full cluster, as after a task finish:
    each heartbeat can place at most a task or two."""
    cluster = Cluster(MACHINES, seed=0)
    scheduler.bind(cluster)
    for job in _pending_jobs(num_tasks):
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
    for machine in cluster.machines:
        filler = Task(
            DEFAULT_MODEL.vector(cpu=13, mem=40, diskr=150),
            TaskWork(cpu_core_seconds=1e6),
        )
        filler.mark_runnable()
        machine.place(filler, filler.demands)
        # keep the flow scheduler's slot books consistent with the fill
        if hasattr(scheduler, "_slots_free"):
            scheduler._slots_free[machine.machine_id] = 2
    return scheduler


def _time_round(scheduler, *args) -> float:
    start = time.perf_counter()
    scheduler.schedule(*args)
    return (time.perf_counter() - start) * 1e3


def test_flow_network_vs_greedy_latency(benchmark):
    def regenerate():
        rows = []
        for scale in SCALES:
            tetris = _prepare(
                TetrisScheduler(TetrisConfig(fairness_knob=0.0)), scale
            )
            # one NM heartbeat: match tasks for the machine that reported
            tetris_ms = _time_round(tetris, 0.0, [0])
            flow = _prepare(
                FlowNetworkScheduler(max_tasks_per_round=scale), scale
            )
            # a flow scheduler must re-solve the *global* problem to
            # react to the same single machine's freed resources
            flow_ms = _time_round(flow, 0.0)
            rows.append((scale, tetris_ms, flow_ms))
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print_table(
        "Per-heartbeat cost (ms): Tetris greedy match vs global "
        "min-cost-flow re-solve (Section 5.2.2's scalability argument)",
        ["pending tasks", "Tetris greedy", "flow network"],
        [(s, t, f) for s, t, f in rows],
    )

    # reacting to one machine's heartbeat is far cheaper for the greedy
    # matcher than a global flow re-solve ...
    for scale, tetris_ms, flow_ms in rows:
        assert flow_ms > 2 * tetris_ms, (scale, tetris_ms, flow_ms)
    # ... and stays cheap as the backlog grows
    assert rows[-1][1] < 100.0, rows
