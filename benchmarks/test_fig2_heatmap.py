"""Figure 2 / Section 2.2.2: diversity of task resource demands.

Paper: demands vary over orders of magnitude — CPU from a tenth of a
core to several cores, memory from hundreds of MB to >10 GB; CoVs of
1.52 (CPU), 0.77 (memory), 1.74 (disk), 1.35 (network); minimum demands
are far below the median which is far below the max.
"""

import numpy as np
from conftest import FB_MACHINES, fb_trace, print_table

from repro.analysis.correlation import demand_matrix
from repro.analysis.heatmap import demand_cov, demand_heatmap
from repro.cluster.cluster import Cluster
from repro.workload.trace import materialize_trace


def _tasks():
    cluster = Cluster(FB_MACHINES)
    jobs = materialize_trace(fb_trace(), cluster, seed=0)
    return [t for j in jobs for t in j.all_tasks()]


def test_fig2_demand_heatmap_and_cov(benchmark):
    tasks = _tasks()

    def regenerate():
        heatmaps = {
            pair: demand_heatmap(tasks, *pair)[0]
            for pair in (
                ("cores", "memory"),
                ("cores", "disk"),
                ("cores", "network"),
            )
        }
        return heatmaps, demand_cov(tasks)

    heatmaps, cov = benchmark(regenerate)

    print_table(
        "Figure 2 stats: demand coefficient of variation "
        "(paper: cpu 1.52, mem 0.77, disk 1.74, net 1.35)",
        ["resource", "CoV"],
        sorted(cov.items()),
    )
    matrix = demand_matrix(tasks)
    rows = []
    for k, name in enumerate(["cores", "memory", "disk", "network"]):
        col = matrix[:, k]
        positive = col[col > 0]
        rows.append(
            (name, float(positive.min()), float(np.median(positive)),
             float(positive.max()))
        )
    print_table(
        "Figure 2 stats: demand ranges", ["resource", "min", "median", "max"],
        rows,
    )

    # heatmaps are spread out, not concentrated in one cell
    for pair, counts in heatmaps.items():
        occupied = (counts > 0).sum()
        assert occupied >= 10, f"degenerate heatmap for {pair}"
    # strong diversity on every resource
    for resource, value in cov.items():
        assert value > 0.4, (resource, value)
    # min << median << max, as in the paper's reading of Figure 2
    for name, lo, med, hi in rows:
        assert lo < med / 2
        assert hi > med * 2
