"""Figure 8 / Section 5.3.2: the fairness-performance trade-off.

Paper: f ~ 0.25 captures nearly all of the efficiency; gains plateau
beyond f = 0.5 for completion time; even f -> 1 (always serve the most
deprived job, picking only *which task* to pack) retains sizable gains.
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler

KNOBS = (0.0, 0.25, 0.5, 0.75, 0.99)


def test_fig8_fairness_knob_sweep(benchmark):
    def regenerate():
        schedulers = {"slot-fair": SlotFairScheduler}
        for f in KNOBS:
            schedulers[f"f={f}"] = (
                lambda knob=f: TetrisScheduler(
                    TetrisConfig(fairness_knob=knob)
                )
            )
        return run_comparison(
            deploy_trace(),
            schedulers,
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1,
                             use_tracker=True),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    fair = results["slot-fair"]

    gains = {}
    for f in KNOBS:
        r = results[f"f={f}"]
        gains[f] = (
            improvement_percent(fair.mean_jct, r.mean_jct),
            improvement_percent(fair.makespan, r.makespan),
        )
    print_table(
        "Figure 8: gains vs slot-fair by fairness knob "
        "(paper: f~0.25 near-best; f->1 still sizable)",
        ["knob f", "JCT gain %", "makespan gain %"],
        [(f, j, m) for f, (j, m) in gains.items()],
    )

    best_jct = max(j for j, _ in gains.values())
    best_makespan = max(m for _, m in gains.values())
    # f = 0.25 achieves most of the best gains (paper: within ~10%)
    assert gains[0.25][0] > best_jct - 15.0
    assert gains[0.25][1] > best_makespan - 15.0
    # the near-perfectly-fair end still shows sizable improvement
    assert gains[0.99][0] > 5.0
    assert gains[0.99][1] > 5.0
