"""Figure 5 / Section 5.2: running-task counts and resource utilization
timelines for Tetris, Capacity Scheduler and DRF.

Paper: Tetris keeps consistently more tasks running; its cluster is
bottlenecked on *different* resources at different times; CS fails to
fully use even the resources it explicitly schedules and over-allocates
disk/network past 100%; DRF is slightly better but qualitatively the
same.
"""

import numpy as np
from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
    standard_comparison,
)

IO_DIMS = ("diskr", "diskw", "netin", "netout")


def _peak_and_mean(result, resource):
    series = [
        p.demand_utilization[resource] for p in result.collector.timeline
    ]
    return float(np.max(series)), float(np.mean(series))


def test_fig5_running_tasks_and_utilization(benchmark):
    def regenerate():
        return standard_comparison(deploy_trace(), DEPLOY_MACHINES, seed=1)

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    # Figure 5a: number of running tasks
    rows = []
    for name, result in results.items():
        counts = [p.running_tasks for p in result.collector.timeline]
        rows.append((name, float(np.mean(counts)), float(np.max(counts))))
    print_table(
        "Figure 5a: running tasks (mean, peak)",
        ["scheduler", "mean", "peak"],
        rows,
    )

    # Figures 5b-5d: utilization
    util_rows = []
    for name, result in results.items():
        for resource in ("cpu", "mem") + IO_DIMS:
            peak, mean = _peak_and_mean(result, resource)
            util_rows.append((f"{name}/{resource}", mean, peak))
    print_table(
        "Figure 5b-d: demand utilization (fraction of capacity)",
        ["scheduler/resource", "mean", "peak"],
        util_rows,
    )

    # CS/slot-fair over-allocate some I/O dimension past 100% ...
    for baseline in ("capacity", "slot-fair", "drf"):
        peak_io = max(
            _peak_and_mean(results[baseline], d)[0] for d in IO_DIMS
        )
        assert peak_io > 1.0, (baseline, peak_io)
    # ... Tetris never does on the dimensions it books locally
    for dim in ("diskw", "netin"):
        peak, _ = _peak_and_mean(results["tetris"], dim)
        assert peak <= 1.0 + 1e-9, (dim, peak)

    # Tetris is bottlenecked on different resources at different times:
    # more than one resource is the argmax of utilization somewhere
    argmax_resources = set()
    for point in results["tetris"].collector.timeline:
        util = point.demand_utilization
        if not util:
            continue
        busiest = max(util, key=util.get)
        if util[busiest] > 0.5:
            argmax_resources.add(busiest)
    assert len(argmax_resources) >= 2, argmax_resources
