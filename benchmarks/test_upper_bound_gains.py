"""Section 2.3: the loose upper bound on packing gains.

Paper: the aggregated-bin relaxation suggests packing could cut
makespan (average JCT) substantially versus slot-based fair scheduling
and versus DRF, and Section 5 reports Tetris achieving roughly 90% of
these estimated gains.
"""

from conftest import DEPLOY_MACHINES, deploy_trace, print_table

from repro.cluster.cluster import Cluster
from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.schedulers.upper_bound import aggregate_upper_bound
from repro.workload.trace import materialize_trace


def test_upper_bound_gains(benchmark):
    trace = deploy_trace()

    def regenerate():
        cluster = Cluster(DEPLOY_MACHINES, seed=1)
        jobs = materialize_trace(trace, cluster, seed=1)
        ub = aggregate_upper_bound(
            jobs, cluster.total_capacity(), cluster.machine_capacity()
        )
        runs = run_comparison(
            trace,
            {
                "tetris": TetrisScheduler,
                "slot-fair": SlotFairScheduler,
                "drf": DRFScheduler,
            },
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1,
                             use_tracker=True),
        )
        return ub, runs

    ub, runs = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for name in ("slot-fair", "drf"):
        base = runs[name]
        rows.append(
            (
                name,
                improvement_percent(base.makespan, ub.makespan),
                improvement_percent(base.mean_jct, ub.mean_jct),
                improvement_percent(base.makespan, runs["tetris"].makespan),
                improvement_percent(base.mean_jct, runs["tetris"].mean_jct),
            )
        )
    print_table(
        "Section 2.3: estimated upper-bound gains vs achieved by Tetris (%)",
        ["baseline", "UB makespan", "UB mean JCT",
         "Tetris makespan", "Tetris JCT"],
        rows,
    )

    for name, ub_mk, ub_jct, tet_mk, tet_jct in rows:
        # the relaxation predicts large gains ...
        assert ub_mk > 10 and ub_jct > 20, (name, ub_mk, ub_jct)
        # ... and Tetris realizes a large share of them (paper: ~90%;
        # we accept anything beyond 40% to stay robust across seeds)
        assert tet_mk > 0.4 * ub_mk, (name, tet_mk, ub_mk)
        assert tet_jct > 0.4 * ub_jct, (name, tet_jct, ub_jct)
