"""Section 5.3.3 sensitivity analyses: remote penalty and the epsilon
(alignment vs. SRTF) weighting.

Paper: gains change little for remote penalties between ~5% and 30%,
dropping outside that band (over-using remote resources, or leaving
them fallow); for the combined score, m = epsilon * p_bar / a_bar near
1 is the right operating point — m = 0 hurts completion time, very
large m hurts makespan.
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler

PENALTIES = (0.0, 0.1, 0.3, 0.8)
MULTIPLIERS = (0.0, 0.5, 1.0, 4.0)


def test_remote_penalty_sensitivity(benchmark):
    def regenerate():
        schedulers = {"slot-fair": SlotFairScheduler}
        for p in PENALTIES:
            schedulers[f"rp={p}"] = (
                lambda penalty=p: TetrisScheduler(
                    TetrisConfig(remote_penalty=penalty)
                )
            )
        return run_comparison(
            deploy_trace(),
            schedulers,
            # heuristic-isolation runs: no tracker reclamation
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1,
                             use_tracker=False),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    fair = results["slot-fair"]

    gains = {
        p: improvement_percent(
            fair.mean_jct, results[f"rp={p}"].mean_jct
        )
        for p in PENALTIES
    }
    print_table(
        "Remote penalty sensitivity (paper: flat between ~5% and 30%)",
        ["penalty", "JCT gain %"],
        sorted(gains.items()),
    )
    # the plateau: 10% and 30% within a few points of each other
    assert abs(gains[0.1] - gains[0.3]) < 12.0
    # and every setting still shows real gains
    for p, g in gains.items():
        assert g > 5.0, (p, g)


def test_epsilon_multiplier_sensitivity(benchmark):
    def regenerate():
        schedulers = {"slot-fair": SlotFairScheduler}
        for m in MULTIPLIERS:
            schedulers[f"m={m}"] = (
                lambda mult=m: TetrisScheduler(
                    TetrisConfig(srtf_multiplier=mult)
                )
            )
        return run_comparison(
            deploy_trace(),
            schedulers,
            # heuristic-isolation runs: no tracker reclamation
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1,
                             use_tracker=False),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    fair = results["slot-fair"]

    rows = []
    gains = {}
    for m in MULTIPLIERS:
        r = results[f"m={m}"]
        jct_gain = improvement_percent(fair.mean_jct, r.mean_jct)
        makespan_gain = improvement_percent(fair.makespan, r.makespan)
        gains[m] = (jct_gain, makespan_gain)
        rows.append((m, jct_gain, makespan_gain))
    print_table(
        "Epsilon multiplier sensitivity "
        "(paper: m=0 hurts JCT; gains stabilize by m~1)",
        ["m", "JCT gain %", "makespan gain %"],
        rows,
    )

    # the recommended m=1 sits within a few points of the best JCT gain
    # observed anywhere on the sweep (on this synthetic workload the
    # SRTF and packing halves nearly tie, so the curve is flat — see the
    # deviation note in EXPERIMENTS.md)
    best = max(j for j, _ in gains.values())
    assert gains[1.0][0] > best - 10.0
    # and the sweep is stable: no setting collapses the gains
    for m, (jct_gain, _) in gains.items():
        assert jct_gain > 20.0, (m, jct_gain)
