"""Table 7 / Section 5.2.2: scheduling overhead vs pending-task count.

Paper: Tetris's matching logic adds sub-millisecond cost per node
heartbeat even with 10K-50K pending tasks, scaling like default YARN.
Our analogue measures one Tetris scheduling decision for a single
machine (the per-NM-heartbeat work) as the number of pending tasks
grows — the cost must stay small and grow sublinearly in tasks (it is
stage-structured, not task-structured).
"""

import pytest
from conftest import print_table

from repro.cluster.cluster import Cluster
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskWork
from repro.resources import DEFAULT_MODEL


def _pending_state(num_jobs, tasks_per_job, num_machines=50,
                   vectorized=True):
    """A scheduler saturated with pending work; machines nearly full so
    heartbeat-time matching does real scoring but places little."""
    cluster = Cluster(num_machines, seed=0)
    scheduler = TetrisScheduler(
        TetrisConfig(fairness_knob=0.25, vectorized=vectorized)
    )
    scheduler.bind(cluster)
    for j in range(num_jobs):
        tasks = [
            Task(
                DEFAULT_MODEL.vector(cpu=2 + (j % 3), mem=4, diskr=30),
                TaskWork(cpu_core_seconds=60.0),
            )
            for _ in range(tasks_per_job)
        ]
        job = Job([Stage("work", tasks)], arrival_time=0.0)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
    # fill most of every machine so little can be placed per heartbeat
    for machine in cluster.machines:
        filler = Task(
            DEFAULT_MODEL.vector(cpu=13, mem=40, diskr=150),
            TaskWork(cpu_core_seconds=1e6),
        )
        filler.mark_runnable()
        machine.place(filler, filler.demands)
    return scheduler


@pytest.mark.parametrize("vectorized", [False, True],
                         ids=["scalar", "vectorized"])
@pytest.mark.parametrize("pending", [10_000, 50_000])
def test_table7_heartbeat_matching_cost(benchmark, pending, vectorized):
    tasks_per_job = pending // 100
    scheduler = _pending_state(
        num_jobs=100, tasks_per_job=tasks_per_job, vectorized=vectorized
    )

    # one node-manager heartbeat = match tasks for one machine
    result = benchmark(scheduler.schedule, 0.0, [0])

    stats = benchmark.stats.stats
    path = "vectorized" if vectorized else "scalar"
    print_table(
        f"Table 7: NM-heartbeat matching cost ({path}), {pending} pending "
        "tasks (paper: <1 ms)",
        ["metric", "value"],
        [("mean (ms)", stats.mean * 1e3),
         ("median (ms)", stats.median * 1e3)],
    )
    # the decision must stay interactive: well under 50 ms even in
    # pure Python with 50K pending tasks
    assert stats.mean < 0.05
