"""Section 2.1's second observation: extending DRF with more dimensions
helps, but fairness-first allocation still is not packing.

The paper notes that a DRF which also considers the network avoids the
worst reduce-phase incast of CPU+memory-only DRF, yet its fair-share
objective still leaves the gains of packing + SRTF on the table.  This
benchmark runs CPU+mem DRF, all-resource DRF, and Tetris on the same
workload.
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.tetris import TetrisScheduler

ALL_DIMS = ("cpu", "mem", "diskr", "diskw", "netin", "netout")


def test_drf_network_extension(benchmark):
    def regenerate():
        return run_comparison(
            deploy_trace(),
            {
                "drf-cpu-mem": DRFScheduler,
                "drf-all": lambda: DRFScheduler(dims=ALL_DIMS),
                "tetris": TetrisScheduler,
            },
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1,
                             use_tracker=False),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = [
        (name, r.mean_jct, r.makespan,
         r.collector.mean_task_duration())
        for name, r in results.items()
    ]
    print_table(
        "DRF dimension extension (Section 2.1 discussion)",
        ["scheduler", "mean JCT", "makespan", "task dur"],
        rows,
    )

    # considering all dimensions removes the over-allocation contention:
    # task durations shrink decisively
    assert (
        results["drf-all"].collector.mean_task_duration()
        < results["drf-cpu-mem"].collector.mean_task_duration()
    )
    # and the full-dimension DRF closes much of the JCT gap ...
    assert results["drf-all"].mean_jct < results["drf-cpu-mem"].mean_jct
    # ... but Tetris (packing + SRTF) still beats fairness-first DRF
    gain = improvement_percent(
        results["drf-all"].mean_jct, results["tetris"].mean_jct
    )
    assert gain > 5.0, gain
