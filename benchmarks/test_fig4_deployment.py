"""Figure 4 / Section 5.2: Tetris vs Capacity Scheduler and DRF on the
deployment workload.

Paper: median JCT improvement ~30%, the top decile improves by >50%,
and makespan drops ~30% vs CS (slightly less vs DRF).
"""

import numpy as np
from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_series,
    print_table,
    standard_comparison,
)

from repro.metrics.comparison import (
    cdf_points,
    improvement_distribution,
    improvement_percent,
)


def test_fig4_deployment_comparison(benchmark):
    def regenerate():
        return standard_comparison(
            deploy_trace(), DEPLOY_MACHINES, seed=1
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    tetris = results["tetris"]

    # Figure 4a: CDF of per-job completion-time improvement
    for baseline in ("capacity", "drf"):
        dist = improvement_distribution(
            results[baseline].completion_by_name(),
            tetris.completion_by_name(),
        )
        cdf = cdf_points(dist, num_points=11)
        print_series(
            f"Figure 4a: JCT improvement CDF vs {baseline} "
            "(% at 0,10,...,100th pct)",
            {baseline: [v for v, _ in cdf]},
        )
        median = float(np.median(dist))
        top_decile = float(np.percentile(dist, 90))
        print(f"median improvement vs {baseline}: {median:.1f}%  "
              f"p90: {top_decile:.1f}%")
        assert median > 10.0, (baseline, median)
        assert top_decile > 30.0, (baseline, top_decile)

    # Figure 4b: makespan reduction
    rows = [
        (
            baseline,
            improvement_percent(results[baseline].makespan, tetris.makespan),
        )
        for baseline in ("capacity", "drf")
    ]
    print_table(
        "Figure 4b: makespan reduction (paper: ~30% vs CS, ~28% vs DRF)",
        ["baseline", "reduction %"],
        rows,
    )
    for baseline, reduction in rows:
        assert reduction > 5.0, (baseline, reduction)
