"""Table 8 / Section 5.3.1: alternative packing heuristics.

Paper: cosine similarity (the normalized dot product) gives the best
combination of completion-time and makespan gains; L2-Norm-Diff does
well on makespan but lags on job speed-up; the FFD variants trail.
"""

from conftest import (
    DEPLOY_MACHINES,
    deploy_trace,
    print_table,
)

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.alignment import ALIGNMENT_SCORERS
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler


def test_table8_alignment_heuristics(benchmark):
    def regenerate():
        schedulers = {"slot-fair": SlotFairScheduler}
        for name in ALIGNMENT_SCORERS:
            schedulers[name] = (
                lambda scorer=name: TetrisScheduler(
                    TetrisConfig(scorer=scorer)
                )
            )
        return run_comparison(
            deploy_trace(),
            schedulers,
            ExperimentConfig(num_machines=DEPLOY_MACHINES, seed=1,
                             use_tracker=True),
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    fair = results["slot-fair"]

    gains = {}
    for name in ALIGNMENT_SCORERS:
        gains[name] = (
            improvement_percent(fair.mean_jct, results[name].mean_jct),
            improvement_percent(fair.makespan, results[name].makespan),
        )
    print_table(
        "Table 8: alignment heuristics (gains % vs slot-fair; paper "
        "declares cosine best overall)",
        ["heuristic", "JCT gain %", "makespan gain %"],
        [(name, j, m) for name, (j, m) in sorted(gains.items())],
    )

    # every heuristic still beats the fair scheduler (they all avoid
    # over-allocation; the scorer only shapes packing quality)
    for name, (jct_gain, makespan_gain) in gains.items():
        assert jct_gain > 0, (name, jct_gain)
    # cosine is at or near the top on the combined criterion
    combined = {n: j + m for n, (j, m) in gains.items()}
    ranked = sorted(combined, key=combined.get, reverse=True)
    assert ranked.index("cosine") <= 1, combined
