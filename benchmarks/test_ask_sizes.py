"""Section 4.4: asks stay succinct.

The paper rejects encoding per-(task, candidate-machine) demands in the
AM -> RM ask ("it would be too large") in favor of input sizes +
locations from which the RM infers placement-dependent demands.  This
benchmark measures both encodings on real generated jobs.
"""

from conftest import print_table

from repro.cluster.cluster import Cluster
from repro.integration.asks import build_ask, naive_ask_size_bytes
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite

CLUSTER_SIZES = (100, 1000, 5000)


def test_ask_encoding_sizes(benchmark):
    cluster = Cluster(16, machines_per_rack=4)
    trace = generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=8, task_scale=1.0, seed=5)
    )
    jobs = materialize_trace(trace, cluster, seed=5)

    def regenerate():
        asks = [build_ask(job) for job in jobs]
        succinct = sum(a.encoded_size_bytes() for a in asks)
        naive = {
            machines: sum(
                naive_ask_size_bytes(job, machines) for job in jobs
            )
            for machines in CLUSTER_SIZES
        }
        return succinct, naive

    succinct, naive = benchmark(regenerate)

    rows = [("Tetris ask (any cluster size)", succinct / 1024.0, 1.0)]
    for machines in CLUSTER_SIZES:
        rows.append(
            (f"naive per-placement, {machines} machines",
             naive[machines] / 1024.0,
             naive[machines] / succinct)
        )
    print_table(
        "Section 4.4: total ask bytes for 8 jobs "
        "(paper: per-placement asks 'would be too large')",
        ["encoding", "KiB", "x succinct"],
        rows,
    )

    # the succinct encoding is orders of magnitude smaller and does not
    # grow with the cluster
    assert naive[1000] > 100 * succinct
    assert naive[5000] == 50 * naive[100]
