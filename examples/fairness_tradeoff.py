"""Exploring the fairness-performance trade-off knob.

Tetris exposes one knob f in [0, 1): available resources go to the best
packing candidate among the (1 - f) fraction of jobs furthest below
their fair share.  f = 0 is throughput-greedy; f -> 1 is strictly fair.
The paper's headline: f ~ 0.25 buys nearly all the efficiency at almost
no fairness cost.

This example sweeps the knob, reporting efficiency (mean JCT, makespan)
and fairness (how many jobs run slower than under the fair scheduler,
and by how much).

Run:
    python examples/fairness_tradeoff.py
"""

from repro import (
    ExperimentConfig,
    SlotFairScheduler,
    TetrisConfig,
    TetrisScheduler,
    WorkloadSuiteConfig,
    generate_workload_suite,
    run_trace,
)
from repro.metrics.fairness import slowdown_summary

KNOBS = (0.0, 0.25, 0.5, 0.75, 0.99)


def main() -> None:
    trace = generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=30, task_scale=0.05,
                            arrival_horizon=800, seed=21)
    )
    config = ExperimentConfig(num_machines=16, seed=21, use_tracker=True)

    fair = run_trace(trace, SlotFairScheduler(), config)
    print(f"baseline (slot-fair): mean JCT {fair.mean_jct:.1f}s, "
          f"makespan {fair.makespan:.1f}s\n")

    print(f"{'knob f':>8}{'mean JCT':>10}{'makespan':>10}"
          f"{'% slowed':>10}{'max slow':>10}")
    for f in KNOBS:
        result = run_trace(
            trace, TetrisScheduler(TetrisConfig(fairness_knob=f)), config
        )
        summary = slowdown_summary(
            fair.completion_by_name(),
            result.completion_by_name(),
            threshold=0.05,
        )
        print(
            f"{f:>8.2f}{result.mean_jct:>10.1f}{result.makespan:>10.1f}"
            f"{100 * summary.fraction_slowed:>9.1f}%"
            f"{100 * summary.max_slowdown:>9.1f}%"
        )

    print(
        "\nReading the table: small f is fastest; as f grows the schedule "
        "approaches\nthe fair one (fewer jobs slowed) while most of the "
        "efficiency survives,\nbecause even a fairness-constrained job "
        "choice leaves many tasks to pick\nthe best-packing one from "
        "(Section 3.4)."
    )


if __name__ == "__main__":
    main()
