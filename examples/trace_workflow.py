"""Trace workflow: generate, save, reload, and replay a cluster trace.

Traces are plain JSON (one record per job with arrival time, stage DAG
and per-task demands — the same information the paper's simulator
replays from production logs), so you can version them, edit them by
hand, or convert your own cluster's logs into the format.

Run:
    python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    ExperimentConfig,
    FacebookTraceConfig,
    TetrisScheduler,
    generate_facebook_trace,
    load_trace,
    run_trace,
    save_trace,
)
from repro.workload.trace import TraceJob, TraceStage


def main() -> None:
    # 1. Generate a statistics-matched trace and save it.
    trace = generate_facebook_trace(
        FacebookTraceConfig(num_jobs=12, arrival_horizon=400,
                            max_map_tasks=40, seed=3)
    )
    path = Path(tempfile.mkdtemp()) / "facebook_like.json"
    save_trace(trace, path)
    print(f"saved {len(trace)} jobs to {path} "
          f"({path.stat().st_size} bytes)")

    # 2. Append a hand-written job: a 3-stage pipeline.
    custom = TraceJob(
        name="etl-pipeline",
        arrival_time=50.0,
        template="etl",
        stages=[
            TraceStage(name="extract", num_tasks=8, cpu=1, mem=2,
                       diskr=60, netin=60, cpu_work=10,
                       input_mb_per_task=600, write_mb_per_task=300,
                       diskw=30),
            TraceStage(name="transform", num_tasks=4, cpu=4, mem=8,
                       netin=40, cpu_work=120, input_mb_per_task=600,
                       write_mb_per_task=200, diskw=20,
                       parents=["extract"], input_kind="shuffle"),
            TraceStage(name="load", num_tasks=2, cpu=1, mem=2,
                       netin=80, diskw=80, cpu_work=5,
                       input_mb_per_task=400, write_mb_per_task=400,
                       parents=["transform"], input_kind="shuffle"),
        ],
    )
    loaded = load_trace(path)
    loaded.append(custom)

    # 3. Replay under Tetris.
    result = run_trace(
        loaded, TetrisScheduler(),
        ExperimentConfig(num_machines=12, seed=3, use_tracker=True),
    )
    print(f"\nreplayed {len(loaded)} jobs: "
          f"mean JCT {result.mean_jct:.1f}s, "
          f"makespan {result.makespan:.1f}s")
    etl = result.completion_by_name()["etl-pipeline"]
    print(f"the hand-written 3-stage pipeline finished in {etl:.1f}s")


if __name__ == "__main__":
    main()
