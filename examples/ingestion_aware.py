"""Steering around background cluster activity with the resource tracker.

Clusters ingest new data continuously (Facebook reported hundreds of TB
per day).  Ingestion never goes through the scheduler, so a scheduler
that only tracks its own allocations will happily pile tasks onto an
ingesting machine and grind both to a halt (the paper's Figure 6).

This example runs the same disk-heavy workload twice:
- Tetris with the resource tracker: per-node usage reports fold the
  ingestion into the scheduler's view of free resources;
- the Capacity Scheduler: unaware, it keeps the loaded machine's slots
  full and pays in contention.

Run:
    python examples/ingestion_aware.py
"""

from repro import (
    CapacityScheduler,
    Cluster,
    Engine,
    EngineConfig,
    Job,
    ResourceTracker,
    Stage,
    Task,
    TaskWork,
    TetrisConfig,
    TetrisScheduler,
    ingestion,
)
from repro.estimation.tracker import TrackerConfig
from repro.resources import DEFAULT_MODEL

NUM_MACHINES = 4
LOADED_MACHINE = 0


def make_jobs():
    """Disk-writing jobs arriving every 10 seconds."""
    jobs = []
    for i in range(12):
        tasks = [
            Task(
                DEFAULT_MODEL.vector(cpu=1, mem=2, diskw=100),
                TaskWork(cpu_core_seconds=2.0, write_mb=1000.0),
            )
            for _ in range(6)
        ]
        jobs.append(Job([Stage("write", tasks)], arrival_time=10.0 * i))
    return jobs


def run(scheduler, with_tracker):
    cluster = Cluster(NUM_MACHINES, machines_per_rack=2, seed=3)
    tracker = None
    if with_tracker:
        tracker = ResourceTracker(
            cluster, TrackerConfig(report_period=1.0, ramp_seconds=2.0)
        )
    # a long 120 MB/s ingestion stream lands on machine 0 at t=50
    activity = ingestion(LOADED_MACHINE, start_time=50.0,
                         size_mb=80_000, rate_mbps=120)
    jobs = make_jobs()
    engine = Engine(
        cluster, scheduler, jobs, activities=[activity], tracker=tracker,
        config=EngineConfig(tracker_period=1.0, seed=3),
    )
    engine.run()
    tasks = [t for j in jobs for t in j.all_tasks()]
    started_on_loaded = sum(
        1 for t in tasks
        if t.machine_id == LOADED_MACHINE and t.start_time > 55.0
    )
    mean_duration = sum(t.duration for t in tasks) / len(tasks)
    return started_on_loaded, mean_duration, activity


def main() -> None:
    tetris = run(TetrisScheduler(TetrisConfig(fairness_knob=0.0)),
                 with_tracker=True)
    cs = run(CapacityScheduler(), with_tracker=False)

    print(f"{'':<40}{'Tetris+tracker':>16}{'Capacity':>12}")
    print(f"{'tasks sent to the loaded machine':<40}"
          f"{tetris[0]:>16}{cs[0]:>12}")
    print(f"{'mean task duration (s)':<40}"
          f"{tetris[1]:>16.1f}{cs[1]:>12.1f}")
    print(f"{'ingestion duration (s)':<40}"
          f"{tetris[2].finish_time - 50.0:>16.1f}"
          f"{cs[2].finish_time - 50.0:>12.1f}")
    print(
        "\nThe tracker's usage reports let Tetris see load it never "
        "booked;\nthe Capacity Scheduler schedules into the hotspot and "
        "slows both\nits tasks and the ingestion."
    )


if __name__ == "__main__":
    main()
