"""Writing your own scheduler against the library's public API.

The scheduler interface is three callbacks plus one decision method
(:class:`repro.schedulers.base.Scheduler`).  This example implements a
classic **worst-fit** scheduler — place each task on the machine with
the most free capacity, spreading load — in ~40 lines, and races it
against Tetris and FIFO.  Worst-fit checks the full demand vector, so
it shares Tetris's biggest win (no over-allocation) and both crush
FIFO; whether packing or spreading wins the remainder depends on the
workload's fragmentation pressure (see benchmarks/test_ablations.py).

Run:
    python examples/custom_scheduler.py
"""

from typing import List, Optional

from repro import (
    ExperimentConfig,
    FifoScheduler,
    TetrisScheduler,
    WorkloadSuiteConfig,
    generate_workload_suite,
    run_comparison,
)
from repro.schedulers.base import Placement, Scheduler
from repro.schedulers.stage_index import StageIndex


class WorstFitScheduler(Scheduler):
    """Place each runnable task on the emptiest machine that fits it.

    Checks the full demand vector (so it never over-allocates, like
    Tetris) but spreads instead of packing — the classic anti-pattern
    the bin-packing literature warns about.
    """

    name = "worst-fit"

    def __init__(self) -> None:
        super().__init__()
        self.index = StageIndex()

    def on_job_arrival(self, job, time):
        super().on_job_arrival(job, time)
        self.index.add_job(job)

    def on_stage_released(self, stage, time):
        self.index.add_stage(stage)

    def on_task_finished(self, task, time):
        super().on_task_finished(task, time)
        self.index.forget(task)

    def schedule(self, time, machine_ids=None) -> List[Placement]:
        placements: List[Placement] = []
        # emptiest machines first: that IS the worst-fit order
        for machine_id in self.iter_machine_ids(machine_ids):
            free = self.cluster.machine(machine_id).free_clamped()
            while True:
                placed = False
                for job in self.runnable_jobs():
                    task = self.pick_task_with_locality(
                        self.index, job, machine_id
                    )
                    if task is None:
                        continue
                    booked = self.booked_demands(task, machine_id)
                    if not booked.fits_in(free):
                        continue
                    self.index.claim(task)
                    placements.append(Placement(task, machine_id, booked))
                    free = (free - booked).clamp_nonnegative()
                    placed = True
                    break
                if not placed:
                    break
        return placements


def main() -> None:
    trace = generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=25, task_scale=0.05,
                            arrival_horizon=600, seed=5)
    )
    results = run_comparison(
        trace,
        {
            "tetris": TetrisScheduler,
            "worst-fit": WorstFitScheduler,
            "fifo": FifoScheduler,
        },
        ExperimentConfig(num_machines=16, seed=5),
    )
    print(f"{'scheduler':<12}{'mean JCT':>10}{'makespan':>10}")
    for name, result in results.items():
        print(f"{name:<12}{result.mean_jct:>10.1f}{result.makespan:>10.1f}")
    print(
        "\nBoth full-vector schedulers avoid over-allocation and beat "
        "FIFO\ndecisively; the packing-vs-spreading margin between them "
        "depends on\nhow hard the workload fragments (sweep the load to "
        "see it move)."
    )


if __name__ == "__main__":
    main()
