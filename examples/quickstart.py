"""Quickstart: schedule a small workload with Tetris and a baseline.

Run:
    python examples/quickstart.py
"""

from repro import (
    DRFScheduler,
    ExperimentConfig,
    TetrisScheduler,
    WorkloadSuiteConfig,
    generate_workload_suite,
    run_trace,
)


def main() -> None:
    # 1. Generate a workload: 15 map-reduce jobs drawn from the paper's
    #    deployment suite (Section 5.1), arriving over ~8 minutes.
    trace = generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=15, task_scale=0.05,
                            arrival_horizon=500, seed=42)
    )
    total_tasks = sum(s.num_tasks for job in trace for s in job.stages)
    print(f"workload: {len(trace)} jobs, {total_tasks} tasks")

    # 2. Run it on a simulated 20-machine cluster under two schedulers.
    #    Each run materializes a fresh cluster, so the comparison is fair.
    config = ExperimentConfig(num_machines=20, seed=42, use_tracker=True)
    tetris = run_trace(trace, TetrisScheduler(), config)
    drf = run_trace(trace, DRFScheduler(), config)

    # 3. Compare.
    print(f"\n{'metric':<22}{'Tetris':>12}{'DRF':>12}")
    for label, t_value, d_value in [
        ("mean JCT (s)", tetris.mean_jct, drf.mean_jct),
        ("median JCT (s)", tetris.collector.median_jct(),
         drf.collector.median_jct()),
        ("makespan (s)", tetris.makespan, drf.makespan),
        ("mean task dur (s)", tetris.collector.mean_task_duration(),
         drf.collector.mean_task_duration()),
    ]:
        print(f"{label:<22}{t_value:>12.1f}{d_value:>12.1f}")

    speedup = drf.mean_jct / tetris.mean_jct
    print(f"\nTetris completes the average job {speedup:.2f}x faster.")


if __name__ == "__main__":
    main()
