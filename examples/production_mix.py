"""Kitchen-sink production scenario: everything at once.

A heterogeneous cluster (big and small machines), a Bing-style deep-DAG
workload organized into two business queues, 10% task failure
probability, starvation-prevention reservations, and the progress-aware
SRTF refinement — the extensions the paper sketches in Section 3.5 on
top of the published system.

Run:
    python examples/production_mix.py
"""

from repro import (
    BingTraceConfig,
    Cluster,
    DEFAULT_MODEL,
    Engine,
    EngineConfig,
    ResourceTracker,
    TetrisConfig,
    TetrisScheduler,
    generate_bing_trace,
    materialize_trace,
)
from repro.analysis.model import audit_engine
from repro.estimation.tracker import TrackerConfig
from repro.metrics.fairness import jains_index


def make_cluster():
    big = DEFAULT_MODEL.vector(cpu=32, mem=96, diskr=400, diskw=400,
                               netin=250, netout=250)
    standard = DEFAULT_MODEL.vector(cpu=16, mem=48, diskr=200, diskw=200,
                                    netin=125, netout=125)
    capacities = [big] * 4 + [standard] * 12
    return Cluster(16, machine_capacities=capacities,
                   machines_per_rack=8, seed=9)


def queue_of(job):
    """Jobs alternate between two business queues by template."""
    return "etl" if int(job.template[4:]) % 2 == 0 else "adhoc"


def main() -> None:
    trace = generate_bing_trace(
        BingTraceConfig(num_jobs=20, arrival_horizon=600,
                        max_map_tasks=60, seed=9)
    )
    cluster = make_cluster()
    jobs = materialize_trace(trace, cluster, seed=9)
    tracker = ResourceTracker(cluster, TrackerConfig(report_period=2.0))
    scheduler = TetrisScheduler(
        TetrisConfig(
            fairness_knob=0.25,
            starvation_timeout=120.0,
            progress_aware_srtf=True,
        ),
        group_of=queue_of,
    )
    engine = Engine(
        cluster, scheduler, jobs, tracker=tracker,
        config=EngineConfig(task_failure_prob=0.1, seed=9,
                            track_fairness=True),
    )
    collector = engine.run()

    print(f"jobs finished : {len(collector.jobs)}")
    print(f"mean JCT      : {collector.mean_jct():.1f}s")
    print(f"makespan      : {collector.makespan():.1f}s")
    print(f"task failures : {collector.task_failures} "
          f"(all retried successfully)")

    by_queue = {"etl": [], "adhoc": []}
    for job in jobs:
        by_queue[queue_of(job)].append(job.completion_time)
    for queue, jcts in by_queue.items():
        print(f"queue {queue:<6}: {len(jcts)} jobs, "
              f"mean JCT {sum(jcts) / len(jcts):.1f}s")
    shares = [
        integral for integral in collector.share_integral.values()
    ]
    print(f"Jain's index over per-job integrated shares: "
          f"{jains_index(shares):.3f}")

    report = audit_engine(engine)
    print(
        "constraint audit: "
        + ("feasible (all Section 3.1 constraints hold)"
           if report.ok
           else f"{len(report)} violations")
    )


if __name__ == "__main__":
    main()
