"""A production-style analytics cluster: four schedulers head-to-head.

Reproduces the texture of the paper's Section 5.2 deployment experiment:
a mixed workload of large/medium/small map-reduce jobs with diverse
CPU/memory/IO profiles, run under Tetris, the Hadoop Fair and Capacity
schedulers, and DRF.  Prints per-scheduler summaries, the distribution
of per-job improvements, and where each scheduler's cluster spends its
resources.

Run:
    python examples/analytics_cluster.py
"""

import numpy as np

from repro import (
    CapacityScheduler,
    DRFScheduler,
    ExperimentConfig,
    SlotFairScheduler,
    TetrisScheduler,
    WorkloadSuiteConfig,
    generate_workload_suite,
    run_comparison,
)
from repro.metrics.comparison import improvement_distribution


def main() -> None:
    trace = generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=40, task_scale=0.05,
                            arrival_horizon=1000, seed=7)
    )
    results = run_comparison(
        trace,
        {
            "tetris": TetrisScheduler,
            "slot-fair": SlotFairScheduler,
            "capacity": CapacityScheduler,
            "drf": DRFScheduler,
        },
        ExperimentConfig(num_machines=20, seed=7, use_tracker=True),
    )

    print(f"{'scheduler':<12}{'mean JCT':>10}{'p90 JCT':>10}"
          f"{'makespan':>10}{'task dur':>10}")
    for name, result in results.items():
        jcts = list(result.collector.completion_times().values())
        print(
            f"{name:<12}{result.mean_jct:>10.1f}"
            f"{np.percentile(jcts, 90):>10.1f}"
            f"{result.makespan:>10.1f}"
            f"{result.collector.mean_task_duration():>10.1f}"
        )

    print("\nper-job completion-time improvement of Tetris (percent):")
    tetris_jcts = results["tetris"].completion_by_name()
    for baseline in ("slot-fair", "capacity", "drf"):
        dist = improvement_distribution(
            results[baseline].completion_by_name(), tetris_jcts
        )
        print(
            f"  vs {baseline:<10} median {np.median(dist):6.1f}%   "
            f"p90 {np.percentile(dist, 90):6.1f}%   "
            f"jobs slowed {100 * np.mean(np.array(dist) < 0):4.1f}%"
        )

    print("\npeak demand utilization per resource "
          "(over 1.0 = over-allocation):")
    resources = ("cpu", "mem", "diskr", "diskw", "netin", "netout")
    header = "".join(f"{r:>9}" for r in resources)
    print(f"{'scheduler':<12}{header}")
    for name, result in results.items():
        peaks = {
            r: max(p.demand_utilization[r]
                   for p in result.collector.timeline)
            for r in resources
        }
        row = "".join(f"{peaks[r]:>9.2f}" for r in resources)
        print(f"{name:<12}{row}")


if __name__ == "__main__":
    main()
