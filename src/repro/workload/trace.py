"""Trace records: a serializable description of a workload.

A trace is a list of :class:`TraceJob` records — the same information the
paper's simulator replays from the Facebook logs: arrival times, per-stage
task counts, per-task resource requirements, input/output sizes, and the
stage DAG.  Traces round-trip through JSON and are *materialized* against
a cluster (placing input blocks in its block store) to obtain runnable
:class:`~repro.workload.job.Job` objects.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Union

import numpy as np

from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskInput, TaskWork

__all__ = [
    "TraceStage",
    "TraceJob",
    "save_trace",
    "load_trace",
    "materialize_trace",
    "validate_trace",
]


def validate_trace(trace: Sequence["TraceJob"]) -> List[str]:
    """Check a (possibly hand-written) trace for structural problems.

    Returns a list of human-readable issues; empty means the trace is
    well-formed.  Checked: unique job names, stage-name uniqueness
    within a job, parents referring to earlier stages, non-negative
    arrival times, and sane per-stage numbers.
    """
    issues: List[str] = []
    seen_jobs = set()
    for job in trace:
        where = f"job {job.name!r}"
        if job.name in seen_jobs:
            issues.append(f"duplicate job name {job.name!r}")
        seen_jobs.add(job.name)
        if job.arrival_time < 0:
            issues.append(f"{where}: negative arrival time")
        stage_names = set()
        for stage in job.stages:
            swhere = f"{where}, stage {stage.name!r}"
            if stage.name in stage_names:
                issues.append(f"{swhere}: duplicate stage name")
            for parent in stage.parents:
                if parent not in stage_names:
                    issues.append(
                        f"{swhere}: parent {parent!r} is not an earlier "
                        f"stage of the job"
                    )
            stage_names.add(stage.name)
            for field_name in ("cpu", "mem", "diskr", "diskw", "netin",
                               "netout", "cpu_work", "input_mb_per_task",
                               "write_mb_per_task"):
                if getattr(stage, field_name) < 0:
                    issues.append(f"{swhere}: negative {field_name}")
            if stage.input_kind == "shuffle" and not stage.parents:
                issues.append(
                    f"{swhere}: shuffle input but no parent stages"
                )
            if stage.shuffle_fanin < 1:
                issues.append(f"{swhere}: shuffle_fanin must be >= 1")
    return issues


@dataclass
class TraceStage:
    """One stage of a trace job.

    ``input_kind`` is ``"blocks"`` for stages reading stored data (map)
    and ``"shuffle"`` for stages reading upstream outputs (reduce).
    Demands are per-task peaks; ``demand_jitter`` adds lognormal
    within-stage variation at materialization time (tasks in a stage are
    statistically similar but not identical, Section 4.1).
    """

    name: str
    num_tasks: int
    cpu: float = 1.0
    mem: float = 1.0
    diskr: float = 0.0
    diskw: float = 0.0
    netin: float = 0.0
    netout: float = 0.0
    cpu_work: float = 0.0
    input_mb_per_task: float = 0.0
    write_mb_per_task: float = 0.0
    parents: List[str] = field(default_factory=list)
    input_kind: str = "blocks"
    shuffle_fanin: int = 3
    demand_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.num_tasks < 0:
            raise ValueError("num_tasks must be non-negative")
        if self.input_kind not in ("blocks", "shuffle"):
            raise ValueError(f"unknown input_kind {self.input_kind!r}")


@dataclass
class TraceJob:
    """One job of a trace."""

    name: str
    arrival_time: float
    stages: List[TraceStage]
    template: Optional[str] = None


def save_trace(trace: Sequence[TraceJob], path: Union[str, Path]) -> None:
    """Write a trace as JSON."""
    payload = [asdict(job) for job in trace]
    Path(path).write_text(json.dumps(payload, indent=1))


def load_trace(path: Union[str, Path]) -> List[TraceJob]:
    """Read a trace written by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    out = []
    for job_dict in payload:
        stages = [TraceStage(**s) for s in job_dict.pop("stages")]
        out.append(TraceJob(stages=stages, **job_dict))
    return out


def _jitter(rng: np.random.Generator, sigma: float) -> float:
    if sigma <= 0:
        return 1.0
    return float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))


def materialize_trace(
    trace: Sequence[TraceJob],
    cluster: "Cluster",
    seed: int = 0,
) -> List[Job]:
    """Build runnable jobs from trace records.

    Block-reading stages get their inputs placed in the cluster's block
    store (rack-aware replicas); shuffle stages get placeholder inputs
    whose source machines are pinned when the upstream barrier lifts.
    """
    rng = np.random.default_rng(seed)
    model = cluster.model
    #: no single task may demand more than a machine can give; clamping at
    #: 95% of capacity keeps every generated task schedulable
    demand_cap = cluster.machine_capacity() * 0.95
    jobs: List[Job] = []
    for trace_job in trace:
        stages_by_name: Dict[str, Stage] = {}
        stage_objects: List[Stage] = []
        for ts in trace_job.stages:
            tasks = []
            for _ in range(ts.num_tasks):
                # independent compute-side and data-side jitters: tasks of
                # a stage vary both in computation and in partition size,
                # and the two vary mostly independently (keeping them
                # separate also avoids injecting artificial cross-resource
                # correlation, Table 2)
                compute_factor = _jitter(rng, ts.demand_jitter)
                data_factor = _jitter(rng, ts.demand_jitter)
                demands = model.vector(
                    cpu=ts.cpu * compute_factor,
                    mem=ts.mem * compute_factor,
                    diskr=ts.diskr * data_factor,
                    diskw=ts.diskw * data_factor,
                    netin=ts.netin * data_factor,
                    netout=ts.netout * data_factor,
                ).elementwise_min(demand_cap)
                work = TaskWork(
                    cpu_core_seconds=ts.cpu_work * compute_factor,
                    write_mb=ts.write_mb_per_task * data_factor,
                )
                inputs = []
                if ts.input_mb_per_task > 0:
                    if ts.input_kind == "blocks":
                        block = cluster.blockstore.add_block(
                            ts.input_mb_per_task * data_factor
                        )
                        inputs.append(
                            TaskInput(block.size_mb, block.replicas)
                        )
                    else:
                        fanin = max(1, ts.shuffle_fanin)
                        per_source = (
                            ts.input_mb_per_task * data_factor / fanin
                        )
                        inputs.extend(
                            TaskInput(per_source, ()) for _ in range(fanin)
                        )
                tasks.append(Task(demands, work, inputs))
            parents = [stages_by_name[p] for p in ts.parents]
            stage = Stage(ts.name, tasks, parents=parents)
            stages_by_name[ts.name] = stage
            stage_objects.append(stage)
        jobs.append(
            Job(
                stage_objects,
                arrival_time=trace_job.arrival_time,
                name=trace_job.name,
                template=trace_job.template,
            )
        )
    return jobs
