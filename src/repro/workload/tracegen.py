"""Workload generators.

Two generators, one per evaluation setting of the paper:

- :func:`generate_workload_suite` — the deployment workload of Section
  5.1: ~200 map-reduce jobs drawn uniformly from four (size, selectivity)
  classes, with high/low-memory and high/low-CPU stage variants and
  uniform arrivals;
- :func:`generate_facebook_trace` — a synthetic stand-in for the Facebook
  production trace, matched to the published statistics instead of the
  (unavailable) raw logs: heavy-tailed job sizes, per-resource demand
  coefficients of variation of ~{1.52, 0.77, 1.74, 1.35} for
  CPU/memory/disk/network (Section 2.2.2) and near-zero cross-resource
  correlation (Table 2).  Recurring job templates are included so the
  profiling estimator has history to learn from.

Both return :class:`~repro.workload.trace.TraceJob` records; materialize
them against a cluster with
:func:`~repro.workload.trace.materialize_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workload.trace import TraceJob, TraceStage

__all__ = [
    "WorkloadSuiteConfig",
    "generate_workload_suite",
    "FacebookTraceConfig",
    "generate_facebook_trace",
    "BingTraceConfig",
    "generate_bing_trace",
]


# ---------------------------------------------------------------------------
# Section 5.1 deployment workload
# ---------------------------------------------------------------------------

#: (class name, base map-task count, output:input selectivity)
JOB_CLASSES: Tuple[Tuple[str, int, float], ...] = (
    ("large-highly-selective", 2000, 0.1),
    ("medium-inflating", 1000, 2.0),
    ("medium-selective", 1000, 0.5),
    ("small-selective", 200, 0.5),
)


@dataclass(frozen=True)
class WorkloadSuiteConfig:
    """Parameters of the deployment workload suite.

    ``task_scale`` shrinks the paper's task counts so the pure-Python
    simulator stays fast; the mix and the demand diversity — what the
    results depend on — are unchanged.
    """

    num_jobs: int = 200
    task_scale: float = 0.1
    arrival_horizon: float = 5000.0
    map_input_mb: float = 512.0
    high_mem_gb: float = 6.0
    low_mem_gb: float = 2.0
    high_cpu_cores: float = 2.0
    low_cpu_cores: float = 1.0
    high_cpu_duration: float = 60.0
    low_cpu_duration: float = 15.0
    reduce_duration: float = 40.0
    reduce_fraction: float = 0.2
    demand_jitter: float = 0.15
    seed: int = 0


def _suite_map_stage(
    cfg: WorkloadSuiteConfig,
    num_tasks: int,
    high_mem: bool,
    high_cpu: bool,
    selectivity: float,
) -> TraceStage:
    duration = cfg.high_cpu_duration if high_cpu else cfg.low_cpu_duration
    cores = cfg.high_cpu_cores if high_cpu else cfg.low_cpu_cores
    input_mb = cfg.map_input_mb
    write_mb = input_mb * selectivity
    return TraceStage(
        name="map",
        num_tasks=num_tasks,
        cpu=cores,
        mem=cfg.high_mem_gb if high_mem else cfg.low_mem_gb,
        diskr=input_mb / duration,
        diskw=write_mb / duration,
        netin=input_mb / duration,  # applies only when placed remotely
        netout=0.0,
        cpu_work=cores * duration,
        input_mb_per_task=input_mb,
        write_mb_per_task=write_mb,
        input_kind="blocks",
        demand_jitter=cfg.demand_jitter,
    )


def _suite_reduce_stage(
    cfg: WorkloadSuiteConfig,
    num_map: int,
    num_reduce: int,
    high_mem: bool,
    selectivity: float,
) -> TraceStage:
    shuffle_total = num_map * cfg.map_input_mb * selectivity
    per_reduce = shuffle_total / max(num_reduce, 1)
    duration = cfg.reduce_duration
    return TraceStage(
        name="reduce",
        num_tasks=num_reduce,
        cpu=1.0,
        mem=cfg.high_mem_gb if high_mem else cfg.low_mem_gb,
        # shuffle data is read over the network, but a co-located source
        # partition is read from local disk at the same rate
        diskr=per_reduce / duration,
        diskw=per_reduce / duration,
        netin=per_reduce / duration,
        netout=0.0,
        cpu_work=0.5 * duration,
        input_mb_per_task=per_reduce,
        write_mb_per_task=per_reduce,
        parents=["map"],
        input_kind="shuffle",
        shuffle_fanin=3,
        demand_jitter=cfg.demand_jitter,
    )


def generate_workload_suite(
    config: Optional[WorkloadSuiteConfig] = None,
) -> List[TraceJob]:
    """The Section 5.1 workload: uniform draws over job classes and
    high/low mem x cpu stage variants, uniform arrivals."""
    cfg = config if config is not None else WorkloadSuiteConfig()
    rng = np.random.default_rng(cfg.seed)
    jobs: List[TraceJob] = []
    for j in range(cfg.num_jobs):
        class_name, base_tasks, selectivity = JOB_CLASSES[
            int(rng.integers(len(JOB_CLASSES)))
        ]
        num_map = max(1, int(round(base_tasks * cfg.task_scale)))
        num_reduce = max(1, int(round(num_map * cfg.reduce_fraction)))
        high_mem = bool(rng.integers(2))
        high_cpu = bool(rng.integers(2))
        stages = [
            _suite_map_stage(cfg, num_map, high_mem, high_cpu, selectivity),
            _suite_reduce_stage(cfg, num_map, num_reduce, high_mem, selectivity),
        ]
        arrival = float(rng.uniform(0.0, cfg.arrival_horizon))
        jobs.append(
            TraceJob(
                name=f"{class_name}-{j}",
                arrival_time=arrival,
                stages=stages,
                template=class_name
                + ("-hm" if high_mem else "-lm")
                + ("-hc" if high_cpu else "-lc"),
            )
        )
    jobs.sort(key=lambda tj: tj.arrival_time)
    return jobs


# ---------------------------------------------------------------------------
# Facebook-statistics trace
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FacebookTraceConfig:
    """Statistical profile of the Facebook trace replay (Section 5.3).

    The per-resource lognormal sigmas are calibrated so the generated
    task population reproduces the paper's coefficients of variation
    (CPU 1.52, memory 0.77, disk 1.74, network 1.35); independent draws
    per resource give the near-zero correlations of Table 2.
    """

    num_jobs: int = 150
    arrival_horizon: float = 4000.0
    #: job size (map tasks): lognormal, heavy tail, clamped
    size_mu: float = 2.8
    size_sigma: float = 1.3
    max_map_tasks: int = 800
    #: per-resource lognormal shape (sigma) and median
    cpu_sigma: float = 1.09
    cpu_median: float = 1.0
    mem_sigma: float = 0.66
    mem_median: float = 2.0
    disk_sigma: float = 1.18
    disk_median: float = 20.0
    net_sigma: float = 1.03
    net_median: float = 15.0
    #: task duration lognormal
    duration_mu: float = 3.6
    duration_sigma: float = 0.7
    #: within-stage demand variation
    demand_jitter: float = 0.15
    #: fraction of jobs that are plain map-only / map-reduce / 3-stage
    p_map_only: float = 0.3
    p_three_stage: float = 0.1
    num_templates: int = 20
    reduce_fraction: float = 0.25
    seed: int = 0

    #: clamping ranges keep single tasks schedulable on one FB machine
    cpu_range: Tuple[float, float] = (0.1, 8.0)
    mem_range: Tuple[float, float] = (0.25, 14.0)
    disk_range: Tuple[float, float] = (1.0, 150.0)
    net_range: Tuple[float, float] = (1.0, 100.0)


def _clamped_lognormal(
    rng: np.random.Generator,
    median: float,
    sigma: float,
    lo: float,
    hi: float,
) -> float:
    value = median * float(rng.lognormal(mean=0.0, sigma=sigma))
    return min(max(value, lo), hi)


def _fb_stage_profile(
    cfg: FacebookTraceConfig, rng: np.random.Generator
) -> Dict[str, float]:
    """Independent per-resource draws: the source of demand diversity."""
    duration = float(
        rng.lognormal(mean=cfg.duration_mu, sigma=cfg.duration_sigma)
    )
    duration = min(max(duration, 5.0), 600.0)
    return {
        "cpu": _clamped_lognormal(rng, cfg.cpu_median, cfg.cpu_sigma, *cfg.cpu_range),
        "mem": _clamped_lognormal(rng, cfg.mem_median, cfg.mem_sigma, *cfg.mem_range),
        "disk": _clamped_lognormal(
            rng, cfg.disk_median, cfg.disk_sigma, *cfg.disk_range
        ),
        "net": _clamped_lognormal(rng, cfg.net_median, cfg.net_sigma, *cfg.net_range),
        "duration": duration,
        "selectivity": _clamped_lognormal(rng, 0.5, 0.8, 0.05, 3.0),
    }


def _fb_template(
    cfg: FacebookTraceConfig, rng: np.random.Generator, index: int
) -> Dict[str, object]:
    """A recurring job template: fixed stage profiles and DAG shape."""
    u = rng.uniform()
    if u < cfg.p_map_only:
        shape = ("map",)
    elif u < cfg.p_map_only + cfg.p_three_stage:
        shape = ("map", "aggregate", "reduce")
    else:
        shape = ("map", "reduce")
    return {
        "name": f"tpl{index}",
        "shape": shape,
        "profiles": {name: _fb_stage_profile(cfg, rng) for name in shape},
    }


def _fb_stages(
    cfg: FacebookTraceConfig,
    template: Dict[str, object],
    num_map: int,
) -> List[TraceStage]:
    shape: Sequence[str] = template["shape"]  # type: ignore[assignment]
    profiles: Dict[str, Dict[str, float]] = template["profiles"]  # type: ignore[assignment]
    stages: List[TraceStage] = []
    prev_name: Optional[str] = None
    prev_output_total = 0.0
    for depth, stage_name in enumerate(shape):
        profile = profiles[stage_name]
        duration = profile["duration"]
        if depth == 0:
            num_tasks = num_map
            input_mb = profile["disk"] * duration
            input_kind = "blocks"
            # a remotely-placed map still streams input at a useful rate:
            # floor the network demand at a quarter of the disk rate
            netin = max(profile["net"], profile["disk"] / 4.0)
            diskr = profile["disk"]
        else:
            num_tasks = max(1, int(round(num_map * cfg.reduce_fraction)))
            input_mb = prev_output_total / num_tasks
            input_kind = "shuffle"
            netin = max(input_mb / duration, 1.0)
            # shuffle data is mostly remote; the occasional co-located
            # partition is read at max(diskr, netin) by the flow builder,
            # so no disk-read demand needs declaring here
            diskr = 0.0
        # output selectivity drawn independently of the input rate so that
        # disk-write and network demands stay uncorrelated (Table 2)
        selectivity = profile["selectivity"]
        write_mb = input_mb * selectivity
        stages.append(
            TraceStage(
                name=stage_name,
                num_tasks=num_tasks,
                cpu=profile["cpu"],
                mem=profile["mem"],
                diskr=diskr,
                diskw=max(write_mb / duration, 0.5),
                netin=netin,
                netout=0.0,
                cpu_work=profile["cpu"] * duration,
                input_mb_per_task=input_mb,
                write_mb_per_task=write_mb,
                parents=[prev_name] if prev_name else [],
                input_kind=input_kind,
                shuffle_fanin=3,
                demand_jitter=cfg.demand_jitter,
            )
        )
        prev_name = stage_name
        prev_output_total = write_mb * num_tasks
    return stages


@dataclass(frozen=True)
class BingTraceConfig(FacebookTraceConfig):
    """Bing/Cosmos-style workload (Table 1): Scope scripts compile to
    *deep* DAGs (the paper lists DAG depth as "Large"), with occasional
    join stages that read from two upstream stages at once.  Resource
    statistics reuse the Facebook-matched lognormals."""

    min_depth: int = 3
    max_depth: int = 7
    p_join: float = 0.3
    num_jobs: int = 100


def _bing_template(
    cfg: BingTraceConfig, rng: np.random.Generator, index: int
) -> Dict[str, object]:
    """A recurring deep-DAG template: a chain with optional joins.

    Each stage reads from its predecessor; with probability ``p_join`` a
    stage also reads from a short side chain (a two-parent join, the
    bread and butter of Scope scripts).
    """
    depth = int(rng.integers(cfg.min_depth, cfg.max_depth + 1))
    names = [f"s{k}" for k in range(depth)]
    parents: Dict[str, List[str]] = {names[0]: []}
    side_sources: List[str] = []
    for k in range(1, depth):
        parents[names[k]] = [names[k - 1]]
        if k >= 2 and rng.uniform() < cfg.p_join:
            # join with the output of an earlier stage
            donor = names[int(rng.integers(0, k - 1))]
            parents[names[k]].append(donor)
            side_sources.append(donor)
    profiles = {name: _fb_stage_profile(cfg, rng) for name in names}
    return {
        "name": f"bing{index}",
        "names": names,
        "parents": parents,
        "profiles": profiles,
    }


def _bing_stages(
    cfg: BingTraceConfig,
    template: Dict[str, object],
    num_leaf_tasks: int,
) -> List[TraceStage]:
    names: Sequence[str] = template["names"]  # type: ignore[assignment]
    parents: Dict[str, List[str]] = template["parents"]  # type: ignore[assignment]
    profiles: Dict[str, Dict[str, float]] = template["profiles"]  # type: ignore[assignment]
    stages: List[TraceStage] = []
    output_total: Dict[str, float] = {}
    task_count: Dict[str, int] = {}
    for depth, name in enumerate(names):
        profile = profiles[name]
        duration = profile["duration"]
        selectivity = profile["selectivity"]
        if depth == 0:
            num_tasks = num_leaf_tasks
            input_mb = profile["disk"] * duration
            input_kind = "blocks"
            netin = max(profile["net"], profile["disk"] / 4.0)
            diskr = profile["disk"]
        else:
            upstream_total = sum(
                output_total[p] for p in parents[name]
            )
            num_tasks = max(
                1, int(round(task_count[parents[name][0]] * 0.5))
            )
            input_mb = upstream_total / num_tasks
            input_kind = "shuffle"
            netin = max(input_mb / duration, 1.0)
            diskr = 0.0
        write_mb = input_mb * selectivity
        stages.append(
            TraceStage(
                name=name,
                num_tasks=num_tasks,
                cpu=profile["cpu"],
                mem=profile["mem"],
                diskr=diskr,
                diskw=max(write_mb / duration, 0.5),
                netin=netin,
                netout=0.0,
                cpu_work=profile["cpu"] * duration,
                input_mb_per_task=input_mb,
                write_mb_per_task=write_mb,
                parents=list(parents[name]),
                input_kind=input_kind,
                shuffle_fanin=3,
                demand_jitter=cfg.demand_jitter,
            )
        )
        output_total[name] = write_mb * num_tasks
        task_count[name] = num_tasks
    return stages


def generate_bing_trace(
    config: Optional[BingTraceConfig] = None,
) -> List[TraceJob]:
    """A synthetic trace with Bing's deep Scope DAGs (Table 1)."""
    cfg = config if config is not None else BingTraceConfig()
    rng = np.random.default_rng(cfg.seed)
    templates = [
        _bing_template(cfg, rng, i) for i in range(cfg.num_templates)
    ]
    jobs: List[TraceJob] = []
    for j in range(cfg.num_jobs):
        template = templates[int(rng.integers(len(templates)))]
        num_leaf = int(
            round(rng.lognormal(mean=cfg.size_mu, sigma=cfg.size_sigma))
        )
        num_leaf = min(max(num_leaf, 1), cfg.max_map_tasks)
        arrival = float(rng.uniform(0.0, cfg.arrival_horizon))
        jobs.append(
            TraceJob(
                name=f"bing-{j}",
                arrival_time=arrival,
                stages=_bing_stages(cfg, template, num_leaf),
                template=str(template["name"]),
            )
        )
    jobs.sort(key=lambda tj: tj.arrival_time)
    return jobs


def generate_facebook_trace(
    config: Optional[FacebookTraceConfig] = None,
) -> List[TraceJob]:
    """A synthetic trace matched to the Facebook cluster's statistics."""
    cfg = config if config is not None else FacebookTraceConfig()
    rng = np.random.default_rng(cfg.seed)
    templates = [
        _fb_template(cfg, rng, i) for i in range(cfg.num_templates)
    ]
    jobs: List[TraceJob] = []
    for j in range(cfg.num_jobs):
        template = templates[int(rng.integers(len(templates)))]
        num_map = int(
            round(rng.lognormal(mean=cfg.size_mu, sigma=cfg.size_sigma))
        )
        num_map = min(max(num_map, 1), cfg.max_map_tasks)
        arrival = float(rng.uniform(0.0, cfg.arrival_horizon))
        jobs.append(
            TraceJob(
                name=f"fb-{j}",
                arrival_time=arrival,
                stages=_fb_stages(cfg, template, num_map),
                template=str(template["name"]),
            )
        )
    jobs.sort(key=lambda tj: tj.arrival_time)
    return jobs
