"""Jobs: DAGs of stages with arrival times and remaining-work accounting."""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional, Sequence

from repro.resources import ResourceVector
from repro.workload.dag import StageDag
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskState

__all__ = ["Job", "JobState"]

_job_ids = itertools.count()


class JobState(enum.Enum):
    WAITING = "waiting"  # not yet arrived
    ACTIVE = "active"
    FINISHED = "finished"


class Job:
    """One job: a DAG of stages submitted at ``arrival_time``.

    ``template`` names the recurring job this is an instance of (hourly /
    daily reruns on new data, Section 4.1); the demand estimator keys its
    history on it.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        arrival_time: float = 0.0,
        name: Optional[str] = None,
        template: Optional[str] = None,
    ):
        self.job_id: int = next(_job_ids)
        self.name = name if name is not None else f"job-{self.job_id}"
        self.template = template
        self.arrival_time = arrival_time
        self.dag = StageDag(stages)
        self.state = JobState.WAITING
        self.finish_time: Optional[float] = None
        for stage in self.dag:
            stage.job = self
            for task in stage.tasks:
                task.job = self

    # -- lifecycle ---------------------------------------------------------
    def arrive(self) -> None:
        if self.state is JobState.WAITING:
            self.state = JobState.ACTIVE

    def note_task_finished(self) -> List[Stage]:
        """Propagate barriers; returns newly released stages."""
        released = self.dag.release_ready_stages()
        if self.dag.is_finished():
            self.state = JobState.FINISHED
        return released

    @property
    def is_finished(self) -> bool:
        return self.state is JobState.FINISHED

    def mark_finished(self, time: float) -> None:
        self.finish_time = time

    @property
    def completion_time(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    # -- task queries --------------------------------------------------------
    def all_tasks(self) -> List[Task]:
        return [t for s in self.dag for t in s.tasks]

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self.dag)

    def runnable_tasks(self) -> List[Task]:
        return [t for s in self.dag for t in s.runnable_tasks()]

    def has_runnable_tasks(self) -> bool:
        """O(stages) via the stages' transition-maintained counters."""
        return any(s.num_runnable for s in self.dag)

    def unfinished_tasks(self) -> List[Task]:
        return [t for s in self.dag for t in s.unfinished_tasks()]

    def running_tasks(self) -> List[Task]:
        return [
            t
            for s in self.dag
            for t in s.tasks
            if t.state is TaskState.RUNNING
        ]

    # -- scores ----------------------------------------------------------------
    def remaining_work_score(self, capacity: ResourceVector) -> float:
        """The paper's multi-resource SRTF score ``p`` (Section 3.3.1).

        Sum over remaining (unfinished) tasks of the task's total
        capacity-normalized demand multiplied by its estimated duration.
        Lower means less remaining work, so the job should be favored.
        """
        score = 0.0
        for stage in self.dag:
            for task in stage.tasks:
                if task.state is TaskState.FINISHED:
                    continue
                normalized = task.demands.normalized_by(capacity).total()
                score += normalized * task.nominal_duration()
        return score

    def barrier_tasks(self, barrier_knob: float) -> List[Task]:
        """Tasks eligible for barrier preference (Section 3.5).

        For each unfinished, released stage whose finished fraction has
        crossed ``barrier_knob``, the remaining tasks of that stage are
        returned.  Every stage is treated as preceding a barrier: either a
        downstream stage waits on it or the job's completion does.
        """
        if not 0.0 <= barrier_knob < 1.0:
            raise ValueError(f"barrier knob must be in [0, 1): {barrier_knob}")
        eligible: List[Task] = []
        for stage in self.dag:
            if stage.is_finished() or not stage.is_released():
                continue
            if stage.finished_fraction >= barrier_knob and stage.num_tasks > 0:
                eligible.extend(
                    t for t in stage.tasks if t.state is TaskState.RUNNABLE
                )
        return eligible

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id}, name={self.name!r}, "
            f"stages={len(self.dag)}, tasks={self.num_tasks}, "
            f"state={self.state.value})"
        )
