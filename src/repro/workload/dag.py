"""Stage DAG utilities: topological order, frontier, barrier queries."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence

from repro.workload.stage import Stage

__all__ = ["StageDag"]


class StageDag:
    """The DAG of stages of one job.

    Built from the stages' ``parents`` links; validates acyclicity and gives
    the queries the scheduler needs: which stages are released, which tasks
    sit just before a barrier, and how much work remains.
    """

    def __init__(self, stages: Sequence[Stage]):
        self.stages: List[Stage] = list(stages)
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        known = set(id(s) for s in self.stages)
        for stage in self.stages:
            for parent in stage.parents:
                if id(parent) not in known:
                    raise ValueError(
                        f"stage {stage.name!r} has a parent outside the DAG"
                    )
        self._order = self._toposort()

    def _toposort(self) -> List[Stage]:
        indegree: Dict[int, int] = {id(s): len(s.parents) for s in self.stages}
        by_id = {id(s): s for s in self.stages}
        queue = deque(s for s in self.stages if not s.parents)
        order: List[Stage] = []
        while queue:
            stage = queue.popleft()
            order.append(stage)
            for child in stage.children:
                if id(child) not in indegree:
                    continue
                indegree[id(child)] -= 1
                if indegree[id(child)] == 0:
                    queue.append(by_id[id(child)])
        if len(order) != len(self.stages):
            raise ValueError("stage graph has a cycle")
        return order

    # -- queries ---------------------------------------------------------------
    def topological_order(self) -> List[Stage]:
        return list(self._order)

    def roots(self) -> List[Stage]:
        return [s for s in self.stages if not s.parents]

    def leaves(self) -> List[Stage]:
        return [s for s in self.stages if not s.children]

    def depth(self) -> int:
        """Length of the longest stage chain."""
        depth_of: Dict[int, int] = {}
        for stage in self._order:
            parent_depth = max(
                (depth_of[id(p)] for p in stage.parents), default=0
            )
            depth_of[id(stage)] = parent_depth + 1
        return max(depth_of.values(), default=0)

    def release_ready_stages(self) -> List[Stage]:
        """Unblock every stage whose parents have all finished."""
        released = []
        for stage in self.stages:
            if stage.is_finished():
                continue
            if any(t.state.value == "blocked" for t in stage.tasks):
                if stage.release_if_ready():
                    released.append(stage)
        return released

    def is_finished(self) -> bool:
        return all(s.is_finished() for s in self.stages)

    def unfinished_stages(self) -> List[Stage]:
        return [s for s in self.stages if not s.is_finished()]

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)
