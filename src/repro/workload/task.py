"""Tasks: the unit of scheduling.

A task carries two kinds of quantities, mirroring Table 4 of the paper:

- **peak demands** ``d`` (a :class:`~repro.resources.ResourceVector`): the
  rates/amounts the task can use at most — cores, peak memory, peak disk
  read/write bandwidth, peak network bandwidth in/out.
- **work** ``f`` (:class:`TaskWork`): the total amounts to be processed —
  CPU core-seconds, bytes to read (split per input), bytes to write.

The task's *duration* is not fixed: it follows eq. (5) of the paper — the
maximum over resource dimensions of work divided by the *achieved* rate,
where achieved rates depend on placement (local vs. remote input) and on
contention at the machines involved.  The fluid simulator
(:mod:`repro.sim.fluid`) integrates this.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.resources import ResourceVector

__all__ = ["Task", "TaskInput", "TaskState", "TaskWork", "NEGLIGIBLE_WORK"]

#: work amounts below this (MB or core-seconds) are treated as zero:
#: sub-byte transfers complete instantly regardless of the allocated rate
NEGLIGIBLE_WORK = 1e-6

_task_ids = itertools.count()


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    BLOCKED = "blocked"  # upstream stage has not released it yet
    RUNNABLE = "runnable"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True)
class TaskInput:
    """One input partition of a task.

    ``size_mb`` megabytes live on the machines in ``locations`` (HDFS-style
    replicas for map inputs; the single producing machine for shuffle data).
    An empty ``locations`` means the data's placement is decided lazily by
    the block store when the producing task runs.
    """

    size_mb: float
    locations: Tuple[int, ...] = ()

    def is_local_to(self, machine_id: int) -> bool:
        return machine_id in self.locations


@dataclass
class TaskWork:
    """Total work of a task along each dimension (the ``f`` terms of Table 4).

    ``cpu_core_seconds`` is CPU work; reading work is carried by the task's
    inputs; ``write_mb`` is the output written to the local disk (the paper's
    simplification: output goes to local disk).
    """

    cpu_core_seconds: float = 0.0
    write_mb: float = 0.0

    def scaled(self, factor: float) -> "TaskWork":
        return TaskWork(self.cpu_core_seconds * factor, self.write_mb * factor)


class Task:
    """A schedulable task.

    Parameters
    ----------
    demands:
        Peak resource demands (rates).  The network components of this
        vector only apply when inputs are read remotely; the scheduler
        adjusts demands to the candidate placement
        (:meth:`demands_on`).
    work:
        Total CPU and write work.
    inputs:
        Input partitions with sizes and replica locations.
    duration_hint:
        The task's nominal duration under peak rates with no contention.
        Used by demand estimators and the SRTF score; computed lazily from
        work if not given.
    """

    __slots__ = (
        "task_id",
        "job",
        "stage",
        "index",
        "demands",
        "work",
        "inputs",
        "state",
        "machine_id",
        "start_time",
        "finish_time",
        "duration_hint",
        "attempts",
        "_table",
        "_slot",
    )

    def __init__(
        self,
        demands: ResourceVector,
        work: TaskWork,
        inputs: Sequence[TaskInput] = (),
        duration_hint: Optional[float] = None,
        index: int = 0,
    ):
        self.task_id: int = next(_task_ids)
        self.job = None  # set by Job
        self.stage = None  # set by Stage
        self.index = index
        self.demands = demands
        self.work = work
        self.inputs: List[TaskInput] = list(inputs)
        self.state = TaskState.BLOCKED
        self.machine_id: Optional[int] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.duration_hint = duration_hint
        #: failed execution attempts so far (failure injection)
        self.attempts = 0
        #: structure-of-arrays attachment (set by TaskTable.register);
        #: state transitions write through to the table's parallel arrays
        self._table = None
        self._slot: Optional[int] = None

    # -- size helpers -------------------------------------------------------
    @property
    def input_mb(self) -> float:
        return sum(inp.size_mb for inp in self.inputs)

    def nominal_duration(self) -> float:
        """Duration at peak rates with all-local input and no contention.

        This is eq. (5) evaluated with every achieved rate equal to the
        peak demand — the fastest the task can possibly run.
        """
        if self.duration_hint is not None:
            return self.duration_hint
        terms = [0.0]
        cpu = self.demands.get("cpu")
        if self.work.cpu_core_seconds > NEGLIGIBLE_WORK and cpu > 0:
            terms.append(self.work.cpu_core_seconds / cpu)
        diskr = self.demands.get("diskr")
        if self.input_mb > NEGLIGIBLE_WORK and diskr > 0:
            terms.append(self.input_mb / diskr)
        diskw = self.demands.get("diskw")
        if self.work.write_mb > NEGLIGIBLE_WORK and diskw > 0:
            terms.append(self.work.write_mb / diskw)
        return max(terms)

    def remote_input_mb(self, machine_id: int) -> float:
        """Megabytes that must cross the network if placed on ``machine_id``."""
        return sum(
            inp.size_mb for inp in self.inputs if not inp.is_local_to(machine_id)
        )

    def demands_on(self, machine_id: int) -> ResourceVector:
        """Peak demands adjusted for a candidate placement (Section 3.2).

        If all input is local the network demand vanishes; if some input is
        remote the task needs ``netin`` at this machine.  ``netout`` at the
        *remote* machines is checked separately by the scheduler and is not
        part of the local demand vector.
        """
        remote = self.remote_input_mb(machine_id)
        local = self.input_mb - remote
        d = self.demands.copy()
        if remote <= 0:
            d.set("netin", 0.0)
        if local <= 0:
            d.set("diskr", 0.0)
        d.set("netout", 0.0)  # output stays on local disk in our model
        return d

    # -- state transitions ---------------------------------------------------
    # every transition funnels through these four methods (nothing else
    # assigns ``state``), which is what lets the stage keep O(1)
    # runnable/finished counters instead of rescanning its task list
    def mark_runnable(self) -> None:
        if self.state is TaskState.BLOCKED:
            self.state = TaskState.RUNNABLE
            if self.stage is not None:
                self.stage._num_runnable += 1
            if self._table is not None:
                self._table.note_state(self._slot, self.state)

    def mark_running(self, machine_id: int, time: float) -> None:
        if self.state is not TaskState.RUNNABLE:
            raise RuntimeError(f"task {self.task_id} not runnable: {self.state}")
        self.state = TaskState.RUNNING
        self.machine_id = machine_id
        self.start_time = time
        if self.stage is not None:
            self.stage._num_runnable -= 1
        if self._table is not None:
            self._table.note_state(self._slot, self.state)
            self._table.note_machine(self._slot, machine_id)

    def mark_finished(self, time: float) -> None:
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(f"task {self.task_id} not running: {self.state}")
        self.state = TaskState.FINISHED
        self.finish_time = time
        if self.stage is not None:
            self.stage._num_finished += 1
        if self._table is not None:
            self._table.note_state(self._slot, self.state)

    def mark_failed(self, time: float) -> None:
        """The attempt died; the task goes back to the runnable pool.

        Only the successful attempt's timestamps are kept, so ``duration``
        reflects the final execution (re-run work is visible through
        ``attempts`` and in job completion times).
        """
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(f"task {self.task_id} not running: {self.state}")
        self.state = TaskState.RUNNABLE
        self.machine_id = None
        self.start_time = None
        self.attempts += 1
        if self.stage is not None:
            self.stage._num_runnable += 1
        if self._table is not None:
            self._table.note_state(self._slot, self.state)
            self._table.note_machine(self._slot, None)

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def __repr__(self) -> str:
        job_id = getattr(self.job, "job_id", None)
        stage = getattr(self.stage, "name", None)
        return (
            f"Task(id={self.task_id}, job={job_id}, stage={stage}, "
            f"state={self.state.value})"
        )
