"""Stages: groups of statistically-similar tasks separated by barriers.

The paper's jobs are DAGs of *stages* (map, reduce, joins, ...).  Tasks in a
stage run the same code on different partitions, so their resource profiles
are similar — the property the demand estimator exploits (Section 4.1).  A
stage releases its tasks when every parent stage has fully finished (strict
barrier), which is also what the barrier knob (Section 3.5) leans on.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence

from repro.workload.task import Task, TaskState

__all__ = ["Stage"]

_stage_ids = itertools.count()


class Stage:
    """A set of tasks plus barrier bookkeeping.

    Parameters
    ----------
    name:
        Stage name, unique within the job (e.g. ``"map"``, ``"reduce"``).
    tasks:
        The stage's tasks.
    parents:
        Upstream stages; this stage's tasks stay ``BLOCKED`` until all
        parents finish.
    """

    def __init__(
        self,
        name: str,
        tasks: Sequence[Task],
        parents: Iterable["Stage"] = (),
    ):
        #: process-unique, never-reused identifier.  Schedulers key their
        #: per-stage state on this instead of ``id(stage)``: a CPython
        #: object id can be recycled after garbage collection, which
        #: aliases stages across back-to-back runs in long sweeps.
        self.stage_id: int = next(_stage_ids)
        self.name = name
        self.tasks: List[Task] = list(tasks)
        self.parents: List[Stage] = list(parents)
        self.children: List[Stage] = []
        self.job = None  # set by Job
        for parent in self.parents:
            parent.children.append(self)
        for i, task in enumerate(self.tasks):
            task.stage = self
            task.index = i
        # transition-maintained counters (see Task.mark_*); seeded by a
        # one-time scan in case tasks arrive already runnable/finished
        self._num_runnable = sum(
            1 for t in self.tasks if t.state is TaskState.RUNNABLE
        )
        self._num_finished = sum(
            1 for t in self.tasks if t.state is TaskState.FINISHED
        )
        if not self.parents:
            for task in self.tasks:
                task.mark_runnable()

    # -- progress -------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_finished(self) -> int:
        return self._num_finished

    @property
    def num_runnable(self) -> int:
        return self._num_runnable

    @property
    def finished_fraction(self) -> float:
        if not self.tasks:
            return 1.0
        return self.num_finished / len(self.tasks)

    def is_finished(self) -> bool:
        return self._num_finished == len(self.tasks)

    def is_released(self) -> bool:
        """True once the barrier in front of this stage has lifted."""
        return all(p.is_finished() for p in self.parents)

    def runnable_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.state is TaskState.RUNNABLE]

    def unfinished_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.state is not TaskState.FINISHED]

    def release_if_ready(self) -> bool:
        """Unblock tasks when all parents are done.  Returns True if released."""
        if not self.is_released():
            return False
        for task in self.tasks:
            task.mark_runnable()
        return True

    def precedes_barrier(self) -> bool:
        """A stage precedes a barrier if anything waits on it.

        The end of the job also counts as a barrier for the purpose of the
        barrier knob (Section 3.5): finishing the last tasks of a terminal
        stage directly finishes the job.
        """
        return True

    def first_unfinished_tasks(self, count: int) -> List[Task]:
        out: List[Task] = []
        for task in self.tasks:
            if task.state is not TaskState.FINISHED:
                out.append(task)
                if len(out) >= count:
                    break
        return out

    def mean_task_demand_total(self) -> Optional[float]:
        """Average of the (unnormalized) total demand of this stage's tasks."""
        if not self.tasks:
            return None
        return sum(t.demands.total() for t in self.tasks) / len(self.tasks)

    def __repr__(self) -> str:
        return (
            f"Stage({self.name!r}, tasks={self.num_tasks}, "
            f"finished={self.num_finished})"
        )
