"""The structure-of-arrays task table.

Hot per-task scalars live here as parallel numpy arrays indexed by a
*stable integer slot*: demand vectors as an ``(N, dims)`` matrix, the
nominal duration, total work, lifecycle state, placement machine and
stage/job identity.  :class:`~repro.workload.task.Task` objects stay
the API surface — registering a task attaches it to a slot and every
state transition (``mark_runnable`` / ``mark_running`` /
``mark_finished`` / ``mark_failed``) writes through to the arrays, so
array-level consumers (kernels, metrics, analyses) never rescan the
object graph.

Slots are recycled: when the engine releases a finished task its slot
returns to the free list and the next registered task reuses it.  The
table therefore stays sized to the *live* task population, not the
total task count of the trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.resources import ResourceModel
from repro.workload.task import Task, TaskState

__all__ = ["TaskTable", "STATE_CODES"]

#: TaskState -> int8 code stored in the state array
STATE_CODES: Dict[TaskState, int] = {
    TaskState.BLOCKED: 0,
    TaskState.RUNNABLE: 1,
    TaskState.RUNNING: 2,
    TaskState.FINISHED: 3,
}

_INITIAL_CAPACITY = 64


class TaskTable:
    """Parallel arrays of per-task hot state with stable slot ids."""

    __slots__ = (
        "model",
        "demands",
        "duration",
        "work_cpu",
        "work_write",
        "state",
        "machine",
        "stage_id",
        "job_id",
        "_tasks",
        "_free",
        "_high",
    )

    def __init__(self, model: ResourceModel, capacity: int = _INITIAL_CAPACITY):
        capacity = max(int(capacity), 1)
        self.model = model
        self.demands = np.zeros((capacity, model.dims))
        self.duration = np.zeros(capacity)
        self.work_cpu = np.zeros(capacity)
        self.work_write = np.zeros(capacity)
        self.state = np.zeros(capacity, dtype=np.int8)
        self.machine = np.full(capacity, -1, dtype=np.int64)
        self.stage_id = np.full(capacity, -1, dtype=np.int64)
        self.job_id = np.full(capacity, -1, dtype=np.int64)
        self._tasks: List[Optional[Task]] = [None] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._high = 0  # slots ever touched (dense prefix bound)

    # -- slot management ---------------------------------------------------
    def _grow(self) -> None:
        old = self.demands.shape[0]
        new = old * 2
        grown = np.zeros((new, self.model.dims))
        grown[:old] = self.demands
        self.demands = grown
        for name, fill in (
            ("duration", 0.0),
            ("work_cpu", 0.0),
            ("work_write", 0.0),
        ):
            arr = np.full(new, fill)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        state = np.zeros(new, dtype=np.int8)
        state[:old] = self.state
        self.state = state
        for name in ("machine", "stage_id", "job_id"):
            arr = np.full(new, -1, dtype=np.int64)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        self._tasks.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def register(self, task: Task) -> int:
        """Attach ``task`` to a slot (reusing freed slots) and copy its
        hot scalars into the arrays.  Idempotent for an attached task."""
        if task._table is self and task._slot is not None:
            return task._slot
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._high = max(self._high, slot + 1)
        self._tasks[slot] = task
        self.demands[slot] = task.demands.data
        self.duration[slot] = task.nominal_duration()
        self.work_cpu[slot] = task.work.cpu_core_seconds
        self.work_write[slot] = task.work.write_mb
        self.state[slot] = STATE_CODES[task.state]
        self.machine[slot] = -1 if task.machine_id is None else task.machine_id
        stage = task.stage
        self.stage_id[slot] = -1 if stage is None else stage.stage_id
        job = task.job
        self.job_id[slot] = -1 if job is None else job.job_id
        task._table = self
        task._slot = slot
        return slot

    def release(self, task: Task) -> None:
        """Detach ``task`` and return its slot to the free list."""
        slot = task._slot
        if task._table is not self or slot is None:
            return
        task._table = None
        task._slot = None
        self._tasks[slot] = None
        self.state[slot] = STATE_CODES[TaskState.FINISHED]
        self.machine[slot] = -1
        self.stage_id[slot] = -1
        self.job_id[slot] = -1
        self._free.append(slot)

    # -- write-through hooks (called from Task.mark_*) ---------------------
    def note_state(self, slot: int, state: TaskState) -> None:
        self.state[slot] = STATE_CODES[state]

    def note_machine(self, slot: int, machine_id: Optional[int]) -> None:
        self.machine[slot] = -1 if machine_id is None else machine_id

    # -- queries -----------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.demands.shape[0]

    @property
    def num_live(self) -> int:
        return self.capacity - len(self._free)

    def task_at(self, slot: int) -> Optional[Task]:
        return self._tasks[slot]

    def live_slots(self) -> np.ndarray:
        """Slots currently holding a task (ascending)."""
        high = self._high
        mask = np.zeros(high, dtype=bool)
        for slot in range(high):
            if self._tasks[slot] is not None:
                mask[slot] = True
        return np.flatnonzero(mask)

    def state_counts(self) -> Dict[str, int]:
        """Live task counts per lifecycle state (array scan, no objects)."""
        out = {}
        high = self._high
        codes = self.state[:high]
        live = np.array(
            [self._tasks[s] is not None for s in range(high)], dtype=bool
        )
        for state, code in STATE_CODES.items():
            out[state.value] = int(np.count_nonzero(live & (codes == code)))
        return out

    def __len__(self) -> int:
        return self.num_live

    def __repr__(self) -> str:
        return f"TaskTable(live={self.num_live}, capacity={self.capacity})"
