"""Workload model: tasks, stages, jobs, DAGs, and trace generation."""

from repro.workload.task import Task, TaskInput, TaskState, TaskWork
from repro.workload.stage import Stage
from repro.workload.job import Job, JobState
from repro.workload.dag import StageDag
from repro.workload.trace import TraceJob, TraceStage, load_trace, save_trace
from repro.workload.tracegen import (
    BingTraceConfig,
    FacebookTraceConfig,
    WorkloadSuiteConfig,
    generate_bing_trace,
    generate_facebook_trace,
    generate_workload_suite,
)

__all__ = [
    "Task",
    "TaskInput",
    "TaskState",
    "TaskWork",
    "Stage",
    "Job",
    "JobState",
    "StageDag",
    "TraceJob",
    "TraceStage",
    "load_trace",
    "save_trace",
    "FacebookTraceConfig",
    "BingTraceConfig",
    "WorkloadSuiteConfig",
    "generate_facebook_trace",
    "generate_bing_trace",
    "generate_workload_suite",
]
