"""Serialize a finished run to Chrome trace-event (Perfetto) JSON.

The export maps the simulation onto the trace-event model:

- one *process* per machine, with task lifetimes as complete (``"X"``)
  slices; concurrent tasks on a machine are packed greedily into lanes
  (threads) so slices never overlap within a track;
- a ``scheduler`` process with one instant event per scheduling round
  (machines visited, placements made, wall-clock cost) and counter
  (``"C"``) tracks for running tasks and event-queue depth;
- a ``shuffle`` process whose slices are the remote-read windows: tasks
  that pulled input across the network, spanning their runtime.

Timestamps are simulation seconds scaled to microseconds (the unit the
trace-event format expects).  Load the output at ``ui.perfetto.dev`` or
``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["chrome_trace_events", "write_chrome_trace"]

_US = 1e6  # simulation seconds -> trace-event microseconds


def _assign_lanes(intervals: List[tuple]) -> List[int]:
    """Greedy interval packing: the lane index for each (start, end).

    ``intervals`` must be sorted by start.  Returns one lane id per
    interval such that intervals sharing a lane never overlap — Perfetto
    renders each lane as its own thread track.
    """
    lane_free_at: List[float] = []
    lanes: List[int] = []
    for start, end in intervals:
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= start + 1e-12:
                lane_free_at[lane] = end
                lanes.append(lane)
                break
        else:
            lane_free_at.append(end)
            lanes.append(len(lane_free_at) - 1)
    return lanes


def chrome_trace_events(engine: "Engine") -> List[dict]:
    """The run's trace-event list (call after ``engine.run()``)."""
    events: List[dict] = []
    num_machines = engine.cluster.num_machines
    scheduler_pid = num_machines
    shuffle_pid = num_machines + 1

    # -- process metadata ---------------------------------------------------
    for machine in engine.cluster.machines:
        events.append({
            "name": "process_name", "ph": "M", "pid": machine.machine_id,
            "args": {"name": f"machine {machine.machine_id}"},
        })
        events.append({
            "name": "process_sort_index", "ph": "M",
            "pid": machine.machine_id,
            "args": {"sort_index": machine.machine_id},
        })
    events.append({
        "name": "process_name", "ph": "M", "pid": scheduler_pid,
        "args": {"name": "scheduler"},
    })
    events.append({
        "name": "process_name", "ph": "M", "pid": shuffle_pid,
        "args": {"name": "shuffle flows"},
    })

    # -- task lifetimes, one process per machine, greedy lanes --------------
    by_machine: Dict[int, List] = {}
    for job in engine.jobs:
        for task in job.all_tasks():
            if (
                task.machine_id is None
                or task.start_time is None
                or task.finish_time is None
            ):
                continue
            by_machine.setdefault(task.machine_id, []).append(task)
    for machine_id, tasks in sorted(by_machine.items()):
        tasks.sort(key=lambda t: (t.start_time, t.task_id))
        lanes = _assign_lanes(
            [(t.start_time, t.finish_time) for t in tasks]
        )
        for task, lane in zip(tasks, lanes):
            remote_mb = task.remote_input_mb(machine_id)
            events.append({
                "name": f"{task.job.name}/{task.stage.name}#{task.index}",
                "cat": "task", "ph": "X", "pid": machine_id, "tid": lane,
                "ts": task.start_time * _US,
                "dur": (task.finish_time - task.start_time) * _US,
                "args": {
                    "job": task.job.name,
                    "stage": task.stage.name,
                    "task": task.index,
                    "attempts": task.attempts,
                    "remote_input_mb": remote_mb,
                },
            })
            if remote_mb > 0:
                events.append({
                    "name": f"shuffle {task.job.name}/{task.stage.name}"
                            f"#{task.index}",
                    "cat": "shuffle", "ph": "X", "pid": shuffle_pid,
                    "tid": machine_id,
                    "ts": task.start_time * _US,
                    "dur": (task.finish_time - task.start_time) * _US,
                    "args": {"remote_input_mb": remote_mb,
                             "dest_machine": machine_id},
                })

    # -- scheduler rounds ---------------------------------------------------
    for time, machines, placements, wall in engine.round_log:
        events.append({
            "name": "scheduler round", "cat": "scheduler", "ph": "i",
            "pid": scheduler_pid, "tid": 0, "ts": time * _US, "s": "p",
            "args": {
                "machines_visited": machines,
                "placements": placements,
                "wall_ms": wall * 1e3,
            },
        })

    # -- counters from the metrics timeline ---------------------------------
    for point in engine.collector.timeline:
        events.append({
            "name": "running tasks", "cat": "scheduler", "ph": "C",
            "pid": scheduler_pid, "ts": point.time * _US,
            "args": {"running": point.running_tasks},
        })
    return events


def write_chrome_trace(engine: "Engine", path) -> None:
    """Write the run as a Perfetto-loadable JSON object file."""
    payload = {
        "traceEvents": chrome_trace_events(engine),
        "displayTimeUnit": "ms",
        "otherData": {
            "scheduler": engine.scheduler.name,
            "machines": engine.cluster.num_machines,
            "jobs": len(engine.jobs),
            "sim_duration_s": engine.now,
        },
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f)
