"""A dependency-free Prometheus-style metrics registry.

Three metric types, the exposition subset this project needs:

- :class:`Counter` — monotonically increasing (rounds, placements,
  cache hits);
- :class:`Gauge` — goes up and down (ledger size, event-queue depth);
- :class:`Histogram` — cumulative buckets plus ``_sum`` / ``_count``
  (placements per round, round latencies).

Metrics are created through :class:`Registry` and support optional
labels::

    reg = Registry()
    hits = reg.counter("repro_cache_hits_total", "Packing-cache hits")
    hits.inc()
    evictions = reg.counter(
        "repro_cache_evictions_total", "Evictions", labelnames=("scope",)
    )
    evictions.labels(scope="full").inc()
    print(reg.render())

``render()`` emits the Prometheus text exposition format (``# HELP`` /
``# TYPE`` headers followed by one sample per line), so the output can be
scraped, diffed, or dropped into any Prometheus tooling as-is.
"""

from __future__ import annotations

import math
import re
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "RollingWindow",
    "parse_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets (seconds-ish scale; override per metric)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)

#: wall-clock latency buckets for service-level histograms (sub-ms
#: through tens of seconds): the serve daemon's placement-latency
#: histogram uses these, and anything else measuring request-scale
#: round trips should too, so latency profiles stay comparable
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double quote, and newline must be written as ``\\\\``, ``\\"`` and
    ``\\n`` so the sample stays one parseable line."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        if nxt == "n":
            out.append("\n")
        else:
            # \\ and \" unescape to the literal character; an unknown
            # escape keeps the character as-is (the spec's behavior)
            out.append(nxt)
    return "".join(out)


def _escape_help(text: str) -> str:
    """HELP text escaping: only backslash and newline (quotes are legal)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(
    labelnames: Sequence[str], labelvalues: Sequence[str], extra: str = ""
) -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram with ``_sum`` and ``_count``."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        upper = sorted(float(b) for b in buckets)
        if not upper:
            raise ValueError("histogram needs at least one bucket")
        if upper[-1] != math.inf:
            upper.append(math.inf)
        self.buckets: Tuple[float, ...] = tuple(upper)
        self.counts: List[int] = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Requires identical bucket boundaries — merged histograms must
        have been created from the same metric definition.
        """
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        self.count += other.count

    def cumulative_counts(self) -> List[int]:
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation within the
        bucket holding the target rank (the ``histogram_quantile`` model:
        observations spread uniformly inside each bucket).

        Returns ``nan`` with no observations.  A rank landing in the
        ``+Inf`` bucket clamps to that bucket's lower bound — the largest
        finite boundary is the best available estimate.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            prev_cumulative = cumulative
            cumulative += self.counts[i]
            if cumulative >= rank:
                lower = 0.0 if i == 0 else self.buckets[i - 1]
                if bound == math.inf:
                    return lower
                in_bucket = cumulative - prev_cumulative
                if in_bucket == 0:
                    return lower
                fraction = (rank - prev_cumulative) / in_bucket
                return lower + fraction * (bound - lower)
        return self.buckets[-2] if len(self.buckets) > 1 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict export: counts per upper bound plus sum/count and
        interpolated p50/p90/p99 — everything a bench profile embeds.
        Quantiles of an empty histogram export as ``None`` (strict JSON
        has no NaN)."""
        def finite(q: float) -> Optional[float]:
            value = self.quantile(q)
            return None if math.isnan(value) else value

        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                _format_value(bound): cum
                for bound, cum in zip(self.buckets, self.cumulative_counts())
            },
            "p50": finite(0.5),
            "p90": finite(0.9),
            "p99": finite(0.99),
        }


class RollingWindow:
    """A sliding time window of ``(timestamp, value)`` observations.

    Backs the serve daemon's *windowed* gauges (placements/sec over the
    last minute, latency quantiles over recent placements) — unlike a
    :class:`Histogram`, old observations age out, so the reading tracks
    the current regime rather than the whole run.  Memory is doubly
    bounded: by the window span and by ``max_samples`` (oldest evicted
    first, which under overload biases the window toward recent data —
    the right bias for a liveness surface).

    Timestamps must be nondecreasing (they come from one monotonic
    clock).  Not thread-safe; writers own it, readers get plain floats
    via the gauges it feeds.
    """

    __slots__ = ("window", "_samples", "_total", "_t0")

    def __init__(self, window: float = 60.0, max_samples: int = 8192) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._samples: deque = deque(maxlen=max_samples)
        self._total = 0.0
        self._t0: Optional[float] = None

    def add(self, t: float, value: float = 1.0) -> None:
        if self._t0 is None:
            self._t0 = t
        if len(self._samples) == self._samples.maxlen:
            self._total -= self._samples[0][1]
        self._samples.append((t, value))
        self._total += value
        self._evict(t)

    def _evict(self, now: float) -> None:
        floor = now - self.window
        samples = self._samples
        while samples and samples[0][0] < floor:
            self._total -= samples.popleft()[1]

    def count(self, now: float) -> int:
        self._evict(now)
        return len(self._samples)

    def total(self, now: float) -> float:
        self._evict(now)
        return self._total

    def rate(self, now: float) -> float:
        """Summed values per second over the window.  Before a full
        window has elapsed the divisor is the observed span, so early
        readings are not diluted by time that never happened."""
        if self._t0 is None:
            return 0.0
        span = min(self.window, now - self._t0)
        if span <= 0:
            return 0.0
        return self.total(now) / span

    def quantile(self, q: float, now: float) -> float:
        """Exact ``q``-quantile of the retained values (``nan`` when
        empty) — the window is small enough to sort on demand."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self._evict(now)
        if not self._samples:
            return math.nan
        values = sorted(v for _, v in self._samples)
        rank = q * (len(values) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(values) - 1)
        return values[lo] + (rank - lo) * (values[hi] - values[lo])

    def __len__(self) -> int:
        return len(self._samples)


_TYPES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricFamily:
    """One named metric and its per-label-value children.

    An unlabeled family delegates ``inc``/``set``/``dec``/``observe`` to
    its single implicit child, so ``reg.counter("x", "...").inc()`` works
    without a ``labels()`` round-trip.
    """

    def __init__(
        self,
        name: str,
        documentation: str,
        cls: type,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.documentation = documentation
        self.cls = cls
        self.labelnames = tuple(labelnames)
        self._buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    @property
    def type(self) -> str:
        return _TYPES[self.cls]

    def _make_child(self):
        if self.cls is Histogram:
            return Histogram(
                self._buckets if self._buckets is not None else DEFAULT_BUCKETS
            )
        return self.cls()

    def labels(self, **labelvalues: str):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def children(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        return sorted(self._children.items())

    def merge(self, other: "MetricFamily") -> None:
        """Fold another family's children into this one (see
        :meth:`Registry.merge` for per-type semantics)."""
        if other.cls is not self.cls:
            raise ValueError(
                f"metric {self.name!r}: cannot merge {other.type} "
                f"into {self.type}"
            )
        if other.labelnames != self.labelnames:
            raise ValueError(
                f"metric {self.name!r}: label names differ "
                f"({other.labelnames} vs {self.labelnames})"
            )
        for key, child in other.children():
            mine = self._children.get(key)
            if mine is None:
                mine = self._children[key] = self._make_child()
            if self.cls is Counter:
                mine.value += child.value
            elif self.cls is Gauge:
                # gauges are instantaneous readings; the merged-in run's
                # final reading wins (last-write-wins)
                mine.value = child.value
            else:
                mine.merge(child)

    # -- unlabeled convenience --------------------------------------------------
    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} is labeled; call .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    @property
    def count(self) -> int:
        return self._solo().count

    @property
    def sum(self) -> float:
        return self._solo().sum


class Registry:
    """Holds metric families; renders the text exposition format.

    Registering the same (name, type) twice returns the existing family,
    so components re-wired across runs share their metrics instead of
    erroring; a name re-registered as a *different* type raises.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        documentation: str,
        cls: type,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.cls is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.type}"
                )
            return existing
        family = MetricFamily(name, documentation, cls, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, documentation: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, documentation, Counter, labelnames)

    def gauge(
        self, name: str, documentation: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, documentation, Gauge, labelnames)

    def histogram(
        self,
        name: str,
        documentation: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._register(name, documentation, Histogram, labelnames, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def merge(self, other: "Registry") -> "Registry":
        """Fold another registry's state into this one and return self.

        The aggregation used when per-run registries cross a process
        boundary (``repro.exec`` workers each populate a fresh registry;
        the parent merges them): counters **add**, histograms add
        bucket-wise (same boundaries required), and gauges take the
        merged-in value — a gauge is an instantaneous reading, so the
        last merged run wins.  Families missing on this side are created
        with the other side's definition; a name registered as a
        different type on the two sides raises ``ValueError``.
        ``other`` is never modified.
        """
        for name in other.names():
            theirs = other._families[name]
            mine = self._families.get(name)
            if mine is None:
                mine = self._register(
                    name,
                    theirs.documentation,
                    theirs.cls,
                    theirs.labelnames,
                    theirs._buckets,
                )
            mine.merge(theirs)
        return self

    def names(self) -> List[str]:
        return sorted(self._families)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict export of every family, JSON-serializable as-is.

        Children are keyed by ``label=value`` pairs joined with commas
        (``""`` for the unlabeled child), so bench profiles can embed
        metric state without parsing the text exposition::

            {"repro_engine_rounds_total": {
                "type": "counter", "help": "...",
                "values": {"": 12.0}}}

        Histogram children export the :meth:`Histogram.as_dict` shape.
        """
        out: Dict[str, Dict[str, object]] = {}
        for name in self.names():
            family = self._families[name]
            values: Dict[str, object] = {}
            for labelvalues, child in family.children():
                key = ",".join(
                    f"{n}={v}"
                    for n, v in zip(family.labelnames, labelvalues)
                )
                if family.cls is Histogram:
                    values[key] = child.as_dict()
                else:
                    values[key] = child.value
            out[name] = {
                "type": family.type,
                "help": family.documentation,
                "values": values,
            }
        return out

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        lines: List[str] = []
        for name in self.names():
            family = self._families[name]
            if family.documentation:
                lines.append(
                    f"# HELP {name} {_escape_help(family.documentation)}"
                )
            lines.append(f"# TYPE {name} {family.type}")
            for labelvalues, child in family.children():
                if family.cls is Histogram:
                    cumulative = child.cumulative_counts()
                    for bound, count in zip(child.buckets, cumulative):
                        le = _format_labels(
                            family.labelnames,
                            labelvalues,
                            extra=f'le="{_format_value(bound)}"',
                        )
                        lines.append(f"{name}_bucket{le} {count}")
                    labels = _format_labels(family.labelnames, labelvalues)
                    lines.append(
                        f"{name}_sum{labels} {_format_value(child.sum)}"
                    )
                    lines.append(f"{name}_count{labels} {child.count}")
                else:
                    labels = _format_labels(family.labelnames, labelvalues)
                    lines.append(
                        f"{name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        return f"Registry(metrics={self.names()})"


# label values are quoted strings that may contain escaped quotes and
# backslashes (and any other character, including "}"), so both regexes
# must skip over quoted sections rather than stopping at the first
# closing brace or quote
_SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(\{(?:[^"}]|"(?:[^"\\]|\\.)*")*\})?\s+(\S+)$'
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def parse_exposition(text: str) -> Dict[str, Dict[str, float]]:
    """Parse :meth:`Registry.render` output back into plain values.

    Returns ``{metric name: {label key: value}}`` with label keys in the
    same ``"name=value,..."`` shape as :meth:`Registry.snapshot` (``""``
    for unlabeled samples).  Histogram series surface under their
    ``_bucket``/``_sum``/``_count`` sample names — this reads the *text*
    a run wrote to disk, it does not reconstruct live metric objects.
    Raises ``ValueError`` on a line that is neither a comment nor a
    well-formed sample.
    """
    out: Dict[str, Dict[str, float]] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name, labelblock, raw = m.groups()
        labels = ""
        if labelblock:
            labels = ",".join(
                f"{k}={_unescape_label_value(v)}"
                for k, v in _LABEL_PAIR_RE.findall(labelblock)
            )
        if raw == "+Inf":
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        else:
            value = float(raw)
        out.setdefault(name, {})[labels] = value
    return out
