"""Placement explainability over a recorded decision log.

``repro explain`` answers the question a cluster operator actually
asks — *why did task X land on machine M, and why then?* — from a
``DecisionTrace`` JSONL alone, without re-running the scheduler.  The
reconstruction leans on two properties of the event stream:

- within one machine visit, each fill iteration emits its rejections
  and scored candidates first, then (optionally) a ``barrier_filter``,
  then the winning ``placement`` — so grouping events by
  ``(time, machine)`` and cutting at each placement recovers exactly
  the candidate pool the argmax saw;
- the ``placement`` event carries the full score decomposition
  (``alignment``, ``epsilon``, ``srtf_term``, ``combined``, ``remote``,
  ``margin``, ``pool`` — see :data:`repro.obs.trace.OPTIONAL_FIELDS`),
  emitted identically by the scalar and vectorized paths, so the
  narrative's numbers *are* the scheduler's numbers.

Two query shapes: :func:`explain_task` reconstructs one task's journey
(considerations, rejections, fairness-filter cuts that delayed its job,
the winning decision and its margin); :func:`explain_window` aggregates
all decisions inside a time window.  Logs from before the schema
extension still explain — decomposition fields simply come back absent.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import _iter_jsonl

__all__ = [
    "explain_task",
    "explain_window",
    "iter_decisions",
    "parse_task_ref",
    "render_task_explanation",
    "render_window_explanation",
]

#: events that participate in one fill iteration's candidate pool
_POOL_EVENTS = ("candidate", "fit_reject", "remote_reject")


def parse_task_ref(ref: str) -> Tuple[str, str, int]:
    """Parse ``job/stage/index`` (splitting from the right, so job names
    containing ``/`` survive)."""
    parts = ref.rsplit("/", 2)
    if len(parts) != 3:
        raise ValueError(
            f"task reference must look like job/stage/index, got {ref!r}"
        )
    job, stage, index = parts
    try:
        return job, stage, int(index)
    except ValueError:
        raise ValueError(
            f"task index must be an integer, got {index!r}"
        ) from None


def iter_decisions(path) -> Iterable[Dict[str, Any]]:
    """Stream per-iteration decision groups from a decision JSONL.

    Yields dicts with the ``placement`` event (or ``None`` for a group
    whose pool produced no placement), the ``candidates`` /
    ``rejections`` considered in that same fill iteration, and the
    ``barrier`` event if the straggler filter narrowed the pool.
    Invalid lines are skipped (counted by the callers that care).
    """
    pending: Dict[Tuple[float, int], Dict[str, List[dict]]] = {}
    for _lineno, event, error in _iter_jsonl(path):
        if error is not None:
            continue
        etype = event["type"]
        if etype in _POOL_EVENTS:
            key = (event["time"], event["machine"])
            group = pending.setdefault(
                key, {"candidates": [], "rejections": []}
            )
            if etype == "candidate":
                group["candidates"].append(event)
            else:
                group["rejections"].append(event)
        elif etype == "barrier_filter":
            key = (event["time"], event["machine"])
            group = pending.setdefault(
                key, {"candidates": [], "rejections": []}
            )
            group["barrier"] = event
        elif etype == "placement":
            key = (event["time"], event["machine"])
            group = pending.pop(
                key, {"candidates": [], "rejections": []}
            )
            yield {
                "time": event["time"],
                "machine": event["machine"],
                "placement": event,
                "candidates": group["candidates"],
                "rejections": group["rejections"],
                "barrier": group.get("barrier"),
            }
    for (time, machine), group in pending.items():
        yield {
            "time": time,
            "machine": machine,
            "placement": None,
            "candidates": group["candidates"],
            "rejections": group["rejections"],
            "barrier": group.get("barrier"),
        }


def _is_task(event: dict, job: str, stage: str, index: int) -> bool:
    return (
        event.get("job") == job
        and event.get("stage") == stage
        and event.get("task") == index
    )


def explain_task(path, job: str, stage: str, index: int) -> Dict[str, Any]:
    """Reconstruct one task's full decision narrative from a JSONL log.

    Returns a dict with every *consideration* (the task was scored as a
    candidate, with its outcome in that iteration), every *rejection*
    (fit / remote, with the overflow quantities when recorded), the
    job-level *fairness cuts* that kept the task from even being
    considered, and the winning *decision* — the placement event plus
    the competing candidates the argmax beat.
    """
    considerations: List[dict] = []
    rejections: List[dict] = []
    placements: List[dict] = []
    fairness_cuts: List[float] = []
    task_start: Optional[dict] = None
    invalid = 0

    # pass 1: job-level context and events that do not need grouping
    for _lineno, event, error in _iter_jsonl(path):
        if error is not None:
            invalid += 1
            continue
        etype = event["type"]
        if etype == "fairness_filter" and job in event.get("dropped", []):
            fairness_cuts.append(event["time"])
        elif etype == "task_start" and _is_task(event, job, stage, index):
            task_start = event

    # pass 2: per-iteration groups for pool-level context
    for decision in iter_decisions(path):
        placed = decision["placement"]
        for cand in decision["candidates"]:
            if not _is_task(cand, job, stage, index):
                continue
            entry = dict(cand)
            if placed is not None and _is_task(placed, job, stage, index):
                entry["outcome"] = "placed"
            elif placed is not None:
                entry["outcome"] = "lost"
                entry["lost_to"] = {
                    "job": placed["job"],
                    "stage": placed["stage"],
                    "task": placed["task"],
                    "combined": placed.get("combined"),
                }
                if placed.get("combined") is not None:
                    entry["behind_by"] = (
                        placed["combined"] - cand["combined"]
                    )
            else:
                entry["outcome"] = "no_placement"
            considerations.append(entry)
        for reject in decision["rejections"]:
            if _is_task(reject, job, stage, index):
                rejections.append(dict(reject))
        if placed is not None and _is_task(placed, job, stage, index):
            competitors = sorted(
                (
                    dict(c)
                    for c in decision["candidates"]
                    if not _is_task(c, job, stage, index)
                ),
                key=lambda c: c.get("combined", 0.0),
                reverse=True,
            )
            placements.append(
                {
                    "placement": dict(placed),
                    "competitors": competitors,
                    "barrier": decision["barrier"],
                }
            )

    first_seen = min(
        (e["time"] for e in considerations + rejections), default=None
    )
    placed_at = (
        placements[0]["placement"]["time"] if placements else None
    )
    if placed_at is not None:
        # only cuts *before* the placement delayed this task; later
        # rounds cut the job for its remaining work, not for this task
        fairness_cuts = [t for t in fairness_cuts if t <= placed_at]
    return {
        "task": {"job": job, "stage": stage, "index": index},
        "found": bool(
            considerations or rejections or placements or task_start
        ),
        "first_considered": first_seen,
        "placed_at": placed_at,
        "wait": (
            placed_at - first_seen
            if placed_at is not None and first_seen is not None
            else None
        ),
        "considerations": considerations,
        "rejections": rejections,
        "fairness_cuts": {
            "count": len(fairness_cuts),
            "times": fairness_cuts[:50],
        },
        "decisions": placements,
        "task_start": task_start,
        "invalid_events": invalid,
    }


def explain_window(path, t0: float, t1: float) -> Dict[str, Any]:
    """Aggregate every decision with ``t0 <= time <= t1``."""
    placements = 0
    margins: List[float] = []
    pool_sizes: List[int] = []
    by_via: TallyCounter = TallyCounter()
    placements_by_job: TallyCounter = TallyCounter()
    rejections: TallyCounter = TallyCounter()
    fairness_cut_jobs: TallyCounter = TallyCounter()
    barrier_filters = 0
    candidates = 0
    invalid = 0
    for _lineno, event, error in _iter_jsonl(path):
        if error is not None:
            invalid += 1
            continue
        time = event.get("time")
        if time is None or not (t0 <= time <= t1):
            continue
        etype = event["type"]
        if etype == "placement":
            placements += 1
            by_via[event["via"]] += 1
            placements_by_job[event["job"]] += 1
            if event.get("margin") is not None:
                margins.append(event["margin"])
            if event.get("pool") is not None:
                pool_sizes.append(event["pool"])
        elif etype == "candidate":
            candidates += 1
        elif etype == "fit_reject":
            rejections[f"fit:{event['dim']}"] += 1
        elif etype == "remote_reject":
            rejections["remote-sources"] += 1
        elif etype == "fairness_filter":
            for name in event.get("dropped", []):
                fairness_cut_jobs[name] += 1
        elif etype == "barrier_filter":
            barrier_filters += 1
    return {
        "window": {"start": t0, "end": t1},
        "placements": placements,
        "candidates_scored": candidates,
        "placements_by_via": dict(by_via),
        "top_jobs": dict(placements_by_job.most_common(10)),
        "rejections": dict(rejections.most_common()),
        "fairness_cuts_by_job": dict(fairness_cut_jobs.most_common(10)),
        "barrier_filters": barrier_filters,
        "margin": {
            "count": len(margins),
            "mean": sum(margins) / len(margins) if margins else None,
            "min": min(margins, default=None),
            "max": max(margins, default=None),
        },
        "pool_size_mean": (
            sum(pool_sizes) / len(pool_sizes) if pool_sizes else None
        ),
        "invalid_events": invalid,
    }


# -- rendering -------------------------------------------------------------------
def _fmt(value: Optional[float], digits: int = 4) -> str:
    return "n/a" if value is None else f"{value:.{digits}f}"


def render_task_explanation(
    explanation: Dict[str, Any], limit: int = 10
) -> str:
    """The human-readable narrative for :func:`explain_task` output."""
    task = explanation["task"]
    ref = f"{task['job']}/{task['stage']}/{task['index']}"
    lines: List[str] = []
    if not explanation["found"]:
        lines.append(f"task {ref}: no events in this log")
        return "\n".join(lines)
    lines.append(f"task {ref}")
    considered = explanation["considerations"]
    if considered:
        machines = sorted({c["machine"] for c in considered})
        lines.append(
            f"  considered {len(considered)} time(s) on "
            f"{len(machines)} machine(s) "
            f"(t={_fmt(explanation['first_considered'], 1)} .. "
            f"{_fmt(max(c['time'] for c in considered), 1)})"
        )
    cuts = explanation["fairness_cuts"]
    if cuts["count"]:
        times = ", ".join(f"{t:.1f}" for t in cuts["times"][:5])
        lines.append(
            f"  fairness filter cut job {task['job']} in "
            f"{cuts['count']} round(s) (t={times}"
            + (", ...)" if cuts["count"] > 5 else ")")
        )
    rejects = explanation["rejections"]
    if rejects:
        by_kind: TallyCounter = TallyCounter()
        for r in rejects:
            if r["type"] == "fit_reject":
                by_kind[f"fit:{r['dim']}"] += 1
            else:
                by_kind["remote-sources"] += 1
        detail = ", ".join(f"{k} x{n}" for k, n in by_kind.most_common())
        lines.append(f"  rejected {len(rejects)} time(s): {detail}")
        worst = next(
            (r for r in rejects if r.get("need") is not None), None
        )
        if worst is not None:
            lines.append(
                f"    e.g. t={worst['time']:.1f} machine "
                f"{worst['machine']}: needed {worst['need']:.2f} "
                f"{worst['dim']}, only {worst['free']:.2f} free"
            )
    for decision in explanation["decisions"]:
        p = decision["placement"]
        lines.append(
            f"  placed at t={p['time']:.1f} on machine {p['machine']} "
            f"(via {p['via']})"
        )
        if p.get("combined") is not None:
            lines.append(
                f"    alignment term   {_fmt(p.get('alignment'))}"
                + ("  [remote penalty applied]" if p.get("remote") else "")
            )
            lines.append(
                f"    srtf term       -{_fmt(p.get('srtf_term'))}"
                f"  (epsilon={_fmt(p.get('epsilon'), 6)}, "
                f"remaining work={_fmt(p.get('remaining_work'), 2)})"
            )
            lines.append(f"    combined score   {_fmt(p.get('combined'))}")
        if p.get("margin") is not None:
            lines.append(
                f"    won by margin    {_fmt(p.get('margin'))} over "
                f"{p.get('pool', 0) - 1} other candidate(s) in the pool"
            )
        elif p.get("pool") == 1:
            lines.append("    only candidate in the pool")
        if decision["barrier"] is not None:
            b = decision["barrier"]
            lines.append(
                f"    barrier filter narrowed the pool to "
                f"{b['barrier_candidates']} straggler candidate(s) "
                f"of {b['candidates']}"
            )
        competitors = decision["competitors"]
        if competitors:
            lines.append(
                f"    beat (top {min(limit, len(competitors))} "
                f"of {len(competitors)}):"
            )
            for c in competitors[:limit]:
                lines.append(
                    f"      {c['job']}/{c['stage']}/{c['task']}  "
                    f"combined={_fmt(c.get('combined'))} "
                    f"(alignment={_fmt(c.get('alignment'))}, "
                    f"remaining={_fmt(c.get('remaining_work'), 2)})"
                )
    start = explanation["task_start"]
    if start is not None:
        lines.append(
            f"  started by the engine at t={start['time']:.1f} "
            f"on machine {start['machine']}"
        )
    if explanation["wait"] is not None:
        lines.append(
            f"  waited {explanation['wait']:.1f} simulated second(s) "
            "from first consideration to placement"
        )
    if explanation["invalid_events"]:
        lines.append(
            f"  ({explanation['invalid_events']} invalid log line(s) "
            "skipped)"
        )
    return "\n".join(lines)


def render_window_explanation(summary: Dict[str, Any]) -> str:
    """The human-readable rollup for :func:`explain_window` output."""
    w = summary["window"]
    lines = [
        f"window t={w['start']:.1f} .. {w['end']:.1f}",
        f"  placements: {summary['placements']} "
        f"({summary['candidates_scored']} candidates scored)",
    ]
    if summary["placements_by_via"]:
        detail = ", ".join(
            f"{via} x{n}"
            for via, n in sorted(summary["placements_by_via"].items())
        )
        lines.append(f"  by path: {detail}")
    margin = summary["margin"]
    if margin["count"]:
        lines.append(
            f"  winning margin: mean={_fmt(margin['mean'])} "
            f"min={_fmt(margin['min'])} max={_fmt(margin['max'])} "
            f"(n={margin['count']})"
        )
    if summary["pool_size_mean"] is not None:
        lines.append(
            f"  mean argmax pool size: {summary['pool_size_mean']:.1f}"
        )
    if summary["rejections"]:
        detail = ", ".join(
            f"{k} x{n}" for k, n in list(summary["rejections"].items())[:8]
        )
        lines.append(f"  rejections: {detail}")
    if summary["fairness_cuts_by_job"]:
        detail = ", ".join(
            f"{job} x{n}"
            for job, n in list(summary["fairness_cuts_by_job"].items())[:8]
        )
        lines.append(f"  fairness cuts: {detail}")
    if summary["barrier_filters"]:
        lines.append(
            f"  barrier filters applied: {summary['barrier_filters']}"
        )
    if summary["top_jobs"]:
        detail = ", ".join(
            f"{job} x{n}" for job, n in list(summary["top_jobs"].items())[:8]
        )
        lines.append(f"  busiest jobs: {detail}")
    if summary["invalid_events"]:
        lines.append(
            f"  ({summary['invalid_events']} invalid log line(s) skipped)"
        )
    return "\n".join(lines)
