"""Structured decision tracing for the schedulers and the engine.

A :class:`DecisionTrace` is an opt-in sink for *why* the scheduler did
what it did.  Per scheduling round it receives: the fairness-knob cut,
each candidate's alignment / remaining-work / combined score, every
fit rejection (which resource overflowed on which machine), remote-source
rejections, barrier-preference filtering, and the winning placement.
The engine adds round records and task starts, so baseline schedulers
get a usable trace with no per-scheduler instrumentation.

Memory is bounded: events land in a ring buffer (``max_events`` deep) and,
when a ``path`` is given, are also streamed to a JSONL file so nothing is
lost on long runs.  When disabled the sink costs nothing — holders keep
``Optional[DecisionTrace]`` and skip all event construction when ``None``
(the same pattern as :class:`repro.profiling.Profiler`).

Tasks are identified by ``(job, stage, task)`` = (job name, stage name,
task index) rather than by ``task_id``: names are stable across fresh
materializations of the same trace, which is what lets the equivalence
property test compare the scalar and vectorized Tetris paths event by
event across two separate runs.
"""

from __future__ import annotations

import json
import os
from collections import Counter as TallyCounter
from collections import deque
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

__all__ = [
    "DecisionTrace",
    "EVENT_SCHEMA",
    "OPTIONAL_FIELDS",
    "summarize_decision_log",
    "validate_event",
    "validate_jsonl",
]

_NUM = (int, float)

#: event type -> required fields and their accepted types.  ``time`` is
#: simulation time (seconds); scores are floats straight from the
#: scheduler, so scalar/vectorized equivalence can be checked bit-for-bit.
EVENT_SCHEMA: Dict[str, Dict[str, tuple]] = {
    # one engine scheduling round (after the scheduler returned)
    "round": {
        "time": _NUM, "machines": (int,), "placements": (int,),
        "queue_depth": (int,),
    },
    # the fairness-knob cut over runnable jobs (Section 3.4)
    "fairness_filter": {
        "time": _NUM, "total_jobs": (int,), "kept_jobs": (int,),
        "dropped": (list,),
    },
    # a candidate did not fit: ``dim`` is the first overflowing resource
    "fit_reject": {
        "time": _NUM, "job": (str,), "stage": (str,), "task": (int,),
        "machine": (int,), "dim": (str,),
    },
    # remote read sources lacked disk/NIC headroom (Section 3.2)
    "remote_reject": {
        "time": _NUM, "job": (str,), "stage": (str,), "task": (int,),
        "machine": (int,),
    },
    # a scored candidate; ``remote`` marks the remote-penalty application
    "candidate": {
        "time": _NUM, "job": (str,), "stage": (str,), "task": (int,),
        "machine": (int,), "alignment": _NUM, "remaining_work": _NUM,
        "combined": _NUM, "remote": (bool,),
    },
    # barrier stragglers narrowed the argmax pool (Section 3.5)
    "barrier_filter": {
        "time": _NUM, "machine": (int,), "barrier_candidates": (int,),
        "candidates": (int,),
    },
    # the argmax (or a reservation admission): one placement decision
    "placement": {
        "time": _NUM, "job": (str,), "stage": (str,), "task": (int,),
        "machine": (int,), "via": (str,),
    },
    # a starved stage got a machine reserved (starvation_timeout)
    "reservation": {
        "time": _NUM, "job": (str,), "stage": (str,), "machine": (int,),
    },
    # delay scheduling declined a non-local offer (baselines)
    "locality_defer": {
        "time": _NUM, "job": (str,), "stage": (str,), "machine": (int,),
        "skips": (int,),
    },
    # the engine applied a placement (emitted for every scheduler)
    "task_start": {
        "time": _NUM, "job": (str,), "stage": (str,), "task": (int,),
        "machine": (int,),
    },
    # a starved stage promoted to floating (visible to every shard)
    "federation_spill": {
        "time": _NUM, "job": (str,), "stage": (str,),
        "home_shard": (int,), "waited": _NUM,
    },
    # wall-clock phase stats appended from a Profiler after the run
    "phase_stats": {
        "label": (str,), "count": (int,), "total_ms": _NUM,
        "mean_ms": _NUM, "min_ms": _NUM, "max_ms": _NUM,
    },
}

#: per-type fields that may be present but are not required.  The
#: ``placement`` extras are the full score decomposition behind the
#: argmax — enough for ``repro explain`` to reconstruct the decision
#: without re-running the scheduler: ``combined = alignment_weight *
#: alignment - srtf_term`` where ``srtf_term = srtf_multiplier * epsilon
#: * remaining_work``; ``margin`` is the winner's lead over the
#: runner-up in the final argmax pool (absent when the pool had one
#: candidate); ``pool`` is that pool's size; ``remote`` marks a
#: remote-penalized winner.  ``fit_reject`` extras quantify the
#: overflow: the booked demand and the machine's free amount on the
#: violating dimension.
OPTIONAL_FIELDS: Dict[str, Dict[str, tuple]] = {
    "placement": {
        "alignment": _NUM, "remaining_work": _NUM, "combined": _NUM,
        "epsilon": _NUM, "srtf_term": _NUM, "margin": _NUM,
        "pool": (int,), "remote": (bool,),
    },
    "fit_reject": {
        "need": _NUM, "free": _NUM,
    },
}


def validate_event(event: Any) -> None:
    """Raise ``ValueError`` unless ``event`` matches :data:`EVENT_SCHEMA`."""
    if not isinstance(event, dict):
        raise ValueError(f"event must be an object, got {type(event).__name__}")
    etype = event.get("type")
    if etype not in EVENT_SCHEMA:
        raise ValueError(f"unknown event type: {etype!r}")
    required = EVENT_SCHEMA[etype]
    optional = OPTIONAL_FIELDS.get(etype, {})
    for field, types in required.items():
        if field not in event:
            raise ValueError(f"{etype} event missing field {field!r}")
        value = event[field]
        # bool is an int subclass; only accept it where bool is declared
        if isinstance(value, bool) and bool not in types:
            raise ValueError(
                f"{etype}.{field} must be {types}, got bool"
            )
        if not isinstance(value, types):
            raise ValueError(
                f"{etype}.{field} must be {types}, "
                f"got {type(value).__name__}"
            )
    for field, value in event.items():
        if field in ("type",) or field in required:
            continue
        if field not in optional:
            raise ValueError(f"{etype} event has unknown field {field!r}")
        if not isinstance(value, optional[field]):
            raise ValueError(
                f"{etype}.{field} must be {optional[field]}, "
                f"got {type(value).__name__}"
            )


class DecisionTrace:
    """Bounded sink for structured scheduler decision events.

    - ``max_events`` bounds the in-memory ring buffer; older events are
      dropped once it is full (``dropped`` counts them);
    - ``path`` optionally streams every event to a JSONL file as it is
      emitted, so the full log survives regardless of the ring size.

    Use as a context manager (or call :meth:`close`) when streaming.
    """

    def __init__(
        self,
        path: Optional[Union[str, os.PathLike]] = None,
        max_events: int = 200_000,
    ) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self._ring: deque = deque(maxlen=max_events)
        self.emitted = 0
        self.path = path
        self._file: Optional[IO[str]] = (
            open(path, "w", encoding="utf-8") if path is not None else None
        )

    # -- emission --------------------------------------------------------------
    def emit(self, type_: str, **fields: Any) -> None:
        """Record one event.  ``fields`` must match the event's schema."""
        event = {"type": type_, **fields}
        self.emitted += 1
        self._ring.append(event)
        if self._file is not None:
            self._file.write(json.dumps(event, separators=(",", ":")))
            self._file.write("\n")

    # -- access ----------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events pushed out of the ring buffer (still on disk if streaming)."""
        return self.emitted - len(self._ring)

    def events(self, type_: Optional[str] = None) -> List[dict]:
        """Buffered events, optionally filtered by type."""
        if type_ is None:
            return list(self._ring)
        return [e for e in self._ring if e["type"] == type_]

    def tally(self) -> Dict[str, int]:
        """Buffered event counts by type."""
        return dict(TallyCounter(e["type"] for e in self._ring))

    def write_jsonl(self, path) -> None:
        """Dump the buffered events as JSONL (for non-streaming traces)."""
        with open(path, "w", encoding="utf-8") as f:
            for event in self._ring:
                f.write(json.dumps(event, separators=(",", ":")))
                f.write("\n")

    # -- lifecycle --------------------------------------------------------------
    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "DecisionTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"DecisionTrace(emitted={self.emitted}, buffered={len(self)}, "
            f"path={self.path!r})"
        )


# -- log analysis ---------------------------------------------------------------
def _iter_jsonl(path) -> Iterable[Tuple[int, Any, Optional[str]]]:
    """Yield (line number, parsed event or None, error or None)."""
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                yield lineno, None, f"invalid JSON: {exc}"
                continue
            try:
                validate_event(event)
            except ValueError as exc:
                yield lineno, event, str(exc)
                continue
            yield lineno, event, None


def validate_jsonl(path) -> Tuple[int, List[str]]:
    """Validate a decision log file.

    Returns ``(valid_count, errors)`` where each error is
    ``"line N: reason"``.
    """
    valid = 0
    errors: List[str] = []
    for lineno, _event, error in _iter_jsonl(path):
        if error is None:
            valid += 1
        else:
            errors.append(f"line {lineno}: {error}")
    return valid, errors


def _score_stats(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }


def summarize_decision_log(path) -> Dict[str, Any]:
    """Aggregate a decision JSONL into the ``repro inspect`` summary.

    Returns a dict with event tallies, top rejection reasons, candidate
    score distributions, placement/round counts, and any ``phase_stats``
    (Profiler) records found in the log.
    """
    by_type: TallyCounter = TallyCounter()
    rejections: TallyCounter = TallyCounter()
    alignments: List[float] = []
    combined: List[float] = []
    remote_penalized = 0
    placements_by_via: TallyCounter = TallyCounter()
    phases: List[dict] = []
    errors: List[str] = []
    for lineno, event, error in _iter_jsonl(path):
        if error is not None:
            errors.append(f"line {lineno}: {error}")
            continue
        etype = event["type"]
        by_type[etype] += 1
        if etype == "fit_reject":
            rejections[f"fit:{event['dim']}"] += 1
        elif etype == "remote_reject":
            rejections["remote-sources"] += 1
        elif etype == "candidate":
            alignments.append(event["alignment"])
            combined.append(event["combined"])
            if event["remote"]:
                remote_penalized += 1
        elif etype == "placement":
            placements_by_via[event["via"]] += 1
        elif etype == "phase_stats":
            phases.append(dict(event))
    return {
        "events_total": sum(by_type.values()),
        "by_type": dict(by_type),
        "invalid_events": len(errors),
        "errors": errors[:20],
        "rejections": dict(rejections.most_common()),
        "alignment": _score_stats(alignments),
        "combined": _score_stats(combined),
        "remote_penalized_candidates": remote_penalized,
        "placements_by_via": dict(placements_by_via),
        "rounds": by_type.get("round", 0),
        "placements": by_type.get("placement", 0),
        "phases": phases,
    }
