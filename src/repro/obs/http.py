"""The live telemetry plane: a dependency-free stdlib HTTP server.

:class:`TelemetryServer` wraps :class:`http.server.ThreadingHTTPServer`
around whatever observability surfaces the caller wires in — all of
them optional, all of them plain callables, so the server knows nothing
about the serve daemon (or any other host):

- ``GET /metrics`` — the Prometheus text exposition of a
  :class:`~repro.obs.registry.Registry` (scrape this);
- ``GET /healthz`` — a JSON liveness document; HTTP 200 when the
  payload says ``healthy``, 503 otherwise, so load balancers and
  ``curl -f`` work without parsing the body;
- ``GET /status`` — a JSON progress snapshot (the serve daemon wires
  its mid-run :class:`ServeReport` view here);
- ``GET /debug/trace?n=K`` — the last ``K`` ring-buffered decision
  events of a :class:`~repro.obs.trace.DecisionTrace` (tracing is a
  debug knob: when no trace is wired the endpoint answers with an
  empty list and a note rather than 404, so probes stay simple);
- ``GET /debug/profile`` — a live :class:`~repro.profiling.Profiler`
  snapshot (per-phase cumulative/self wall time plus rolling
  per-window rates; the serve daemon wires
  :meth:`SchedulerService.profile_snapshot` here).  Like tracing,
  an unwired profiler answers with empty phases and a note.

The server runs entirely in daemon threads: :meth:`start` binds and
returns the address (bind to port ``0`` for an ephemeral port — the
race-free pattern for tests and for ``repro serve --listen``), the host
process never blocks on it, and :meth:`stop` tears it down.  Handlers
only *read* from the wired callables; anything they raise is converted
to a 500 with the error text, never propagated into the host.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING
from urllib.parse import parse_qs, urlparse

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import Registry
    from repro.obs.trace import DecisionTrace

__all__ = ["TelemetryServer"]

#: /metrics content type per the Prometheus text exposition spec
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_DEFAULT_TRACE_EVENTS = 100


class TelemetryServer:
    """Serve ``/metrics``, ``/healthz``, ``/status`` and ``/debug/trace``
    for a running process.

    Every surface is optional: a missing ``registry`` renders an empty
    exposition, missing ``health_fn``/``status_fn`` answer 404, a
    missing ``trace`` or ``profile_fn`` yields an empty payload with a
    note.  ``health_fn`` must return a dict with a boolean
    ``"healthy"`` key; ``status_fn`` and ``profile_fn`` any
    JSON-serializable dict.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry: Optional["Registry"] = None,
        health_fn: Optional[Callable[[], Dict[str, object]]] = None,
        status_fn: Optional[Callable[[], Dict[str, object]]] = None,
        trace: Optional["DecisionTrace"] = None,
        profile_fn: Optional[Callable[[], Dict[str, object]]] = None,
    ) -> None:
        self._host = host
        self._port = port
        self.registry = registry
        self.health_fn = health_fn
        self.status_fn = status_fn
        self.trace = trace
        self.profile_fn = profile_fn
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — with port 0, the real ephemeral
        port the OS assigned.  Only valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("telemetry server is not running")
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> Tuple[str, int]:
        """Bind and serve from a daemon thread; returns the address."""
        if self._server is not None:
            raise RuntimeError("telemetry server already started")
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((self._host, self._port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Shut down and unbind; idempotent."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- endpoint payloads (shared with the handler) -----------------------------
    def render_metrics(self) -> str:
        if self.registry is None:
            return ""
        # label children may be created concurrently by the serving
        # loop; re-render on the (rare) mid-iteration mutation instead
        # of locking the hot path
        for _ in range(3):
            try:
                return self.registry.render()
            except RuntimeError:  # pragma: no cover - needs a data race
                continue
        return self.registry.render()  # pragma: no cover

    def trace_events(self, n: int) -> Dict[str, object]:
        trace = self.trace
        if trace is None:
            return {
                "events": [],
                "note": "decision tracing is not enabled on this run",
            }
        events = trace.events()
        return {
            "events": events[-n:] if n >= 0 else events,
            "emitted": trace.emitted,
            "buffered": len(events),
            "dropped": trace.dropped,
        }

    def profile_payload(self) -> Dict[str, object]:
        if self.profile_fn is None:
            return {
                "enabled": False,
                "phases": {},
                "note": "live profiling is not enabled on this run",
            }
        return self.profile_fn()


def _make_handler(server: TelemetryServer):
    class Handler(BaseHTTPRequestHandler):
        # one telemetry server per handler class: routing closes over it
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                self._route()
            except BrokenPipeError:  # pragma: no cover - client went away
                pass
            except Exception as exc:  # noqa: BLE001 - never kill the host
                self._send(
                    500,
                    "application/json",
                    json.dumps({"error": str(exc)}).encode("utf-8"),
                )

        def _route(self) -> None:
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            if route == "/metrics":
                body = server.render_metrics().encode("utf-8")
                self._send(200, _METRICS_CONTENT_TYPE, body)
            elif route == "/healthz":
                if server.health_fn is None:
                    self._not_found()
                    return
                payload = server.health_fn()
                code = 200 if payload.get("healthy") else 503
                self._send_json(code, payload)
            elif route == "/status":
                if server.status_fn is None:
                    self._not_found()
                    return
                self._send_json(200, server.status_fn())
            elif route == "/debug/trace":
                query = parse_qs(parsed.query)
                try:
                    n = int(query.get("n", [_DEFAULT_TRACE_EVENTS])[0])
                except ValueError:
                    self._send_json(
                        400, {"error": "query parameter n must be an integer"}
                    )
                    return
                self._send_json(200, server.trace_events(n))
            elif route == "/debug/profile":
                self._send_json(200, server.profile_payload())
            elif route == "/":
                self._send_json(
                    200,
                    {
                        "endpoints": [
                            "/metrics",
                            "/healthz",
                            "/status",
                            "/debug/trace?n=K",
                            "/debug/profile",
                        ]
                    },
                )
            else:
                self._not_found()

        def _not_found(self) -> None:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

        def _send_json(self, code: int, payload: Dict[str, object]) -> None:
            self._send(
                code,
                "application/json",
                json.dumps(payload).encode("utf-8"),
            )

        def _send(self, code: int, content_type: str, body: bytes) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args) -> None:  # noqa: D102 - silence stderr
            pass

    return Handler
