"""Observability: decision tracing, metrics registry, timeline export.

Three coordinated pieces, all dependency-free and opt-in:

- :mod:`repro.obs.trace` — :class:`DecisionTrace`, a structured sink the
  engine and the schedulers emit per-round decision events into (who was
  a candidate, who was rejected and why, who won), with bounded memory
  and an optional streaming JSONL file;
- :mod:`repro.obs.registry` — a Prometheus-style :class:`Registry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` metrics with a
  text exposition format;
- :mod:`repro.obs.timeline` — serialize a finished run (task lifetimes
  per machine, scheduler rounds, shuffle-flow windows) to Chrome
  trace-event JSON loadable in Perfetto;
- :mod:`repro.obs.http` — :class:`TelemetryServer`, the live telemetry
  plane a long-lived daemon binds (``/metrics``, ``/healthz``,
  ``/status``, ``/debug/trace``);
- :mod:`repro.obs.explain` — reconstruct a placement's full decision
  narrative from a recorded decision JSONL (``repro explain``).

Everything follows the same ``Optional[...]`` pattern as
:class:`repro.profiling.Profiler`: holders keep ``None`` by default and
skip all work when observability is off.
"""

from repro.obs.explain import (
    explain_task,
    explain_window,
    parse_task_ref,
    render_task_explanation,
    render_window_explanation,
)
from repro.obs.http import TelemetryServer
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    Registry,
    RollingWindow,
    parse_exposition,
)
from repro.obs.trace import (
    DecisionTrace,
    EVENT_SCHEMA,
    summarize_decision_log,
    validate_event,
    validate_jsonl,
)
from repro.obs.timeline import chrome_trace_events, write_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "Registry",
    "RollingWindow",
    "TelemetryServer",
    "parse_exposition",
    "DecisionTrace",
    "EVENT_SCHEMA",
    "explain_task",
    "explain_window",
    "parse_task_ref",
    "render_task_explanation",
    "render_window_explanation",
    "summarize_decision_log",
    "validate_event",
    "validate_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
]
