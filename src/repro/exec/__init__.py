"""Parallel execution of run grids: specs, backends, seed derivation.

The run pipeline is layered so every sweep in the paper — schedulers ×
knobs × seeds (Figures 4–11, Tables 5–7) — is a list of independent,
serializable :class:`RunSpec` cells that any backend can execute:

- :mod:`repro.exec.spec` — :class:`RunSpec` (frozen, picklable run
  description) and :func:`execute`, the single spec → ``RunResult``
  entry point; :func:`run_specs` fans a spec list out over a backend
  and returns :class:`RunOutcome` rows in spec order;
- :mod:`repro.exec.backends` — :class:`SerialBackend` (default,
  current behavior) and :class:`ProcessPoolBackend` (multiprocessing
  with per-run failure isolation, timeouts that kill hung workers,
  bounded retries, progress callbacks); worker counts default from the
  ``REPRO_WORKERS`` environment variable;
- :mod:`repro.exec.seeds` — ``SeedSequence``-spawned sibling seeds, the
  repo-wide scheme for seed-only sweeps.

Key invariant (property-tested): a grid run with ``workers=N`` is
bit-identical, metric for metric, to the serial run — parallelism is an
execution detail, never an experimental variable.  This is also the
seam later sharded/distributed backends plug into.
"""

from repro.exec.backends import (
    ExecutionError,
    ProcessPoolBackend,
    SerialBackend,
    TaskOutcome,
    get_backend,
    resolve_workers,
)
from repro.exec.seeds import spawn_seeds
from repro.exec.spec import (
    RunOutcome,
    RunSpec,
    execute,
    raise_on_failure,
    run_specs,
)

__all__ = [
    "ExecutionError",
    "ProcessPoolBackend",
    "SerialBackend",
    "TaskOutcome",
    "get_backend",
    "resolve_workers",
    "spawn_seeds",
    "RunOutcome",
    "RunSpec",
    "execute",
    "raise_on_failure",
    "run_specs",
]
