"""Pluggable execution backends: run independent tasks, keep spec order.

A backend maps a picklable function over a list of picklable items and
returns one :class:`TaskOutcome` per item, **in item order**, regardless
of completion order.  Two implementations:

- :class:`SerialBackend` — in-process loop, the default.  Exceptions are
  caught per item (failure isolation has the same semantics as the
  process backend), so a grid with one bad cell still yields every other
  cell.
- :class:`ProcessPoolBackend` — one worker process per in-flight item,
  at most ``workers`` alive at once.  Each item gets its own process and
  pipe, so a hung run can be *killed* (``timeout`` seconds, enforced
  with ``Process.terminate``) without poisoning a shared pool, and a
  worker that dies without reporting (OOM kill, segfault, ``os._exit``)
  is retried up to ``retries`` times.  Deterministic Python exceptions
  are **not** retried — they would fail identically — and are returned
  as failed outcomes with the worker's traceback.

Worker counts resolve ``workers`` argument → ``REPRO_WORKERS`` env var →
1, so CI and users can set a fleet-wide default without threading an
argument through every call site.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _mp_wait
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "TaskOutcome",
    "SerialBackend",
    "ProcessPoolBackend",
    "ExecutionError",
    "resolve_workers",
    "get_backend",
]

#: environment variable holding the default worker count
WORKERS_ENV = "REPRO_WORKERS"

#: progress callback: (completed_count, total, outcome_just_finished)
ProgressCallback = Callable[[int, int, "TaskOutcome"], None]


class ExecutionError(RuntimeError):
    """A backend run failed and the caller asked for results, not rows."""


@dataclass
class TaskOutcome:
    """Result row for one item: a value or a reported failure."""

    index: int
    ok: bool
    value: object = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 1
    #: wall-clock seconds spent inside the (last attempted) call
    wall_seconds: float = 0.0


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = 1
    return max(1, int(workers))


def get_backend(
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
):
    """The backend for a worker count: serial at 1, process pool above."""
    count = resolve_workers(workers)
    if count <= 1:
        return SerialBackend()
    return ProcessPoolBackend(workers=count, timeout=timeout, retries=retries)


class SerialBackend:
    """Run every item in-process, in order (the current behavior)."""

    name = "serial"
    workers = 1

    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        progress: Optional[ProgressCallback] = None,
    ) -> List[TaskOutcome]:
        items = list(items)
        outcomes: List[TaskOutcome] = []
        for index, item in enumerate(items):
            start = perf_counter()
            try:
                value = fn(item)
                outcome = TaskOutcome(
                    index, True, value=value,
                    wall_seconds=perf_counter() - start,
                )
            except Exception as exc:
                outcome = TaskOutcome(
                    index, False,
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                    wall_seconds=perf_counter() - start,
                )
            outcomes.append(outcome)
            if progress is not None:
                progress(len(outcomes), len(items), outcome)
        return outcomes


def _child_main(fn, item, conn) -> None:
    """Worker entry: run one item, report (status, ...) over the pipe."""
    start = perf_counter()
    try:
        value = fn(item)
        payload = ("ok", value, None, perf_counter() - start)
    except BaseException as exc:  # report, never crash silently
        payload = (
            "error",
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
            perf_counter() - start,
        )
    try:
        conn.send(payload)
    finally:
        conn.close()


@dataclass
class _Attempt:
    index: int
    item: object
    attempts: int = 0


class ProcessPoolBackend:
    """Bounded fleet of single-shot worker processes.

    ``timeout`` is per attempt (seconds of wall clock before the worker
    is terminated); ``retries`` bounds how many *additional* attempts a
    timed-out or silently-dead worker gets, so total attempts are at
    most ``retries + 1``.  ``start_method`` selects the multiprocessing
    context (platform default when ``None``; items and ``fn`` must be
    picklable under ``spawn``).
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        start_method: Optional[str] = None,
        poll_interval: float = 0.05,
    ) -> None:
        self.workers = resolve_workers(workers)
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        self.timeout = timeout
        self.retries = retries
        self.poll_interval = poll_interval
        self._ctx = (
            mp.get_context(start_method) if start_method else mp.get_context()
        )

    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        progress: Optional[ProgressCallback] = None,
    ) -> List[TaskOutcome]:
        items = list(items)
        total = len(items)
        results: List[Optional[TaskOutcome]] = [None] * total
        pending = deque(_Attempt(i, item) for i, item in enumerate(items))
        #: parent pipe end -> (process, attempt, deadline or None)
        live: Dict[object, tuple] = {}
        done = 0

        def finish(outcome: TaskOutcome) -> None:
            nonlocal done
            results[outcome.index] = outcome
            done += 1
            if progress is not None:
                progress(done, total, outcome)

        def retry_or_fail(
            attempt: _Attempt, error: str, elapsed: float
        ) -> None:
            """Requeue a dead/expired attempt, or fail it for good.

            ``elapsed`` is the wall clock the *attempt actually spent*
            before dying — a timeout on the final permitted attempt must
            surface as a timeout with its real duration, not inherit
            ``self.timeout`` (wrong for silent deaths, and 0.0 when no
            timeout is configured at all).
            """
            if attempt.attempts <= self.retries:
                pending.append(attempt)
            else:
                finish(TaskOutcome(
                    attempt.index, False, error=error,
                    attempts=attempt.attempts,
                    wall_seconds=elapsed,
                ))

        def settle(conn, proc, attempt: _Attempt, started: float) -> None:
            """Consume a reported payload (or EOF) from a worker."""
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                payload = None
            conn.close()
            proc.join()
            if payload is None:
                retry_or_fail(
                    attempt,
                    f"worker exited with code {proc.exitcode} "
                    "before returning a result",
                    time.monotonic() - started,
                )
            elif payload[0] == "ok":
                finish(TaskOutcome(
                    attempt.index, True, value=payload[1],
                    attempts=attempt.attempts,
                    wall_seconds=payload[3],
                ))
            else:
                finish(TaskOutcome(
                    attempt.index, False, error=payload[1],
                    traceback=payload[2],
                    attempts=attempt.attempts,
                    wall_seconds=payload[3],
                ))

        try:
            while pending or live:
                while pending and len(live) < self.workers:
                    attempt = pending.popleft()
                    attempt.attempts += 1
                    parent_conn, child_conn = self._ctx.Pipe(duplex=False)
                    proc = self._ctx.Process(
                        target=_child_main,
                        args=(fn, attempt.item, child_conn),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    started = time.monotonic()
                    deadline = (
                        None if self.timeout is None
                        else started + self.timeout
                    )
                    live[parent_conn] = (proc, attempt, deadline, started)
                for conn in _mp_wait(list(live), timeout=self.poll_interval):
                    proc, attempt, _, started = live.pop(conn)
                    settle(conn, proc, attempt, started)
                now = time.monotonic()
                expired = [
                    conn for conn, (_, _, deadline, _) in live.items()
                    if deadline is not None and now > deadline
                ]
                for conn in expired:
                    proc, attempt, _, started = live.pop(conn)
                    if conn.poll():
                        # the result arrived between the wait and the
                        # deadline check: it beat the clock, take it —
                        # otherwise a finished run would be reported as
                        # timed out (or, once terminated, as a silent
                        # worker death)
                        settle(conn, proc, attempt, started)
                        continue
                    proc.terminate()
                    proc.join(1.0)
                    if proc.is_alive():  # pragma: no cover - stubborn child
                        proc.kill()
                        proc.join(1.0)
                    conn.close()
                    retry_or_fail(
                        attempt,
                        f"timed out after {self.timeout}s "
                        f"(attempt {attempt.attempts})",
                        time.monotonic() - started,
                    )
        finally:
            # never leak workers, even if the parent is interrupted
            for conn, (proc, _, _, _) in live.items():
                proc.terminate()
                proc.join(1.0)
                conn.close()
        return results  # type: ignore[return-value]
