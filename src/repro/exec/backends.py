"""Pluggable execution backends: run independent tasks, keep spec order.

A backend maps a picklable function over a list of picklable items and
returns one :class:`TaskOutcome` per item, **in item order**, regardless
of completion order.  Two implementations:

- :class:`SerialBackend` — in-process loop, the default.  Exceptions are
  caught per item (failure isolation has the same semantics as the
  process backend), so a grid with one bad cell still yields every other
  cell.
- :class:`ProcessPoolBackend` — a **persistent** pool of long-lived
  worker processes, reused across successive :meth:`map` calls (the
  scheduler-federation round loop dispatches one item per shard per
  round, so per-call pool construction would dominate).  Workers are
  spawned lazily, live until :meth:`close`, and each holds one duplex
  pipe; a hung item can still be *killed* (``timeout`` seconds, enforced
  with ``Process.terminate`` — the worker is replaced by a fresh one),
  and a worker that dies without reporting (OOM kill, segfault,
  ``os._exit``) is replaced and the item retried up to ``retries``
  times.  Deterministic Python exceptions are **not** retried — they
  would fail identically — and are returned as failed outcomes with the
  worker's traceback.

With ``sticky=True`` item ``i`` is always routed to worker slot
``i % workers``: callers that keep per-item state inside the worker
(shard mirrors) get a stable item→process mapping across calls.  A
replaced worker keeps its *slot*, so the mapping survives crashes — the
process behind it is fresh, which stateful callers must detect
themselves (the federation's delta protocol re-syncs on epoch mismatch).

Worker counts resolve ``workers`` argument → ``REPRO_WORKERS`` env var →
1, so CI and users can set a fleet-wide default without threading an
argument through every call site.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _mp_wait
from time import perf_counter
from typing import Callable, List, Optional, Sequence

__all__ = [
    "TaskOutcome",
    "SerialBackend",
    "ProcessPoolBackend",
    "ExecutionError",
    "resolve_workers",
    "get_backend",
]

#: environment variable holding the default worker count
WORKERS_ENV = "REPRO_WORKERS"

#: progress callback: (completed_count, total, outcome_just_finished)
ProgressCallback = Callable[[int, int, "TaskOutcome"], None]


class ExecutionError(RuntimeError):
    """A backend run failed and the caller asked for results, not rows."""


@dataclass
class TaskOutcome:
    """Result row for one item: a value or a reported failure."""

    index: int
    ok: bool
    value: object = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 1
    #: wall-clock seconds spent inside the (last attempted) call
    wall_seconds: float = 0.0


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = 1
    return max(1, int(workers))


def get_backend(
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
):
    """The backend for a worker count: serial at 1, process pool above."""
    count = resolve_workers(workers)
    if count <= 1:
        return SerialBackend()
    return ProcessPoolBackend(workers=count, timeout=timeout, retries=retries)


class SerialBackend:
    """Run every item in-process, in order (the current behavior)."""

    name = "serial"
    workers = 1

    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        progress: Optional[ProgressCallback] = None,
    ) -> List[TaskOutcome]:
        items = list(items)
        outcomes: List[TaskOutcome] = []
        for index, item in enumerate(items):
            start = perf_counter()
            try:
                value = fn(item)
                outcome = TaskOutcome(
                    index, True, value=value,
                    wall_seconds=perf_counter() - start,
                )
            except Exception as exc:
                outcome = TaskOutcome(
                    index, False,
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                    wall_seconds=perf_counter() - start,
                )
            outcomes.append(outcome)
            if progress is not None:
                progress(len(outcomes), len(items), outcome)
        return outcomes

    def close(self) -> None:
        """Nothing to release; provided for backend-interface symmetry."""


def _pool_worker_main(conn) -> None:
    """Worker entry: serve (fn, item) requests until told to stop.

    Each request is answered with ``("ok", value, None, wall)`` or
    ``("error", message, traceback, wall)``.  ``None`` is the shutdown
    sentinel; a closed pipe (parent gone) also ends the loop.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        fn, item = msg
        start = perf_counter()
        try:
            payload = ("ok", fn(item), None, perf_counter() - start)
        except BaseException as exc:  # report, never crash silently
            payload = (
                "error",
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
                perf_counter() - start,
            )
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


@dataclass
class _Attempt:
    index: int
    item: object
    attempts: int = 0
    #: consecutive hand-off failures (worker died before accepting the
    #: item) — not charged as attempts, but bounded so a pool whose
    #: workers die at startup cannot spin forever
    dispatch_failures: int = 0


class _Worker:
    """Parent-side handle for one pool slot's live process."""

    __slots__ = ("slot", "proc", "conn", "attempt", "deadline", "started")

    def __init__(self, slot: int, proc, conn):
        self.slot = slot
        self.proc = proc
        self.conn = conn
        #: in-flight attempt (None when idle)
        self.attempt: Optional[_Attempt] = None
        self.deadline: Optional[float] = None
        self.started: float = 0.0


class ProcessPoolBackend:
    """Persistent pool of long-lived worker processes.

    ``timeout`` is per attempt (seconds of wall clock before the worker
    is terminated and replaced); ``retries`` bounds how many
    *additional* attempts a timed-out or silently-dead worker's item
    gets, so total attempts are at most ``retries + 1``.
    ``start_method`` selects the multiprocessing context (platform
    default when ``None``; items and ``fn`` must be picklable under
    ``spawn``).  ``sticky`` pins item ``i`` to worker slot
    ``i % workers`` across calls.

    The pool is usable as a context manager; otherwise call
    :meth:`close` (or rely on daemonized workers dying with the parent).
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        start_method: Optional[str] = None,
        poll_interval: float = 0.05,
        sticky: bool = False,
    ) -> None:
        self.workers = resolve_workers(workers)
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        self.timeout = timeout
        self.retries = retries
        self.poll_interval = poll_interval
        self.sticky = sticky
        self._ctx = (
            mp.get_context(start_method) if start_method else mp.get_context()
        )
        #: one slot per worker; None until first used (lazy spawn)
        self._slots: List[Optional[_Worker]] = [None] * self.workers
        self._closed = False

    # -- worker lifecycle ---------------------------------------------------
    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        worker = _Worker(slot, proc, parent_conn)
        self._slots[slot] = worker
        return worker

    def _worker_for(self, slot: int) -> _Worker:
        worker = self._slots[slot]
        if worker is None or not worker.proc.is_alive():
            if worker is not None:
                self._discard(worker)
            worker = self._spawn(slot)
        return worker

    def _discard(self, worker: _Worker) -> None:
        """Tear down a dead/poisoned worker; its slot respawns on demand."""
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        worker.proc.terminate()
        worker.proc.join(1.0)
        if worker.proc.is_alive():  # pragma: no cover - stubborn child
            worker.proc.kill()
            worker.proc.join(1.0)
        if self._slots[worker.slot] is worker:
            self._slots[worker.slot] = None

    def worker_pids(self) -> List[Optional[int]]:
        """Live worker PIDs by slot (None for never-spawned slots) —
        lets callers (and the PID-stability regression test) observe
        pool persistence without reaching into internals."""
        return [
            w.proc.pid if w is not None and w.proc.is_alive() else None
            for w in self._slots
        ]

    def close(self) -> None:
        """Shut the pool down: ask workers to exit, then make sure."""
        self._closed = True
        for worker in self._slots:
            if worker is None:
                continue
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self._discard(worker)

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            if not self._closed:
                self.close()
        except Exception:
            pass

    # -- the map loop -------------------------------------------------------
    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        progress: Optional[ProgressCallback] = None,
    ) -> List[TaskOutcome]:
        if self._closed:
            raise RuntimeError("backend is closed")
        items = list(items)
        total = len(items)
        results: List[Optional[TaskOutcome]] = [None] * total
        #: per-slot dispatch queues: sticky routing pins item i to slot
        #: i % workers; the non-sticky path keeps one shared queue
        if self.sticky:
            queues = [deque() for _ in range(self.workers)]
            for i, item in enumerate(items):
                queues[i % self.workers].append(_Attempt(i, item))
        else:
            queues = [deque(_Attempt(i, item) for i, item in enumerate(items))]
        done = 0

        def finish(outcome: TaskOutcome) -> None:
            nonlocal done
            results[outcome.index] = outcome
            done += 1
            if progress is not None:
                progress(done, total, outcome)

        def retry_or_fail(
            attempt: _Attempt, queue, error: str, elapsed: float
        ) -> None:
            """Requeue a dead/expired attempt, or fail it for good.

            ``elapsed`` is the wall clock the *attempt actually spent*
            before dying — a timeout on the final permitted attempt must
            surface as a timeout with its real duration, not inherit
            ``self.timeout`` (wrong for silent deaths, and 0.0 when no
            timeout is configured at all).
            """
            if attempt.attempts <= self.retries:
                queue.appendleft(attempt)
            else:
                finish(TaskOutcome(
                    attempt.index, False, error=error,
                    attempts=attempt.attempts,
                    wall_seconds=elapsed,
                ))

        def queue_of(attempt: _Attempt):
            if self.sticky:
                return queues[attempt.index % self.workers]
            return queues[0]

        def dispatch(slot: int, attempt: _Attempt) -> bool:
            """Hand one attempt to a slot's worker.

            Returns True when the attempt was *consumed* (accepted by a
            worker, or failed for good).  A worker that died between
            calls is not the item's fault, so the hand-off failure is
            not charged as an attempt — but repeated failures are
            bounded, so an environment whose workers die at startup
            fails the item instead of spinning forever.
            """
            worker = self._worker_for(slot)
            try:
                worker.conn.send((fn, attempt.item))
            except (BrokenPipeError, OSError):
                self._discard(worker)
                attempt.dispatch_failures += 1
                if attempt.dispatch_failures > self.retries:
                    finish(TaskOutcome(
                        attempt.index, False,
                        error="worker died before accepting the item",
                        attempts=max(attempt.attempts, 1),
                    ))
                    return True
                return False
            attempt.dispatch_failures = 0
            attempt.attempts += 1
            worker.attempt = attempt
            worker.started = time.monotonic()
            worker.deadline = (
                None if self.timeout is None
                else worker.started + self.timeout
            )
            return True

        def settle(worker: _Worker) -> None:
            """Consume a reported payload (or EOF) from a busy worker."""
            attempt = worker.attempt
            worker.attempt = None
            try:
                payload = worker.conn.recv()
            except (EOFError, OSError):
                payload = None
            if payload is None:
                exitcode = worker.proc.exitcode
                self._discard(worker)
                retry_or_fail(
                    attempt, queue_of(attempt),
                    f"worker exited with code {exitcode} "
                    "before returning a result",
                    time.monotonic() - worker.started,
                )
            elif payload[0] == "ok":
                finish(TaskOutcome(
                    attempt.index, True, value=payload[1],
                    attempts=attempt.attempts,
                    wall_seconds=payload[3],
                ))
            else:
                finish(TaskOutcome(
                    attempt.index, False, error=payload[1],
                    traceback=payload[2],
                    attempts=attempt.attempts,
                    wall_seconds=payload[3],
                ))

        def expire(worker: _Worker) -> None:
            attempt = worker.attempt
            if worker.conn.poll():
                # the result arrived between the wait and the deadline
                # check: it beat the clock, take it — otherwise a
                # finished run would be reported as timed out (or, once
                # terminated, as a silent worker death)
                settle(worker)
                return
            worker.attempt = None
            self._discard(worker)
            retry_or_fail(
                attempt, queue_of(attempt),
                f"timed out after {self.timeout}s "
                f"(attempt {attempt.attempts})",
                time.monotonic() - worker.started,
            )

        try:
            while done < total:
                # fill idle slots from their queues
                if self.sticky:
                    for slot in range(self.workers):
                        queue = queues[slot]
                        while queue:
                            worker = self._slots[slot]
                            if worker is not None and worker.attempt is not None:
                                break
                            if dispatch(slot, queue[0]):
                                queue.popleft()
                else:
                    queue = queues[0]
                    while queue:
                        slot = next(
                            (
                                s
                                for s in range(self.workers)
                                if self._slots[s] is None
                                or self._slots[s].attempt is None
                            ),
                            None,
                        )
                        if slot is None:
                            break
                        if dispatch(slot, queue[0]):
                            queue.popleft()
                busy = {
                    w.conn: w
                    for w in self._slots
                    if w is not None and w.attempt is not None
                }
                if not busy:
                    if done < total:
                        continue  # a dispatch failed; loop respawns
                    break
                for conn in _mp_wait(list(busy), timeout=self.poll_interval):
                    worker = busy[conn]
                    if worker.attempt is not None:
                        settle(worker)
                now = time.monotonic()
                for worker in list(busy.values()):
                    if (
                        worker.attempt is not None
                        and worker.deadline is not None
                        and now > worker.deadline
                    ):
                        expire(worker)
        except BaseException:
            # interrupted mid-flight: in-flight workers hold unknown
            # state, so tear the whole pool down rather than leak them
            self.close()
            raise
        return results  # type: ignore[return-value]
