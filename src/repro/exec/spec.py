"""The serializable run layer: one :class:`RunSpec` per grid cell.

Every evaluation in the paper is a grid of *independent* runs —
schedulers × knobs × seeds.  A :class:`RunSpec` is the frozen, picklable
description of one cell: trace records (not materialized jobs — jobs
are stateful), cluster shape and configs, and the scheduler as a
registry *name plus knob dict* so the spec crosses process boundaries
without dragging object graphs along.  :func:`execute` is the single
entry point that materializes fresh jobs and a fresh cluster exactly as
``harness.run_trace`` does and returns its
:class:`~repro.experiments.harness.RunResult`.

:func:`run_specs` maps a spec list over an execution backend
(:mod:`repro.exec.backends`) and returns :class:`RunOutcome` rows in
spec order: the successful cells carry their ``RunResult`` (plus
optional :class:`~repro.profiling.Profiler` /
:class:`~repro.obs.registry.Registry` snapshots, which merge across the
process boundary via ``Profiler.merge`` / ``Registry.merge``), the
failed cells carry the error and the worker's traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exec.backends import (
    ExecutionError,
    ProgressCallback,
    SerialBackend,
    TaskOutcome,
)
from repro.exec.seeds import spawn_seeds
from repro.experiments.harness import ExperimentConfig, RunResult, run_trace
from repro.obs.registry import Registry
from repro.profiling import Profiler
from repro.schedulers.base import Scheduler
from repro.workload.trace import TraceJob

__all__ = [
    "RunSpec",
    "RunOutcome",
    "execute",
    "run_specs",
    "raise_on_failure",
]


@dataclass(frozen=True)
class RunSpec:
    """A frozen, picklable description of one run.

    ``scheduler`` is preferably a registry name (see
    :mod:`repro.schedulers.registry`) with ``knobs`` selecting its
    config; a picklable zero-argument factory (a scheduler class, a
    module-level function) is also accepted so legacy factory-dict call
    sites ride the same path.  ``config`` is the usual
    :class:`ExperimentConfig`; for process backends it must be picklable
    (in particular ``estimator_factory`` must not be a lambda).
    """

    trace: Tuple[TraceJob, ...]
    scheduler: Union[str, Callable[[], Scheduler]]
    knobs: Optional[Mapping[str, object]] = None
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    label: Optional[str] = None
    #: attach a Profiler and a metrics Registry to the run and return
    #: both in the outcome (picklable, mergeable across runs)
    collect_profile: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "trace", tuple(self.trace))
        if self.knobs is not None:
            # defensive copy; treat as immutable like the rest of the spec
            object.__setattr__(self, "knobs", dict(self.knobs))
            if not isinstance(self.scheduler, str):
                raise ValueError(
                    "knobs require a registry-name scheduler; factories "
                    "carry their own configuration"
                )

    @property
    def name(self) -> str:
        """Row label: explicit label, else the scheduler name."""
        if self.label is not None:
            return self.label
        if isinstance(self.scheduler, str):
            return self.scheduler
        return getattr(self.scheduler, "__name__", "scheduler")

    def build_scheduler(self) -> Scheduler:
        if isinstance(self.scheduler, str):
            from repro.schedulers.registry import build_scheduler

            return build_scheduler(self.scheduler, self.knobs)
        return self.scheduler()

    def with_seed(self, seed: int) -> "RunSpec":
        """A copy whose cluster/materialization/engine seeds are ``seed``."""
        cfg = replace(self.config, seed=int(seed))
        if cfg.engine_config is not None:
            cfg = replace(
                cfg, engine_config=replace(cfg.engine_config, seed=int(seed))
            )
        return replace(self, config=cfg)

    def siblings(self, n: int, base_seed: Optional[int] = None) -> List["RunSpec"]:
        """``n`` sibling specs whose seeds are ``SeedSequence``-spawned
        children of ``base_seed`` (default: this spec's seed), so sibling
        runs never share RNG state (see :mod:`repro.exec.seeds`)."""
        base = self.config.seed if base_seed is None else base_seed
        return [self.with_seed(s) for s in spawn_seeds(base, n)]


@dataclass
class RunOutcome:
    """One grid cell's result row: a ``RunResult`` or a reported failure."""

    index: int
    label: str
    ok: bool
    result: Optional[RunResult] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 1
    #: wall-clock seconds of the (last) execute() call, measured in the
    #: worker — comparable across backends, unlike queueing delay
    wall_seconds: float = 0.0
    profiler: Optional[Profiler] = None
    registry: Optional[Registry] = None


def _execute_payload(spec: RunSpec) -> dict:
    """Worker-side body: one spec -> result (+ optional observability)."""
    profiler = Profiler() if spec.collect_profile else None
    registry = Registry() if spec.collect_profile else None
    result = run_trace(
        spec.trace,
        spec.build_scheduler(),
        spec.config,
        profiler=profiler,
        metrics=registry,
    )
    return {"result": result, "profiler": profiler, "registry": registry}


def execute(spec: RunSpec) -> RunResult:
    """Run one spec to completion in this process.

    The single entry point the backends fan out: fresh cluster, fresh
    jobs materialized from the spec's trace records, one engine run.
    """
    return _execute_payload(spec)["result"]


def _to_run_outcome(outcome: TaskOutcome, spec: RunSpec) -> RunOutcome:
    payload = outcome.value if outcome.ok else None
    return RunOutcome(
        index=outcome.index,
        label=spec.name,
        ok=outcome.ok,
        result=payload["result"] if payload else None,
        error=outcome.error,
        traceback=outcome.traceback,
        attempts=outcome.attempts,
        wall_seconds=outcome.wall_seconds,
        profiler=payload["profiler"] if payload else None,
        registry=payload["registry"] if payload else None,
    )


def run_specs(
    specs: Sequence[RunSpec],
    backend=None,
    progress: Optional[ProgressCallback] = None,
) -> List[RunOutcome]:
    """Execute every spec on ``backend``; outcome rows in spec order."""
    specs = list(specs)
    if backend is None:
        backend = SerialBackend()
    outcomes = backend.map(_execute_payload, specs, progress=progress)
    return [
        _to_run_outcome(outcome, specs[outcome.index]) for outcome in outcomes
    ]


def raise_on_failure(outcomes: Sequence[RunOutcome]) -> None:
    """Raise :class:`ExecutionError` naming every failed row (callers
    that want a plain result mapping rather than per-row reporting)."""
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return
    lines = [f"{len(failed)} of {len(outcomes)} runs failed:"]
    for outcome in failed:
        lines.append(
            f"  [{outcome.index}] {outcome.label}: {outcome.error} "
            f"(attempts={outcome.attempts})"
        )
    first_tb = next((o.traceback for o in failed if o.traceback), None)
    if first_tb:
        lines.append("first worker traceback:")
        lines.append(first_tb.rstrip())
    raise ExecutionError("\n".join(lines))
