"""Seed derivation for sibling runs.

When a sweep varies *only* the seed (replication across seeds, repeated
bench captures, future sharded campaigns), sibling runs must never share
RNG state.  Ad-hoc ``seed + i`` arithmetic does not guarantee that —
adjacent integer seeds can produce correlated streams for some
generators, and two sweeps with overlapping ranges silently reuse runs.

The scheme used everywhere in this repo instead derives child seeds with
:class:`numpy.random.SeedSequence`: spawning ``n`` children of the base
seed hashes ``(base, child_index)`` through SeedSequence's entropy
mixer, giving streams that are independent by construction and stable —
``spawn_seeds(base, n)`` is a prefix of ``spawn_seeds(base, m)`` for
``n <= m``, so growing a sweep never changes the runs already done.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["spawn_seeds"]


def spawn_seeds(base_seed: int, n: int) -> Tuple[int, ...]:
    """``n`` independent child seeds derived from ``base_seed``.

    Children are 32-bit ints (safe for every consumer down to legacy
    ``RandomState``-style APIs) and deterministic in ``(base_seed, n)``;
    the first ``k`` children are identical for any ``n >= k``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = np.random.SeedSequence(int(base_seed))
    return tuple(
        int(child.generate_state(1, dtype=np.uint32)[0])
        for child in root.spawn(n)
    )
