"""Seed derivation for sibling runs.

When a sweep varies *only* the seed (replication across seeds, repeated
bench captures, future sharded campaigns), sibling runs must never share
RNG state.  Ad-hoc ``seed + i`` arithmetic does not guarantee that —
adjacent integer seeds can produce correlated streams for some
generators, and two sweeps with overlapping ranges silently reuse runs.

The scheme used everywhere in this repo instead derives child seeds with
:class:`numpy.random.SeedSequence`: spawning ``n`` children of the base
seed hashes ``(base, child_index)`` through SeedSequence's entropy
mixer, giving streams that are independent by construction and stable —
``spawn_seeds(base, n)`` is a prefix of ``spawn_seeds(base, m)`` for
``n <= m``, so growing a sweep never changes the runs already done.

The same prefix property is what makes **resharding** safe for the
scheduler federation (:mod:`repro.federation`): shard ``i`` of an
``n``-shard deployment draws its per-shard stream from
``spawn_seeds(base, n)[i]``, and because the first ``n`` children are
identical for every ``m >= n``, growing the shard count never silently
reseeds the shards that already exist — shard ``i`` keeps its stream
under any future ``--shards N`` with ``N > i``.  This is
property-tested in ``tests/test_exec.py``
(``test_prefix_stable_under_growing_shard_counts``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["spawn_seeds"]


def spawn_seeds(base_seed: int, n: int) -> Tuple[int, ...]:
    """``n`` independent child seeds derived from ``base_seed``.

    Children are 32-bit ints (safe for every consumer down to legacy
    ``RandomState``-style APIs) and deterministic in ``(base_seed, n)``;
    the first ``k`` children are identical for any ``n >= k``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = np.random.SeedSequence(int(base_seed))
    return tuple(
        int(child.generate_state(1, dtype=np.uint32)[0])
        for child in root.spawn(n)
    )
