"""Profile capture: one scenario run → one durable performance artifact.

A *profile* is a schema-versioned plain dict (serialized as
``BENCH_<scenario>.json``) holding everything needed to compare two
versions of the scheduler:

- ``meta`` — git SHA (and dirty flag), host, platform, the scenario's
  config fingerprint, and a host-speed calibration constant;
- ``metrics`` — each a ``{kind, direction, unit, value, samples}``
  record, where ``value`` is the median of ``repeats`` independent runs
  and ``samples`` keeps the raw repeats for the detector's
  nonparametric fallback.  Phase wall-clock metrics are named
  ``phase:<label>:mean_ms`` so a degradation names the phase that
  caused it;
- ``phases`` — the full :meth:`Profiler.as_dict` detail of the last
  repeat (count/total/mean/min/max/stddev per phase);
- ``registry`` — the :meth:`Registry.snapshot` of the last repeat, so
  scheduler counters (cache hits, rounds, reservations) ride along
  without parsing text exposition.

Following Perun's model, profiles are stamped per-version and compared
against a committed baseline rather than re-derived by hand.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

from repro.bench.scenarios import (
    PackingScenario,
    Scenario,
    ServeScenario,
    TraceScenario,
    get_scenario,
)
from repro.exec import (
    RunSpec,
    SerialBackend,
    get_backend,
    raise_on_failure,
    run_specs,
)
from repro.exec.backends import ExecutionError
from repro.experiments.harness import ExperimentConfig
from repro.profiling import Profiler

__all__ = [
    "SCHEMA",
    "capture",
    "save_profile",
    "load_profile",
    "profile_filename",
    "dump_json",
    "git_revision",
    "calibrate",
]

SCHEMA = "repro.bench.profile/v1"


# ---------------------------------------------------------------------------
# environment stamps
# ---------------------------------------------------------------------------

def git_revision(cwd: Optional[str] = None) -> Dict[str, object]:
    """``{"sha": ..., "dirty": ...}`` for the enclosing git checkout, or
    ``{"sha": None, "dirty": None}`` outside one (profiles must still be
    capturable from an sdist)."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return {"sha": None, "dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"sha": sha.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}


def calibrate(loops: int = 200_000, repeats: int = 5) -> float:
    """Best-of-``repeats`` wall time of a fixed pure-Python spin.

    Stored in every profile as ``meta.calibration_seconds``; the
    detector rescales timing metrics by the calibration ratio before
    applying tolerance bands, so a baseline captured on a faster (or
    slower) host does not read as a regression (or mask one).
    """
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        acc = 0
        for i in range(loops):
            acc += i * i
        best = min(best, perf_counter() - start)
    return best


def _meta(scenario: Scenario, repeats: int) -> Dict[str, object]:
    rev = git_revision()
    return {
        "git_sha": rev["sha"],
        "git_dirty": rev["dirty"],
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "config_fingerprint": scenario.config_fingerprint(),
        "calibration_seconds": calibrate(),
        "repeats": repeats,
    }


# ---------------------------------------------------------------------------
# metric records
# ---------------------------------------------------------------------------

def _metric(
    kind: str, direction: str, unit: str, samples: List[float]
) -> Dict[str, object]:
    return {
        "kind": kind,
        "direction": direction,
        "unit": unit,
        "value": float(statistics.median(samples)),
        "samples": [float(s) for s in samples],
    }


def _phase_metrics(
    per_repeat: List[Dict[str, Dict[str, float]]],
) -> Dict[str, Dict[str, object]]:
    """``phase:<label>:mean_ms`` timing metrics from per-repeat profiler
    exports (labels missing from some repeat contribute no sample)."""
    labels = sorted({label for d in per_repeat for label in d})
    out = {}
    for label in labels:
        samples = [
            d[label]["mean"] * 1e3 for d in per_repeat if label in d
        ]
        out[f"phase:{label}:mean_ms"] = _metric(
            "timing", "lower", "ms", samples
        )
    return out


# ---------------------------------------------------------------------------
# capture
# ---------------------------------------------------------------------------

def _capture_trace(
    scenario: TraceScenario, repeats: int, backend=None
) -> Dict[str, object]:
    trace = tuple(scenario.make_trace())
    config = ExperimentConfig(
        num_machines=scenario.num_machines,
        seed=getattr(scenario.trace_config, "seed", 0),
        use_tracker=scenario.use_tracker,
        shards=scenario.shards,
        shard_backend=scenario.shard_backend,
    )
    # identical specs on purpose: repeats measure run-to-run timing
    # noise of the same workload, so only the wall clock may differ
    specs = [
        RunSpec(
            trace=trace,
            scheduler=scenario.scheduler,
            config=config,
            label=f"{scenario.name}[{i}]",
            collect_profile=True,
        )
        for i in range(repeats)
    ]
    outcomes = run_specs(specs, backend)
    raise_on_failure(outcomes)
    wall, pps, mean_jct, median_jct, makespan = [], [], [], [], []
    jobs_done, placements = [], []
    phase_dicts = []
    merged_profiler = Profiler()
    for outcome in outcomes:
        result = outcome.result
        summary = result.summary()
        wall.append(result.wall_seconds)
        pps.append(result.placements_per_sec)
        mean_jct.append(summary["mean_jct"])
        median_jct.append(summary["median_jct"])
        makespan.append(summary["makespan"])
        jobs_done.append(summary["jobs"])
        placements.append(result.num_placements)
        phase_dicts.append(outcome.profiler.as_dict())
        merged_profiler.merge(outcome.profiler)
    metrics = {
        "wall_seconds": _metric("timing", "lower", "s", wall),
        "placements_per_sec": _metric("timing", "higher", "1/s", pps),
        "mean_jct": _metric("fidelity", "lower", "s", mean_jct),
        "median_jct": _metric("fidelity", "lower", "s", median_jct),
        "makespan": _metric("fidelity", "lower", "s", makespan),
        "jobs": _metric("fidelity", "exact", "jobs", jobs_done),
        "num_placements": _metric("fidelity", "exact", "placements",
                                  placements),
    }
    metrics.update(_phase_metrics(phase_dicts))
    return {
        "metrics": metrics,
        "phases": phase_dicts[-1],
        #: all repeats pooled via Profiler.merge (per-phase sample union)
        "phases_merged": merged_profiler.as_dict(),
        "registry": outcomes[-1].registry.snapshot(),
    }


def _packing_repeat(scenario: PackingScenario) -> Dict[str, object]:
    """One independent repeat of a packing scenario (worker-side body)."""
    from repro.bench.scenarios import packing_state

    round_ms: List[float] = []
    placed_counts: List[float] = []
    machine_ids = list(range(scenario.num_machines))
    scheduler = packing_state(scenario)
    profiler = Profiler()
    scheduler.profiler = profiler
    # claim-replay below revives tasks whose queue positions depend on
    # visit history; every machine must be visited for the rounds to
    # stay identical (see TetrisScheduler.prefilter_machines)
    scheduler.prefilter_machines = False
    for i in range(scenario.warmup + scenario.rounds):
        # undo tentative state so every round packs the same backlog
        scheduler.index.reset_claims()
        scheduler._remote_granted.clear()
        scheduler._remote_by_task.clear()
        start = perf_counter()
        placements = scheduler.schedule(0.0, machine_ids)
        elapsed = perf_counter() - start
        if i >= scenario.warmup:
            round_ms.append(elapsed * 1e3)
            placed_counts.append(float(len(placements)))
    return {
        "round_ms": round_ms,
        "placed_counts": placed_counts,
        "phases": profiler.as_dict(),
    }


def _capture_packing(
    scenario: PackingScenario, repeats: int, backend=None
) -> Dict[str, object]:
    if backend is None:
        backend = SerialBackend()
    outcomes = backend.map(_packing_repeat, [scenario] * repeats)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise ExecutionError(
            f"{len(failed)} of {repeats} packing repeats failed: "
            + "; ".join(str(o.error) for o in failed)
        )
    round_ms: List[float] = []
    placed_counts: List[float] = []
    phase_dicts = []
    for outcome in outcomes:
        round_ms.extend(outcome.value["round_ms"])
        placed_counts.extend(outcome.value["placed_counts"])
        phase_dicts.append(outcome.value["phases"])
    metrics = {
        "round_ms": _metric("timing", "lower", "ms", round_ms),
        "placements_per_round": _metric(
            "fidelity", "exact", "placements", placed_counts
        ),
    }
    metrics.update(_phase_metrics(phase_dicts))
    return {
        "metrics": metrics,
        "phases": phase_dicts[-1],
        "registry": {},
    }


def _serve_repeat(scenario: ServeScenario) -> Dict[str, object]:
    """One independent streamed replay (worker-side body)."""
    import asyncio

    from repro.estimation.tracker import ResourceTracker
    from repro.obs import Registry
    from repro.schedulers.registry import build_scheduler
    from repro.serve import (
        AdmissionConfig,
        AdmissionController,
        SchedulerService,
        ServeConfig,
        TraceReplaySource,
    )
    from repro.sim.engine import Engine
    from repro.workload.trace import materialize_trace

    config = ExperimentConfig(
        num_machines=scenario.num_machines,
        seed=getattr(scenario.trace_config, "seed", 0),
        use_tracker=scenario.use_tracker,
    )
    cluster = config.make_cluster()
    jobs = materialize_trace(
        scenario.make_trace(), cluster, seed=config.seed
    )
    tracker = ResourceTracker(cluster) if config.use_tracker else None
    registry = Registry()
    engine = Engine(
        cluster,
        build_scheduler(scenario.scheduler),
        [],
        tracker=tracker,
        config=config.make_engine_config(),
        metrics=registry,
    )
    service = SchedulerService(
        engine,
        TraceReplaySource(jobs),
        AdmissionController(
            AdmissionConfig(queue_cap=scenario.queue_cap)
        ),
        ServeConfig(
            max_batch=scenario.max_batch,
            verify_every=scenario.verify_every,
        ),
        registry=registry,
    )
    report = asyncio.run(service.serve())
    return {
        "wall_seconds": report.wall_seconds,
        "drive_seconds": report.drive_seconds,
        "placements_per_sec": report.placements_per_sec,
        "placements": float(report.placements),
        "jobs_finished": float(report.jobs_finished),
        "sim_time": report.sim_time,
        "invariant_violations": float(report.invariant_violations),
        "registry": registry.snapshot(),
    }


def _capture_serve(
    scenario: ServeScenario, repeats: int, backend=None
) -> Dict[str, object]:
    if backend is None:
        backend = SerialBackend()
    outcomes = backend.map(_serve_repeat, [scenario] * repeats)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise ExecutionError(
            f"{len(failed)} of {repeats} serve repeats failed: "
            + "; ".join(str(o.error) for o in failed)
        )
    values = [o.value for o in outcomes]

    def samples(key: str) -> List[float]:
        return [v[key] for v in values]

    metrics = {
        "wall_seconds": _metric(
            "timing", "lower", "s", samples("wall_seconds")
        ),
        "drive_seconds": _metric(
            "timing", "lower", "s", samples("drive_seconds")
        ),
        "placements_per_sec": _metric(
            "timing", "higher", "1/s", samples("placements_per_sec")
        ),
        "num_placements": _metric(
            "fidelity", "exact", "placements", samples("placements")
        ),
        "jobs_finished": _metric(
            "fidelity", "exact", "jobs", samples("jobs_finished")
        ),
        "sim_time": _metric("fidelity", "lower", "s", samples("sim_time")),
        "invariant_violations": _metric(
            "fidelity", "exact", "violations",
            samples("invariant_violations"),
        ),
    }
    return {
        "metrics": metrics,
        "phases": {},
        "registry": values[-1]["registry"],
    }


def capture(
    scenario_or_name,
    repeats: int = 3,
    workers: Optional[int] = None,
    backend=None,
    kernel_backend: Optional[str] = None,
) -> Dict[str, object]:
    """Run one scenario ``repeats`` times and return its profile dict.

    Repeats are independent, so they run on an execution backend
    (``workers`` > 1 / ``REPRO_WORKERS`` selects the process pool; the
    per-repeat profilers and registries come back across the process
    boundary and aggregate exactly as in-process ones would).  The
    profile's ``meta.execution`` stanza records how results were
    produced.  Note that with more repeats in flight than cores, the
    repeats contend for CPU and wall-clock timing metrics degrade —
    fidelity metrics are unaffected.

    ``kernel_backend`` selects the scheduling hot-path kernels
    (``scalar`` / ``numpy`` / ``numba``, see :mod:`repro.kernels`) by
    exporting ``$REPRO_BACKEND`` for the duration of the capture, so
    process-pool repeats inherit it too.  The *resolved* backend name is
    stamped into ``meta.kernel_backend`` either way; the comparison
    tooling refuses to gate profiles across different stamps.
    """
    from repro import kernels as _kernels

    scenario = (
        get_scenario(scenario_or_name)
        if isinstance(scenario_or_name, str)
        else scenario_or_name
    )
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    # resolve early: unknown names (and numba-without-numba) fail before
    # any simulation work is spent
    resolved_kernels = _kernels.get_backend(kernel_backend)
    if backend is None:
        backend = get_backend(workers)
    saved_env = os.environ.get(_kernels.ENV_VAR)
    if kernel_backend is not None:
        os.environ[_kernels.ENV_VAR] = resolved_kernels.name
    try:
        if isinstance(scenario, TraceScenario):
            body = _capture_trace(scenario, repeats, backend)
        elif isinstance(scenario, ServeScenario):
            body = _capture_serve(scenario, repeats, backend)
        else:
            body = _capture_packing(scenario, repeats, backend)
    finally:
        if kernel_backend is not None:
            if saved_env is None:
                os.environ.pop(_kernels.ENV_VAR, None)
            else:
                os.environ[_kernels.ENV_VAR] = saved_env
    meta = _meta(scenario, repeats)
    meta["kernel_backend"] = resolved_kernels.name
    # shard-config stamp: the comparison tooling refuses to gate a
    # sharded capture against a centralized baseline (and vice versa)
    meta["shards"] = getattr(scenario, "shards", 1)
    meta["execution"] = {"backend": backend.name, "workers": backend.workers}
    profile = {
        "schema": SCHEMA,
        "scenario": scenario.name,
        "kind": scenario.kind,
        "created_unix": time.time(),
        "meta": meta,
    }
    profile.update(body)
    return profile


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def dump_json(payload: Dict[str, object], path) -> Path:
    """Serialize any summary payload as strict JSON (no NaN), atomically.

    The shared serializer behind profile files and the CLI's
    ``--json`` outputs.
    """
    path = Path(path)
    if path.parent and not path.parent.exists():
        os.makedirs(path.parent, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True, allow_nan=False)
        f.write("\n")
    os.replace(tmp, path)
    return path


def profile_filename(scenario_name: str) -> str:
    return f"BENCH_{scenario_name}.json"


def save_profile(profile: Dict[str, object], directory) -> Path:
    """Write ``BENCH_<scenario>.json`` under ``directory``."""
    return dump_json(
        profile, Path(directory) / profile_filename(str(profile["scenario"]))
    )


def load_profile(path) -> Dict[str, object]:
    """Load and schema-check one profile file."""
    with open(path, encoding="utf-8") as f:
        payload = json.load(f)
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA} profile "
            f"(schema={payload.get('schema') if isinstance(payload, dict) else None!r})"
        )
    for key in ("scenario", "meta", "metrics"):
        if key not in payload:
            raise ValueError(f"{path}: profile missing {key!r}")
    return payload
