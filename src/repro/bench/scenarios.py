"""Canonical benchmark scenarios, runnable outside pytest.

Historically the scenario configurations lived in ``benchmarks/conftest.py``
and could only be exercised through the pytest benchmark harness.  They
are defined here instead — ``benchmarks/conftest.py`` imports them — so
the same workloads drive both the per-figure pytest benchmarks and the
``repro bench`` profile capture.

Two scenario shapes:

- :class:`TraceScenario` — materialize a generated trace on a fresh
  cluster and run one scheduler end-to-end (the deployment/simulation
  workloads of Sections 5.2/5.3);
- :class:`PackingScenario` — the Table 7-style hot-path microbench: a
  cluster mid-simulation with thousands of pending tasks, timing one
  full packing round.

Every scenario fingerprints its own configuration
(:meth:`config_fingerprint`), so a stored profile can refuse comparison
against a profile captured from different parameters.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Union

from repro.workload.tracegen import (
    BingTraceConfig,
    FacebookTraceConfig,
    WorkloadSuiteConfig,
    generate_bing_trace,
    generate_facebook_trace,
    generate_workload_suite,
)

__all__ = [
    "TraceScenario",
    "PackingScenario",
    "ServeScenario",
    "Scenario",
    "SCENARIOS",
    "DEPLOY_SUITE",
    "DEPLOY_MACHINES",
    "FB_TRACE",
    "FB_MACHINES",
    "get_scenario",
    "scenario_names",
    "packing_state",
]

#: the Section 5.2 deployment-style workload (Tetris vs CS vs DRF)
DEPLOY_SUITE = WorkloadSuiteConfig(
    num_jobs=40, task_scale=0.05, arrival_horizon=1000, seed=1
)
DEPLOY_MACHINES = 20

#: the Section 5.3 simulation workload (Facebook statistics)
FB_TRACE = FacebookTraceConfig(
    num_jobs=60, arrival_horizon=1500, max_map_tasks=150, seed=7
)
FB_MACHINES = 30

_GENERATORS = {
    WorkloadSuiteConfig: ("suite", generate_workload_suite),
    FacebookTraceConfig: ("facebook", generate_facebook_trace),
    BingTraceConfig: ("bing", generate_bing_trace),
}


@dataclass(frozen=True)
class TraceScenario:
    """One end-to-end run: generated trace, fresh cluster, one scheduler."""

    name: str
    description: str
    quick: bool
    trace_config: Union[
        WorkloadSuiteConfig, FacebookTraceConfig, BingTraceConfig
    ]
    num_machines: int
    scheduler: str = "tetris"
    use_tracker: bool = True
    #: scheduler federation (repro.federation): 1 = centralized
    shards: int = 1
    shard_backend: str = "inline"

    @property
    def kind(self) -> str:
        return "trace"

    def make_trace(self):
        _, generate = _GENERATORS[type(self.trace_config)]
        return generate(self.trace_config)

    def params(self) -> Dict[str, object]:
        generator, _ = _GENERATORS[type(self.trace_config)]
        out = {
            "kind": self.kind,
            "generator": generator,
            "trace_config": asdict(self.trace_config),
            "num_machines": self.num_machines,
            "scheduler": self.scheduler,
            "use_tracker": self.use_tracker,
        }
        # only stamped when sharded, so every pre-federation committed
        # baseline keeps its fingerprint
        if self.shards != 1:
            out["shards"] = self.shards
            out["shard_backend"] = self.shard_backend
        return out

    def config_fingerprint(self) -> str:
        return _fingerprint(self.params())


@dataclass(frozen=True)
class PackingScenario:
    """A mid-simulation packing round: the Table 7 hot-path microbench.

    The cluster starts partially loaded (one long-running filler task per
    machine) with every job holding pending work, so one ``schedule()``
    call exercises candidate lookup, scoring, and placement exactly as a
    heartbeat burst would.
    """

    name: str
    description: str
    quick: bool
    num_machines: int
    num_jobs: int
    tasks_per_job: int
    rounds: int = 3
    warmup: int = 1
    vectorized: bool = True

    @property
    def kind(self) -> str:
        return "packing"

    def params(self) -> Dict[str, object]:
        out = asdict(self)
        for key in ("name", "description", "quick"):
            out.pop(key)
        out["kind"] = self.kind
        return out

    def config_fingerprint(self) -> str:
        return _fingerprint(self.params())


@dataclass(frozen=True)
class ServeScenario:
    """A streaming replay through the ``repro.serve`` daemon.

    The same generated trace a :class:`TraceScenario` would run in batch
    is instead fed through the scheduler service arrival-by-arrival
    (unpaced, so the consumer is always the bottleneck), measuring the
    daemon's sustained placements/sec and checking the free-vector
    invariant as it goes.
    """

    name: str
    description: str
    quick: bool
    trace_config: Union[
        WorkloadSuiteConfig, FacebookTraceConfig, BingTraceConfig
    ]
    num_machines: int
    scheduler: str = "tetris"
    use_tracker: bool = True
    max_batch: int = 64
    queue_cap: int = 8192
    verify_every: int = 50

    @property
    def kind(self) -> str:
        return "serve"

    def make_trace(self):
        _, generate = _GENERATORS[type(self.trace_config)]
        return generate(self.trace_config)

    def params(self) -> Dict[str, object]:
        generator, _ = _GENERATORS[type(self.trace_config)]
        return {
            "kind": self.kind,
            "generator": generator,
            "trace_config": asdict(self.trace_config),
            "num_machines": self.num_machines,
            "scheduler": self.scheduler,
            "use_tracker": self.use_tracker,
            "max_batch": self.max_batch,
            "queue_cap": self.queue_cap,
            "verify_every": self.verify_every,
        }

    def config_fingerprint(self) -> str:
        return _fingerprint(self.params())


Scenario = Union[TraceScenario, PackingScenario, ServeScenario]


def _fingerprint(params: Dict[str, object]) -> str:
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def packing_state(scenario: PackingScenario):
    """Build the scenario's mid-simulation scheduler state.

    Shared with ``benchmarks/test_microbench.py`` so the pytest
    microbench and ``repro bench`` time the identical workload.
    """
    from repro.cluster.cluster import Cluster
    from repro.resources import DEFAULT_MODEL
    from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
    from repro.workload.job import Job
    from repro.workload.stage import Stage
    from repro.workload.task import Task, TaskWork

    cluster = Cluster(scenario.num_machines, seed=0)
    scheduler = TetrisScheduler(TetrisConfig(vectorized=scenario.vectorized))
    scheduler.bind(cluster)
    for j in range(scenario.num_jobs):
        tasks = [
            Task(
                DEFAULT_MODEL.vector(
                    cpu=4 + (j % 3), mem=12, diskr=40, diskw=10
                ),
                TaskWork(cpu_core_seconds=60.0 + 5 * (j % 7)),
            )
            for _ in range(scenario.tasks_per_job)
        ]
        job = Job(
            [Stage("work", tasks)], arrival_time=0.0, name=f"job-{j}"
        )
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
    for machine in cluster.machines:
        filler = Task(
            DEFAULT_MODEL.vector(cpu=8, mem=24, diskr=100),
            TaskWork(cpu_core_seconds=1e6),
        )
        filler.mark_runnable()
        machine.place(filler, filler.demands)
    return scheduler


#: every named scenario; the ``quick`` subset is what CI's bench-smoke
#: job and ``repro bench run --quick`` capture
SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        TraceScenario(
            name="smoke",
            description="tiny end-to-end run; seconds, CI-friendly",
            quick=True,
            trace_config=WorkloadSuiteConfig(
                num_jobs=6, task_scale=0.02, arrival_horizon=100, seed=3
            ),
            num_machines=6,
        ),
        TraceScenario(
            name="deploy-quick",
            description="scaled-down Section 5.2 deployment workload",
            quick=True,
            trace_config=WorkloadSuiteConfig(
                num_jobs=12, task_scale=0.03, arrival_horizon=400, seed=1
            ),
            num_machines=10,
        ),
        PackingScenario(
            name="packing-micro",
            description="one packing round, 50 machines x 80 jobs",
            quick=True,
            num_machines=50,
            num_jobs=80,
            tasks_per_job=10,
        ),
        TraceScenario(
            name="deploy",
            description="the Section 5.2 deployment workload (Fig 4 scale)",
            quick=False,
            trace_config=DEPLOY_SUITE,
            num_machines=DEPLOY_MACHINES,
        ),
        TraceScenario(
            name="facebook",
            description="the Section 5.3 Facebook-statistics workload",
            quick=False,
            trace_config=FB_TRACE,
            num_machines=FB_MACHINES,
        ),
        PackingScenario(
            name="packing-full",
            description="one packing round, 100 machines x 200 jobs "
            "(the test_microbench workload)",
            quick=False,
            num_machines=100,
            num_jobs=200,
            tasks_per_job=20,
        ),
        # The incremental-scheduling-core scenarios: large enough that
        # candidate gathering and fluid-rate maintenance dominate, so the
        # signature-grouped candidate index and the sparse recompute show
        # up as phase-level speedups.  Their committed baselines were
        # captured from the pre-incremental code on purpose — comparing a
        # fresh capture against them is the before/after story.
        PackingScenario(
            name="packing-large",
            description="packing rounds at cluster scale: 200 machines "
            "x 250 jobs x 24 tasks (6000 pending tasks)",
            quick=False,
            num_machines=200,
            num_jobs=250,
            tasks_per_job=24,
        ),
        # The streaming-service scenarios: the identical workload a
        # TraceScenario would run in batch, pushed through the
        # repro.serve daemon instead.  serve-quick is the CI smoke;
        # serve-replay is the headline 200k+-task sustained-throughput
        # replay from the serving milestone.
        ServeScenario(
            name="serve-quick",
            description="small streamed replay through the scheduler "
            "daemon; seconds, CI-friendly",
            quick=True,
            trace_config=WorkloadSuiteConfig(
                num_jobs=12, task_scale=0.03, arrival_horizon=400, seed=1
            ),
            num_machines=10,
            verify_every=5,
        ),
        ServeScenario(
            name="serve-replay",
            description="200k+-task Facebook-style stream through the "
            "scheduler daemon: sustained placements/sec under a "
            "continuous arrival front",
            quick=False,
            trace_config=FacebookTraceConfig(
                num_jobs=2000,
                # the horizon sets the arrival rate and with it the
                # steady-state backlog; 160k simulated seconds keeps the
                # 24-machine cluster loaded but not drowning, so the
                # capture measures scheduling throughput rather than
                # queue-scan blowup on an ever-growing runnable set
                arrival_horizon=160000,
                max_map_tasks=400,
                size_mu=4.2,
                seed=13,
            ),
            num_machines=24,
            # no tracker: the throughput number isolates the serving
            # loop + scheduling core (the same convention cluster-large
            # uses for its phase timings)
            use_tracker=False,
        ),
        TraceScenario(
            name="cluster-large",
            description="large-cluster Facebook replay under a bursty "
            "arrival front: 200 machines, ~5.7k tasks, sustained backlog "
            "so scheduler rounds see hundreds of candidate stages",
            quick=False,
            trace_config=FacebookTraceConfig(
                num_jobs=160,
                arrival_horizon=300,
                max_map_tasks=200,
                seed=11,
            ),
            num_machines=200,
            # no tracker: the phase timings isolate the scheduling core
            use_tracker=False,
        ),
        TraceScenario(
            name="cluster-xl",
            description="the structure-of-arrays stress scale: 2000 "
            "machines, 1600 jobs of bursty Facebook-style arrivals — "
            "rounds where the per-machine prefilter and the flat state "
            "plane are the difference between linear and quadratic work",
            quick=False,
            trace_config=FacebookTraceConfig(
                num_jobs=1600,
                arrival_horizon=3000,
                max_map_tasks=200,
                seed=17,
            ),
            num_machines=2000,
            use_tracker=False,
        ),
        TraceScenario(
            name="cluster-xl-sharded",
            description="cluster-xl with the machine plane partitioned "
            "across 4 scheduler shards (repro.federation): same trace, "
            "same cluster, rounds fan out over shard row-slices and "
            "commit through the optimistic sequencer — compare against "
            "BENCH_cluster-xl.json for the federation speedup story",
            quick=False,
            trace_config=FacebookTraceConfig(
                num_jobs=1600,
                arrival_horizon=3000,
                max_map_tasks=200,
                seed=17,
            ),
            num_machines=2000,
            use_tracker=False,
            shards=4,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None


def scenario_names(quick_only: bool = False) -> List[str]:
    return sorted(
        name
        for name, scenario in SCENARIOS.items()
        if scenario.quick or not quick_only
    )
