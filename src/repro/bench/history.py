"""Per-commit performance history: the append-only profile store.

Where :class:`~repro.bench.store.ProfileStore` holds *one* blessed
profile per scenario (the committed baseline), a :class:`HistoryStore`
keeps **every** capture — one schema-versioned entry file per
``(git SHA, scenario, host-calibration stamp)`` — so the repo's
performance trajectory is a queryable series rather than a single gate:

- entries are plain JSON files under ``<root>/<scenario>/``, named by
  capture time so a directory listing *is* the timeline; writes go
  through the same atomic ``dump_json`` discipline as profiles and
  nothing is ever rewritten in place (compaction deletes whole entries,
  the sanctioned exception);
- the **calibration stamp** buckets the host-speed constant into ~25%
  bands, so "same machine, same speed class" captures are recognizable
  without bit-equal calibration numbers, and a legacy profile without a
  stamp is kept (stamp ``uncalibrated``) rather than rejected;
- :func:`diff_entries` reuses the noise-aware tolerance bands and
  Mann–Whitney confirmation of :mod:`repro.bench.detect`, so a history
  diff attributes a slowdown to specific ``Profiler`` phases exactly
  like the CI gate does;
- :func:`write_trajectory_artifact` renders a scenario's history into a
  small top-level ``BENCH_<scenario>.json`` pointer file (schema
  ``repro.bench.trajectory/v1``) so the trajectory is visible at the
  repo root without spelunking the store.

This is the Perun model (per-version performance profiles with history,
diffs, and degradation hunting) scaled to this repo.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.bench.detect import (
    ComparisonResult,
    _kernel_backend_of,
    _shards_of,
    compare_profiles,
)
from repro.bench.profile import SCHEMA as PROFILE_SCHEMA
from repro.bench.profile import dump_json

__all__ = [
    "HISTORY_SCHEMA",
    "TRAJECTORY_SCHEMA",
    "DEFAULT_HISTORY_DIR",
    "HistoryEntry",
    "HistoryStore",
    "calibration_stamp",
    "collect_history",
    "diff_entries",
    "render_trend",
    "trend_rows",
    "write_trajectory_artifact",
]

HISTORY_SCHEMA = "repro.bench.history-entry/v1"
TRAJECTORY_SCHEMA = "repro.bench.trajectory/v1"

#: where `repro bench run` appends history unless told otherwise
DEFAULT_HISTORY_DIR = ".bench-history"

#: headline metrics surfaced in trend rows and trajectory artifacts
_HEADLINE_METRICS = (
    "wall_seconds",
    "round_ms",
    "placements_per_sec",
    "mean_jct",
    "makespan",
)


def calibration_stamp(profile: Dict[str, object]) -> str:
    """A host-speed class label for one profile.

    The raw calibration constant jitters run to run; bucketing its log
    into ~25% bands (the same width the detector treats as "same-speed
    hosts") yields a stable stamp: captures from the same machine in the
    same speed class share it.  Profiles predating the calibration stamp
    (or carrying a non-positive one) stamp as ``uncalibrated`` — they
    stay comparable, just without rescaling.
    """
    meta = profile.get("meta") or {}
    cal = meta.get("calibration_seconds")
    if not isinstance(cal, (int, float)) or cal <= 0:
        return "uncalibrated"
    bucket = round(math.log(cal) / math.log(1.25))
    return f"s{bucket:+d}"


@dataclass(frozen=True)
class HistoryEntry:
    """One stored capture: the profile plus its history key."""

    path: Path
    scenario: str
    sha: Optional[str]
    dirty: Optional[bool]
    recorded_unix: float
    calibration_stamp: str
    profile: Dict[str, object]

    @property
    def short_sha(self) -> str:
        label = self.sha[:9] if self.sha else "nogit"
        return label + ("*" if self.dirty else "")

    def matches_sha(self, prefix: str) -> bool:
        return bool(self.sha) and self.sha.startswith(prefix)

    def as_index_row(self) -> Dict[str, object]:
        """The pointer row a trajectory artifact carries."""
        metrics = self.profile.get("metrics") or {}
        headline: Dict[str, float] = {}
        for name, record in sorted(metrics.items()):
            if name in _HEADLINE_METRICS or name.startswith("phase:"):
                if isinstance(record, dict) and "value" in record:
                    headline[name] = float(record["value"])
        return {
            "entry": self.path.name,
            "git_sha": self.sha,
            "git_dirty": self.dirty,
            "recorded_unix": self.recorded_unix,
            "calibration_stamp": self.calibration_stamp,
            "metrics": headline,
        }


class HistoryStore:
    """Append-only directory of per-capture history entries.

    Layout: ``<root>/<scenario>/<millis>-<sha12>.json``.  File names
    sort by capture time, so :meth:`entries` ordering needs no index
    file to maintain (and none to corrupt).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- writing -----------------------------------------------------------------
    def append(
        self,
        profile: Dict[str, object],
        recorded_unix: Optional[float] = None,
    ) -> HistoryEntry:
        """Store one captured profile as a new history entry.

        Never overwrites: a same-millisecond, same-SHA collision gets a
        disambiguating suffix.  The profile must look like a
        ``repro.bench.profile/v1`` document (legacy calibration-less
        profiles are accepted with an ``uncalibrated`` stamp).
        """
        if not isinstance(profile, dict) or "scenario" not in profile:
            raise ValueError("not a profile dict (missing 'scenario')")
        if profile.get("schema") != PROFILE_SCHEMA:
            warnings.warn(
                f"appending a profile with schema "
                f"{profile.get('schema')!r} (expected {PROFILE_SCHEMA}); "
                "older-schema entries skip calibration rescaling",
                RuntimeWarning,
                stacklevel=2,
            )
        scenario = str(profile["scenario"])
        meta = profile.get("meta") or {}
        sha = meta.get("git_sha")
        recorded = (
            float(recorded_unix)
            if recorded_unix is not None
            else float(profile.get("created_unix") or time.time())
        )
        stem = f"{int(recorded * 1000):013d}-" + (
            sha[:12] if isinstance(sha, str) else "nogit"
        )
        directory = self.root / scenario
        path = directory / f"{stem}.json"
        suffix = 0
        while path.exists():
            suffix += 1
            path = directory / f"{stem}.{suffix}.json"
        entry_payload = {
            "schema": HISTORY_SCHEMA,
            "scenario": scenario,
            "recorded_unix": recorded,
            "key": {
                "git_sha": sha,
                "git_dirty": meta.get("git_dirty"),
                "scenario": scenario,
                "calibration_stamp": calibration_stamp(profile),
            },
            "profile": profile,
        }
        dump_json(entry_payload, path)
        return self._entry_from_payload(path, entry_payload)

    # -- reading -----------------------------------------------------------------
    def scenarios(self) -> List[str]:
        """Scenario names with at least one stored entry, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            d.name
            for d in self.root.iterdir()
            if d.is_dir() and any(d.glob("*.json"))
        )

    def entries(self, scenario: str) -> List[HistoryEntry]:
        """Every entry for ``scenario``, oldest first."""
        directory = self.root / scenario
        if not directory.is_dir():
            return []
        out = []
        for path in sorted(directory.glob("*.json")):
            out.append(self.load_entry(path))
        out.sort(key=lambda e: (e.recorded_unix, e.path.name))
        return out

    def load_entry(self, path) -> HistoryEntry:
        import json

        path = Path(path)
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != HISTORY_SCHEMA
        ):
            raise ValueError(
                f"{path}: not a {HISTORY_SCHEMA} entry "
                f"(schema={payload.get('schema') if isinstance(payload, dict) else None!r})"
            )
        return self._entry_from_payload(path, payload)

    def _entry_from_payload(
        self, path: Path, payload: Dict[str, object]
    ) -> HistoryEntry:
        key = payload.get("key") or {}
        return HistoryEntry(
            path=path,
            scenario=str(payload.get("scenario")),
            sha=key.get("git_sha"),
            dirty=key.get("git_dirty"),
            recorded_unix=float(payload.get("recorded_unix") or 0.0),
            calibration_stamp=str(key.get("calibration_stamp") or "uncalibrated"),
            profile=payload.get("profile") or {},
        )

    def latest(self, scenario: str) -> Optional[HistoryEntry]:
        entries = self.entries(scenario)
        return entries[-1] if entries else None

    def resolve(self, scenario: str, ref: str) -> HistoryEntry:
        """An entry by reference: a git SHA prefix, or ``@N`` for the
        Nth-newest entry (``@0`` = newest).  SHA prefixes resolve to the
        newest matching entry (re-captures supersede older ones)."""
        entries = self.entries(scenario)
        if not entries:
            raise KeyError(f"no history for scenario {scenario!r} "
                           f"under {self.root}")
        if ref.startswith("@"):
            try:
                index = int(ref[1:])
            except ValueError:
                raise KeyError(f"bad history ref {ref!r}: @N expects an "
                               "integer")
            if not 0 <= index < len(entries):
                raise KeyError(
                    f"history ref {ref!r} out of range: scenario "
                    f"{scenario!r} has {len(entries)} entries"
                )
            return entries[-1 - index]
        matches = [e for e in entries if e.matches_sha(ref)]
        if not matches:
            raise KeyError(
                f"no history entry for scenario {scenario!r} matches "
                f"SHA prefix {ref!r} (have: "
                f"{sorted({e.short_sha for e in entries})})"
            )
        return matches[-1]

    def for_sha(
        self, scenario: str, sha: str, stamp: Optional[str] = None
    ) -> Optional[HistoryEntry]:
        """The newest entry for an exact SHA (optionally restricted to a
        calibration stamp), or ``None`` — the bisect cache lookup."""
        for entry in reversed(self.entries(scenario)):
            if entry.sha == sha and (
                stamp is None or entry.calibration_stamp == stamp
            ):
                return entry
        return None

    # -- retention ---------------------------------------------------------------
    def compact(
        self,
        scenario: Optional[str] = None,
        keep_last: int = 50,
        keep_per_sha: int = 1,
    ) -> List[Path]:
        """Thin old history; returns the entry files removed.

        The newest ``keep_last`` entries are untouchable.  Older ones
        are compacted *per commit*: each SHA keeps its newest
        ``keep_per_sha`` captures (so per-commit coverage survives
        thinning), the rest are deleted.  ``keep_per_sha=0`` drops the
        tail entirely.
        """
        if keep_last < 0 or keep_per_sha < 0:
            raise ValueError("keep_last and keep_per_sha must be >= 0")
        scenarios = [scenario] if scenario else self.scenarios()
        removed: List[Path] = []
        for name in scenarios:
            entries = self.entries(name)
            old = entries[:-keep_last] if keep_last else entries
            kept_by_sha: Dict[object, int] = {}
            # walk newest-first so "keep the newest per SHA" is a
            # first-seen rule
            for entry in reversed(old):
                key = (entry.sha, entry.calibration_stamp)
                kept = kept_by_sha.get(key, 0)
                if kept < keep_per_sha:
                    kept_by_sha[key] = kept + 1
                    continue
                entry.path.unlink()
                removed.append(entry.path)
        return removed

    def __repr__(self) -> str:
        return f"HistoryStore({str(self.root)!r}, scenarios={self.scenarios()})"


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------

def diff_entries(
    older: HistoryEntry,
    newer: HistoryEntry,
    timing_tolerance: Optional[float] = None,
    fidelity_tolerance: Optional[float] = None,
) -> ComparisonResult:
    """Compare two history entries with the standard detector.

    ``older`` plays the baseline role, so *degraded* means "``newer`` is
    worse" and :meth:`ComparisonResult.attribution` names the Profiler
    phases that slowed down between the two commits.
    """
    kwargs = {}
    if timing_tolerance is not None:
        kwargs["timing_tolerance"] = timing_tolerance
    if fidelity_tolerance is not None:
        kwargs["fidelity_tolerance"] = fidelity_tolerance
    return compare_profiles(older.profile, newer.profile, **kwargs)


# ---------------------------------------------------------------------------
# trend view
# ---------------------------------------------------------------------------

def _metric_value(profile: Dict, name: str) -> Optional[float]:
    record = (profile.get("metrics") or {}).get(name)
    if isinstance(record, dict) and "value" in record:
        return float(record["value"])
    return None


def trend_rows(
    entries: Sequence[HistoryEntry],
    metrics: Optional[Sequence[str]] = None,
):
    """(header, rows) for a scenario's trend table, oldest first.

    Each timing cell carries a delta against the previous entry's value
    so drifts read off the table directly; the first row has no
    predecessor and shows none.
    """
    if metrics is None:
        present = set()
        for entry in entries:
            present.update((entry.profile.get("metrics") or {}).keys())
        metrics = [m for m in _HEADLINE_METRICS if m in present]
        metrics += sorted(m for m in present if m.startswith("phase:"))
    header = ["captured", "git", "stamp"] + list(metrics)
    rows: List[List[str]] = []
    previous: Dict[str, float] = {}
    previous_mode: Optional[tuple] = None
    for entry in entries:
        mode = (_kernel_backend_of(entry.profile), _shards_of(entry.profile))
        if previous_mode is not None and mode != previous_mode:
            # never show deltas across a kernel-backend or shard-count
            # switch: the timing change is the execution mode, not the
            # commit
            previous = {}
        previous_mode = mode
        when = time.strftime(
            "%Y-%m-%d %H:%M", time.gmtime(entry.recorded_unix)
        )
        row = [when, entry.short_sha, entry.calibration_stamp]
        for name in metrics:
            value = _metric_value(entry.profile, name)
            if value is None:
                row.append("-")
                continue
            cell = f"{value:.4g}"
            prev = previous.get(name)
            if prev:
                delta = (value - prev) / prev * 100.0
                cell += f" ({delta:+.0f}%)"
            previous[name] = value
            row.append(cell)
        rows.append(row)
    return header, rows


def render_trend(
    entries: Sequence[HistoryEntry],
    metrics: Optional[Sequence[str]] = None,
    fmt: str = "term",
) -> str:
    """The trend table as a terminal or Markdown string."""
    header, rows = trend_rows(entries, metrics)
    if not rows:
        return "no history entries"
    if fmt == "md":
        lines = ["| " + " | ".join(header) + " |",
                 "|" + "---|" * len(header)]
        lines += ["| " + " | ".join(row) + " |" for row in rows]
        return "\n".join(lines)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += [
        "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# trajectory artifacts (top-level BENCH_<scenario>.json pointers)
# ---------------------------------------------------------------------------

def write_trajectory_artifact(
    store: HistoryStore,
    scenario: str,
    directory=".",
    max_points: int = 50,
) -> Path:
    """Render one scenario's history into ``BENCH_<scenario>.json``.

    The artifact is a *pointer*, not a profile: headline metric values
    per capture plus the entry file names inside ``store`` — small
    enough to commit at the repo root, so the perf trajectory is
    visible without opening the history store.  Re-running ``repro
    bench run`` refreshes it in place (the one mutable file in the
    history plane).
    """
    entries = store.entries(scenario)
    points = [e.as_index_row() for e in entries[-max_points:]]
    payload = {
        "schema": TRAJECTORY_SCHEMA,
        "scenario": scenario,
        "history_root": str(store.root),
        "updated_unix": time.time(),
        "entries_total": len(entries),
        "points": points,
    }
    return dump_json(payload, Path(directory) / f"BENCH_{scenario}.json")


def collect_history(
    directories: Iterable, scenario: str
) -> List[HistoryEntry]:
    """Entries for ``scenario`` across several store roots, merged and
    time-ordered — lets a trend span the committed store plus a fresh
    capture directory."""
    entries: List[HistoryEntry] = []
    for directory in directories:
        entries.extend(HistoryStore(directory).entries(scenario))
    entries.sort(key=lambda e: (e.recorded_unix, e.path.name))
    return entries
