"""Render the performance trajectory across stored profiles.

``repro bench report`` loads every ``BENCH_*.json`` it can find (the
committed baselines plus any fresh capture directories) and prints one
row per profile, grouped by scenario and ordered by capture time — the
repo's perf history at a glance, in terminal or Markdown form.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.store import ProfileStore

__all__ = ["collect_profiles", "trajectory_rows", "render_trajectory"]

#: headline metrics, in display order; a profile lacking one shows "-"
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("mean_jct", "mean JCT (s)"),
    ("makespan", "makespan (s)"),
    ("wall_seconds", "wall (s)"),
    ("placements_per_sec", "plc/s"),
    ("round_ms", "round (ms)"),
)


def collect_profiles(directories: Iterable) -> List[Dict[str, object]]:
    """Every profile in every directory, sorted by (scenario, capture
    time).  Missing directories are skipped, not errors — the report
    should render from whatever history exists."""
    profiles: List[Dict[str, object]] = []
    for directory in directories:
        profiles.extend(ProfileStore(directory).load_all().values())
    profiles.sort(
        key=lambda p: (str(p.get("scenario")), float(p.get("created_unix", 0)))
    )
    return profiles


def _metric_value(profile: Dict, name: str) -> Optional[float]:
    record = (profile.get("metrics") or {}).get(name)
    if record is None:
        return None
    return float(record["value"])


def trajectory_rows(
    profiles: Sequence[Dict[str, object]],
) -> Tuple[List[str], List[List[str]]]:
    """(header, rows) of the trajectory table, already stringified."""
    header = ["scenario", "captured", "git"] + [
        label for _, label in _COLUMNS
    ]
    rows: List[List[str]] = []
    for profile in profiles:
        meta = profile.get("meta") or {}
        sha = meta.get("git_sha")
        sha_label = (sha[:9] if isinstance(sha, str) else "-") + (
            "*" if meta.get("git_dirty") else ""
        )
        created = profile.get("created_unix")
        when = (
            time.strftime("%Y-%m-%d %H:%M", time.gmtime(float(created)))
            if created
            else "-"
        )
        row = [str(profile.get("scenario")), when, sha_label]
        for name, _ in _COLUMNS:
            value = _metric_value(profile, name)
            row.append(f"{value:.2f}" if value is not None else "-")
        rows.append(row)
    return header, rows


def render_trajectory(
    profiles: Sequence[Dict[str, object]], fmt: str = "term"
) -> str:
    """The trajectory table as a terminal or Markdown string."""
    header, rows = trajectory_rows(profiles)
    if not rows:
        return "no profiles found"
    if fmt == "md":
        lines = ["| " + " | ".join(header) + " |",
                 "|" + "---|" * len(header)]
        lines += ["| " + " | ".join(row) + " |" for row in rows]
        return "\n".join(lines)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    previous_scenario = None
    for row in rows:
        if previous_scenario is not None and row[0] != previous_scenario:
            lines.append("")
        previous_scenario = row[0]
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
