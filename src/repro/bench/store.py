"""The on-disk profile store.

A store is just a directory of ``BENCH_<scenario>.json`` files — the
committed baseline lives in ``benchmarks/baselines/``, a fresh capture
in whatever output directory ``repro bench run`` was pointed at.  The
same class reads both sides of a comparison and feeds the trajectory
report.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.profile import load_profile, profile_filename, save_profile

__all__ = ["ProfileStore"]

_PROFILE_RE = re.compile(r"^BENCH_(?P<scenario>.+)\.json$")


class ProfileStore:
    """Load/save profiles keyed by scenario name under one directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path_for(self, scenario: str) -> Path:
        return self.root / profile_filename(scenario)

    def scenarios(self) -> List[str]:
        """Scenario names with a stored profile, sorted."""
        if not self.root.is_dir():
            return []
        out = []
        for entry in self.root.iterdir():
            match = _PROFILE_RE.match(entry.name)
            if match and entry.is_file():
                out.append(match.group("scenario"))
        return sorted(out)

    def load(self, scenario: str) -> Optional[Dict[str, object]]:
        """The stored profile for ``scenario``, or ``None`` if absent."""
        path = self.path_for(scenario)
        if not path.is_file():
            return None
        return load_profile(path)

    def load_all(self) -> Dict[str, Dict[str, object]]:
        return {name: load_profile(self.path_for(name))
                for name in self.scenarios()}

    def save(self, profile: Dict[str, object]) -> Path:
        return save_profile(profile, self.root)

    def __repr__(self) -> str:
        return f"ProfileStore({str(self.root)!r}, scenarios={self.scenarios()})"
