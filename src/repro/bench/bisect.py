"""Automatic degradation bisect: the detector as a ``git bisect`` oracle.

``repro bench compare`` can say *that* a scenario regressed;
:func:`git_bisect` localizes *which commit* did it.  Three layers, so
the search logic is testable without a git checkout:

- :class:`ProfileOracle` — judges one candidate profile against the
  known-good baseline with :func:`~repro.bench.detect.compare_profiles`
  (same tolerance bands, same Mann–Whitney confirmation) and
  **adaptively escalates repeat counts**: when a timing band is
  exceeded but the rank test lacks significance ("band exceeded but
  not significant"), the capture is re-run with doubled repeats — up to
  ``max_repeats`` — instead of guessing through the noise.  The initial
  repeat count is sized from the baseline's own observed noise
  (coefficient of variation of its timing samples).
- :func:`bisect_linear` — a pure binary search over an ordered commit
  list (oldest→newest, first index known good side, last known bad)
  that finds the first bad commit in ``ceil(log2(n))`` oracle calls.
  Unit tests drive it with scripted profile sequences; no git needed.
- :func:`git_bisect` — the real thing: drives ``git bisect`` in a
  checkout, capturing a profile per candidate commit **in a fresh
  worker process** through :class:`~repro.exec.backends.ProcessPoolBackend`
  (per-attempt timeouts and bounded retries for free), with the
  :class:`~repro.bench.history.HistoryStore` as a cache — a commit
  already profiled on this host-speed class is judged from its stored
  entry without re-running.
"""

from __future__ import annotations

import math
import os
import re
import statistics
import subprocess
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.detect import compare_profiles
from repro.bench.history import HistoryStore, calibration_stamp

__all__ = [
    "BisectStep",
    "BisectResult",
    "ProfileOracle",
    "bisect_linear",
    "choose_repeats",
    "git_bisect",
]

#: hard ceiling on adaptive repeat escalation
DEFAULT_MIN_REPEATS = 3
DEFAULT_MAX_REPEATS = 12


def choose_repeats(
    baseline: Dict[str, object],
    min_repeats: int = DEFAULT_MIN_REPEATS,
    max_repeats: int = DEFAULT_MAX_REPEATS,
    timing_tolerance: float = 0.5,
) -> int:
    """Initial repeat count sized from the baseline's observed noise.

    The worst coefficient of variation across the baseline's timing
    metrics estimates per-repeat noise; the median of ``k`` repeats
    shrinks it roughly by ``sqrt(k)``, so we pick the smallest ``k``
    that pulls the median's noise comfortably (4x) inside the tolerance
    band, clamped to ``[min_repeats, max_repeats]``.  A quiet baseline
    costs ``min_repeats``; a noisy one starts higher instead of paying
    an escalation round-trip per bisect step.
    """
    worst_cv = 0.0
    for record in (baseline.get("metrics") or {}).values():
        if not isinstance(record, dict) or record.get("kind") != "timing":
            continue
        samples = [float(s) for s in (record.get("samples") or [])]
        if len(samples) < 2:
            continue
        mean = statistics.fmean(samples)
        if mean <= 0:
            continue
        worst_cv = max(worst_cv, statistics.stdev(samples) / mean)
    if worst_cv <= 0:
        return max(1, min_repeats)
    needed = math.ceil((4.0 * worst_cv / timing_tolerance) ** 2)
    return max(min_repeats, min(max_repeats, needed))


@dataclass
class BisectStep:
    """One oracle consultation during a bisect."""

    sha: str
    verdict: str  # "good" | "bad" | "skip"
    repeats: int
    escalations: int
    cached: bool
    degraded: List[str] = field(default_factory=list)


@dataclass
class BisectResult:
    """What a bisect run learned."""

    culprit: Optional[str]
    steps: List[BisectStep] = field(default_factory=list)
    log: List[str] = field(default_factory=list)

    @property
    def oracle_calls(self) -> int:
        return len(self.steps)

    def render(self) -> str:
        lines = []
        for step in self.steps:
            suffix = " (cached)" if step.cached else (
                f" (repeats={step.repeats}"
                + (f", escalated x{step.escalations}" if step.escalations
                   else "")
                + ")"
            )
            blame = f" <- {', '.join(step.degraded)}" if step.degraded else ""
            lines.append(f"  {step.sha[:12]}: {step.verdict}{suffix}{blame}")
        head = (
            f"first bad commit: {self.culprit}"
            if self.culprit
            else "no culprit found"
        )
        return "\n".join(
            [head, f"oracle calls: {self.oracle_calls}"] + lines
        )


class ProfileOracle:
    """Judge candidate commits against a known-good baseline profile.

    ``capture_fn(sha, repeats) -> profile`` produces a candidate profile
    (in tests a scripted generator; in :func:`git_bisect` a subprocess
    capture at the checked-out commit).  The oracle records every step
    so the final :class:`BisectResult` shows its work.
    """

    def __init__(
        self,
        baseline: Dict[str, object],
        capture_fn: Callable[[str, int], Dict[str, object]],
        timing_tolerance: float = 0.5,
        fidelity_tolerance: float = 0.02,
        min_repeats: int = DEFAULT_MIN_REPEATS,
        max_repeats: int = DEFAULT_MAX_REPEATS,
        cache_lookup: Optional[
            Callable[[str], Optional[Dict[str, object]]]
        ] = None,
    ) -> None:
        self.baseline = baseline
        self.capture_fn = capture_fn
        self.timing_tolerance = timing_tolerance
        self.fidelity_tolerance = fidelity_tolerance
        self.min_repeats = min_repeats
        self.max_repeats = max_repeats
        self.cache_lookup = cache_lookup
        self.initial_repeats = choose_repeats(
            baseline, min_repeats, max_repeats, timing_tolerance
        )
        self.steps: List[BisectStep] = []

    def _judge(self, profile: Dict[str, object]):
        return compare_profiles(
            self.baseline,
            profile,
            timing_tolerance=self.timing_tolerance,
            fidelity_tolerance=self.fidelity_tolerance,
        )

    @staticmethod
    def _inconclusive(result) -> bool:
        """A band was exceeded but the rank test withheld confirmation —
        more repeats may settle it."""
        return any(
            v.status == "stable" and v.note.startswith("band exceeded")
            for v in result.verdicts
        )

    def is_bad(self, sha: str) -> bool:
        """True when the commit's profile degrades vs the baseline.

        Escalates repeats while the verdict is inconclusive; a config
        mismatch (the scenario itself changed mid-range) raises rather
        than mislabeling the commit.
        """
        cached = self.cache_lookup(sha) if self.cache_lookup else None
        if cached is not None:
            result = self._judge(cached)
            if result.config_mismatch:
                raise RuntimeError(
                    f"cannot judge {sha}: " + "; ".join(result.notes)
                )
            self.steps.append(BisectStep(
                sha=sha,
                verdict="bad" if not result.ok else "good",
                repeats=0,
                escalations=0,
                cached=True,
                degraded=[v.name for v in result.degraded],
            ))
            return not result.ok
        repeats = self.initial_repeats
        escalations = 0
        while True:
            profile = self.capture_fn(sha, repeats)
            result = self._judge(profile)
            if result.config_mismatch:
                raise RuntimeError(
                    f"cannot judge {sha}: " + "; ".join(result.notes)
                )
            if (
                result.ok
                and self._inconclusive(result)
                and repeats < self.max_repeats
            ):
                repeats = min(self.max_repeats, repeats * 2)
                escalations += 1
                continue
            break
        self.steps.append(BisectStep(
            sha=sha,
            verdict="bad" if not result.ok else "good",
            repeats=repeats,
            escalations=escalations,
            cached=False,
            degraded=[v.name for v in result.degraded],
        ))
        return not result.ok


def bisect_linear(
    commits: Sequence[str], is_bad: Callable[[str], bool]
) -> Optional[str]:
    """First bad commit in an ordered range, by binary search.

    ``commits`` is oldest→newest, with the commit *before* ``commits[0]``
    known good and ``commits[-1]`` known bad (the classic
    ``git bisect`` contract).  Candidates strictly inside the range are
    consulted — ``ceil(log2(n))`` oracle calls for ``n`` commits; the
    endpoints' verdicts are the caller's contract, so the worst case
    with endpoint re-validation stays within ``log2(n) + 2``.
    """
    if not commits:
        return None
    lo, hi = 0, len(commits) - 1  # invariant: commits[hi] is bad
    while lo < hi:
        mid = (lo + hi) // 2
        if is_bad(commits[mid]):
            hi = mid
        else:
            lo = mid + 1
    return commits[hi]


# ---------------------------------------------------------------------------
# the real thing: git bisect over a working checkout
# ---------------------------------------------------------------------------

def _git(repo, *argv: str) -> str:
    proc = subprocess.run(
        ["git", *argv],
        cwd=repo, capture_output=True, text=True, timeout=120,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"git {' '.join(argv)} failed: {proc.stderr.strip()}"
        )
    return proc.stdout


def _capture_in_checkout(payload):
    """Worker-process body: profile a scenario with *the checkout's own
    code*.  Runs in a fresh process (``ProcessPoolBackend``), where
    re-pointing ``sys.path`` at the checked-out tree and dropping any
    inherited ``repro`` modules makes the import below load the
    candidate commit's implementation."""
    import sys

    checkout, scenario_name, repeats = payload
    src = os.path.join(checkout, "src")
    sys.path.insert(0, src if os.path.isdir(src) else checkout)
    for name in [m for m in sys.modules
                 if m == "repro" or m.startswith("repro.")]:
        del sys.modules[name]
    from repro.bench.profile import capture

    return capture(scenario_name, repeats=repeats)


def git_bisect(
    scenario: str,
    good: str,
    bad: str,
    repo: str = ".",
    history: Optional[HistoryStore] = None,
    timing_tolerance: float = 0.5,
    fidelity_tolerance: float = 0.02,
    min_repeats: int = DEFAULT_MIN_REPEATS,
    max_repeats: int = DEFAULT_MAX_REPEATS,
    capture_timeout: Optional[float] = 1800.0,
    progress: Optional[Callable[[str], None]] = None,
) -> BisectResult:
    """Drive ``git bisect`` with the degradation detector as oracle.

    The baseline profile is captured at ``good`` (or pulled from
    ``history`` when a same-host entry exists); every candidate commit
    ``git bisect`` proposes is profiled in an isolated worker process
    and judged against it.  Every fresh capture is appended to
    ``history``, so a re-run — or a later bisect over an overlapping
    range — reuses instead of re-measuring.  The checkout must be clean;
    ``git bisect reset`` runs on every exit path.
    """
    from repro.exec.backends import ProcessPoolBackend

    say = progress if progress is not None else (lambda _msg: None)
    if _git(repo, "status", "--porcelain").strip():
        raise RuntimeError(
            "refusing to bisect a dirty checkout; commit or stash first"
        )
    good_sha = _git(repo, "rev-parse", good).strip()
    bad_sha = _git(repo, "rev-parse", bad).strip()
    backend = ProcessPoolBackend(
        workers=1, timeout=capture_timeout, retries=1
    )

    def capture_at(sha: str, repeats: int) -> Dict[str, object]:
        outcome = backend.map(
            _capture_in_checkout, [(os.path.abspath(repo), scenario, repeats)]
        )[0]
        if not outcome.ok:
            raise RuntimeError(
                f"profile capture at {sha[:12]} failed: {outcome.error}"
            )
        profile = outcome.value
        if history is not None:
            history.append(profile)
        return profile

    result = BisectResult(culprit=None)

    # the known-good baseline: cached entry if the host-speed class
    # matches, else a fresh capture at the good commit
    baseline_entry = (
        history.for_sha(scenario, good_sha) if history is not None else None
    )
    if baseline_entry is not None:
        baseline = baseline_entry.profile
        result.log.append(
            f"baseline: history entry {baseline_entry.path.name}"
        )
    else:
        say(f"capturing baseline at good commit {good_sha[:12]}")
        _git(repo, "checkout", "--quiet", good_sha)
        try:
            baseline = capture_at(good_sha, DEFAULT_MIN_REPEATS)
        finally:
            _git(repo, "checkout", "--quiet", "-")
        result.log.append(f"baseline: captured at {good_sha[:12]}")

    stamp = calibration_stamp(baseline)

    def cache_lookup(sha: str) -> Optional[Dict[str, object]]:
        if history is None:
            return None
        entry = history.for_sha(scenario, sha, stamp=stamp)
        return entry.profile if entry is not None else None

    oracle = ProfileOracle(
        baseline,
        capture_at,
        timing_tolerance=timing_tolerance,
        fidelity_tolerance=fidelity_tolerance,
        min_repeats=min_repeats,
        max_repeats=max_repeats,
        cache_lookup=cache_lookup,
    )
    result.log.append(
        f"initial repeats from baseline noise: {oracle.initial_repeats}"
    )

    first_bad = re.compile(r"^([0-9a-f]{40}) is the first bad commit")
    try:
        out = _git(repo, "bisect", "start", bad_sha, good_sha)
        result.log.append(out.strip())
        while True:
            match = first_bad.search(out)
            if match:
                result.culprit = match.group(1)
                break
            head = _git(repo, "rev-parse", "HEAD").strip()
            say(f"profiling candidate {head[:12]}")
            try:
                verdict = "bad" if oracle.is_bad(head) else "good"
            except RuntimeError as exc:
                result.log.append(f"{head[:12]}: skipped ({exc})")
                verdict = "skip"
            out = _git(repo, "bisect", verdict)
            result.log.append(out.strip().splitlines()[0] if out.strip()
                              else f"bisect {verdict}")
    finally:
        _git(repo, "bisect", "reset")
    result.steps = oracle.steps
    return result
