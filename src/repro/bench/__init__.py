"""Benchmark telemetry: capture, version, and gate scheduler performance.

The paper's Table 7 argues the packing logic stays cheap at scale; this
package turns that claim (and the headline fidelity numbers) into
durable, comparable artifacts instead of hand re-derived measurements:

- :mod:`repro.bench.scenarios` — the canonical benchmark workloads
  (shared with ``benchmarks/conftest.py``), each with a config
  fingerprint;
- :mod:`repro.bench.profile` — run a scenario ``k`` times and serialize
  one schema-versioned ``BENCH_<scenario>.json`` profile stamped with
  git SHA, host, and a host-speed calibration constant;
- :mod:`repro.bench.store` — a directory of profiles (the committed
  baseline in ``benchmarks/baselines/``);
- :mod:`repro.bench.detect` — noise-aware comparison against a baseline
  (median-of-k, per-kind tolerance bands, calibration rescaling, a
  Mann–Whitney confirmation when repeat samples exist) with per-phase
  attribution of slowdowns;
- :mod:`repro.bench.report` — the trajectory table across stored
  profiles;
- :mod:`repro.bench.history` — the append-only per-commit profile
  history store (keyed by git SHA + scenario + host-calibration stamp)
  with trend queries, entry diffs, retention/compaction, and top-level
  trajectory artifacts;
- :mod:`repro.bench.bisect` — automatic degradation bisect: the
  detector as a ``git bisect`` oracle with adaptive repeat counts.

Surfaced on the command line as ``repro bench
run|compare|report|history|diff|bisect``; the same shape as Perun's
per-version performance profiles, scaled to this repo.
"""

from repro.bench.bisect import (
    BisectResult,
    BisectStep,
    ProfileOracle,
    bisect_linear,
    choose_repeats,
    git_bisect,
)
from repro.bench.detect import (
    ComparisonResult,
    MetricVerdict,
    compare_profiles,
    mann_whitney_p,
)
from repro.bench.history import (
    DEFAULT_HISTORY_DIR,
    HISTORY_SCHEMA,
    TRAJECTORY_SCHEMA,
    HistoryEntry,
    HistoryStore,
    calibration_stamp,
    collect_history,
    diff_entries,
    render_trend,
    trend_rows,
    write_trajectory_artifact,
)
from repro.bench.profile import (
    SCHEMA,
    capture,
    dump_json,
    load_profile,
    profile_filename,
    save_profile,
)
from repro.bench.report import collect_profiles, render_trajectory
from repro.bench.scenarios import (
    SCENARIOS,
    PackingScenario,
    ServeScenario,
    TraceScenario,
    get_scenario,
    scenario_names,
)
from repro.bench.store import ProfileStore

__all__ = [
    "BisectResult",
    "BisectStep",
    "ProfileOracle",
    "bisect_linear",
    "choose_repeats",
    "git_bisect",
    "ComparisonResult",
    "MetricVerdict",
    "compare_profiles",
    "mann_whitney_p",
    "DEFAULT_HISTORY_DIR",
    "HISTORY_SCHEMA",
    "TRAJECTORY_SCHEMA",
    "HistoryEntry",
    "HistoryStore",
    "calibration_stamp",
    "collect_history",
    "diff_entries",
    "render_trend",
    "trend_rows",
    "write_trajectory_artifact",
    "SCHEMA",
    "capture",
    "dump_json",
    "load_profile",
    "profile_filename",
    "save_profile",
    "collect_profiles",
    "render_trajectory",
    "SCENARIOS",
    "PackingScenario",
    "ServeScenario",
    "TraceScenario",
    "get_scenario",
    "scenario_names",
    "ProfileStore",
]
