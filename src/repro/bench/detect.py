"""Noise-aware degradation detection between two profiles.

The detector compares each metric of a freshly captured profile against
the committed baseline and classifies it *improved* / *stable* /
*degraded* with tolerances chosen per metric kind:

- **timing** metrics (wall seconds, per-round milliseconds, phase
  means) are inherently noisy: the stored value is already a
  median-of-k, the baseline value is rescaled by the two profiles'
  host-calibration ratio, and the relative tolerance band is wide
  (default ±50%).  When both profiles carry their raw repeat samples, a
  one-sided Mann–Whitney rank test must *confirm* the shift before a
  band violation is reported as a degradation — a single noisy repeat
  cannot fail CI;
- **fidelity** metrics (mean JCT, makespan, placement counts) are
  deterministic given the seed, so their band is tight (default ±2%)
  and no rank test applies.  A fidelity *improvement* (JCT went down)
  is reported as such, not as a failure; ``exact`` metrics treat any
  drift beyond the band as degradation.

Phase metrics keep their ``phase:<label>:mean_ms`` names, so the
verdict attributes a slowdown to the phase that caused it ("packing
round got 2× slower" names ``tetris.schedule``).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "MetricVerdict",
    "ComparisonResult",
    "compare_profiles",
    "mann_whitney_p",
    "IMPROVED",
    "STABLE",
    "DEGRADED",
    "MISSING",
    "NEW",
]

IMPROVED = "improved"
STABLE = "stable"
DEGRADED = "degraded"
MISSING = "missing"   # metric present in baseline, absent from current
NEW = "new"           # metric absent from baseline

#: default relative tolerance bands per metric kind
TIMING_TOLERANCE = 0.5
FIDELITY_TOLERANCE = 0.02
#: one-sided significance level for the rank-test confirmation
ALPHA = 0.1


def mann_whitney_p(
    current: Sequence[float], baseline: Sequence[float]
) -> float:
    """One-sided Mann–Whitney p-value for *current > baseline*.

    Normal approximation with tie correction — adequate for the small
    repeat counts profiles carry (k = 3..10).  Returns 1.0 when either
    side has no samples.
    """
    n, m = len(current), len(baseline)
    if n == 0 or m == 0:
        return 1.0
    combined = sorted(
        [(v, 0) for v in current] + [(v, 1) for v in baseline]
    )
    tie_term = 0.0
    i = 0
    rank_sum_current = 0.0
    while i < len(combined):
        j = i
        while j < len(combined) and combined[j][0] == combined[i][0]:
            j += 1
        avg_rank = (i + j + 1) / 2.0  # ranks are 1-based
        t = j - i
        if t > 1:
            tie_term += t * (t**2 - 1)
        for k in range(i, j):
            if combined[k][1] == 0:
                rank_sum_current += avg_rank
        i = j
    u = rank_sum_current - n * (n + 1) / 2.0
    mean_u = n * m / 2.0
    total = n + m
    var_u = (n * m / 12.0) * (
        (total + 1) - tie_term / (total * (total - 1))
    )
    if var_u <= 0:
        return 1.0 if u <= mean_u else 0.0
    # continuity correction; large U = current samples rank high
    z = (u - mean_u - 0.5) / math.sqrt(var_u)
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass
class MetricVerdict:
    """One metric's comparison outcome."""

    name: str
    kind: str
    status: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    ratio: Optional[float] = None
    note: str = ""

    @property
    def is_phase(self) -> bool:
        return self.name.startswith("phase:")

    @property
    def phase_label(self) -> Optional[str]:
        if not self.is_phase:
            return None
        return self.name.split(":", 2)[1]


@dataclass
class ComparisonResult:
    """All verdicts for one scenario pair, plus the overall gate."""

    scenario: str
    verdicts: List[MetricVerdict] = field(default_factory=list)
    config_mismatch: bool = False
    notes: List[str] = field(default_factory=list)

    def by_status(self, status: str) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.status == status]

    @property
    def degraded(self) -> List[MetricVerdict]:
        return self.by_status(DEGRADED)

    @property
    def improved(self) -> List[MetricVerdict]:
        return self.by_status(IMPROVED)

    @property
    def ok(self) -> bool:
        """True when nothing degraded, nothing went missing, and the
        two profiles were actually comparable."""
        if self.config_mismatch:
            return False
        return not self.degraded and not self.by_status(MISSING)

    def attribution(self) -> List[MetricVerdict]:
        """Degraded *phase* metrics, worst ratio first — the "which
        phase got slower" answer."""
        phases = [v for v in self.degraded if v.is_phase]
        return sorted(
            phases, key=lambda v: -(v.ratio if v.ratio is not None else 0.0)
        )

    def render(self) -> str:
        """A terminal table of every verdict plus the headline."""
        lines = [f"scenario {self.scenario}:"]
        for note in self.notes:
            lines.append(f"  ! {note}")
        header = f"  {'metric':<36} {'baseline':>12} {'current':>12} " \
                 f"{'ratio':>7}  status"
        lines.append(header)
        for v in self.verdicts:
            base = f"{v.baseline:.4g}" if v.baseline is not None else "-"
            cur = f"{v.current:.4g}" if v.current is not None else "-"
            ratio = f"{v.ratio:.2f}x" if v.ratio is not None else "-"
            marker = {DEGRADED: " <-- DEGRADED", IMPROVED: " (improved)"}.get(
                v.status, ""
            )
            note = f"  [{v.note}]" if v.note else ""
            lines.append(
                f"  {v.name:<36} {base:>12} {cur:>12} {ratio:>7}  "
                f"{v.status}{marker}{note}"
            )
        attribution = self.attribution()
        if attribution:
            worst = ", ".join(
                f"{v.phase_label} ({v.ratio:.2f}x)" for v in attribution
            )
            lines.append(f"  slowest phases: {worst}")
        lines.append(
            f"  verdict: {'OK' if self.ok else 'DEGRADED'} "
            f"({len(self.improved)} improved, "
            f"{len(self.by_status(STABLE))} stable, "
            f"{len(self.degraded)} degraded)"
        )
        return "\n".join(lines)


def _calibration_ratio(baseline: Dict, current: Dict):
    """``(ratio, note)``: current-host speed relative to baseline-host
    speed (>1 = the current host is slower, so baseline timings are
    scaled up).

    A profile captured before the host-calibration stamp existed (or
    carrying a malformed one) must not kill the comparison: rescaling is
    skipped (ratio 1.0), a warning names the side at fault, and the
    note rides along in the result so the degraded verdicts it may
    cause are explainable.
    """
    sides = {
        "baseline": (baseline.get("meta") or {}).get("calibration_seconds"),
        "current": (current.get("meta") or {}).get("calibration_seconds"),
    }
    legacy = sorted(
        side for side, cal in sides.items()
        if not isinstance(cal, (int, float)) or cal <= 0
    )
    if legacy:
        note = (
            f"{' and '.join(legacy)} profile predates the "
            "host-calibration stamp; timing rescaling skipped"
        )
        warnings.warn(note, RuntimeWarning, stacklevel=3)
        return 1.0, note
    return sides["current"] / sides["baseline"], None


def _kernel_backend_of(profile: Dict) -> str:
    """The kernel-backend stamp of one profile.

    Profiles captured before the stamp existed ran the only backend that
    existed then — the numpy default — so a missing stamp reads as
    ``numpy`` and old baselines stay comparable.
    """
    stamp = (profile.get("meta") or {}).get("kernel_backend")
    return str(stamp) if stamp else "numpy"


def _shards_of(profile: Dict) -> int:
    """The shard-count stamp of one profile.

    Profiles captured before the federation existed ran centralized, so
    a missing stamp reads as 1 and old baselines stay comparable.
    """
    stamp = (profile.get("meta") or {}).get("shards")
    try:
        return int(stamp) if stamp else 1
    except (TypeError, ValueError):
        return 1


def compare_profiles(
    baseline: Dict[str, object],
    current: Dict[str, object],
    timing_tolerance: float = TIMING_TOLERANCE,
    fidelity_tolerance: float = FIDELITY_TOLERANCE,
    alpha: float = ALPHA,
) -> ComparisonResult:
    """Compare ``current`` against ``baseline``; see the module docstring
    for the decision rules."""
    result = ComparisonResult(scenario=str(current.get("scenario")))
    base_fp = (baseline.get("meta") or {}).get("config_fingerprint")
    cur_fp = (current.get("meta") or {}).get("config_fingerprint")
    if baseline.get("scenario") != current.get("scenario"):
        result.config_mismatch = True
        result.notes.append(
            f"scenario mismatch: baseline={baseline.get('scenario')!r} "
            f"current={current.get('scenario')!r}"
        )
        return result
    if base_fp != cur_fp:
        result.config_mismatch = True
        result.notes.append(
            f"config fingerprint mismatch ({base_fp} != {cur_fp}); "
            "refresh the baseline after a scenario change"
        )
        return result
    base_kb = _kernel_backend_of(baseline)
    cur_kb = _kernel_backend_of(current)
    if base_kb != cur_kb:
        result.config_mismatch = True
        result.notes.append(
            f"kernel backend mismatch (baseline={base_kb}, "
            f"current={cur_kb}); profiles captured on different "
            "backends are never compared — capture a matching baseline "
            "with `repro bench run --backend`"
        )
        return result
    base_sh = _shards_of(baseline)
    cur_sh = _shards_of(current)
    if base_sh != cur_sh:
        result.config_mismatch = True
        result.notes.append(
            f"shard-count mismatch (baseline={base_sh}, "
            f"current={cur_sh}); a sharded capture is a different "
            "execution mode, not a code change — gate it against a "
            "baseline captured with the same --shards"
        )
        return result

    cal_ratio, cal_note = _calibration_ratio(baseline, current)
    if cal_note:
        result.notes.append(cal_note)
    if not 0.8 <= cal_ratio <= 1.25:
        result.notes.append(
            f"hosts differ in speed (calibration ratio {cal_ratio:.2f}); "
            "timing baselines rescaled accordingly"
        )

    base_metrics: Dict[str, Dict] = dict(baseline.get("metrics") or {})
    cur_metrics: Dict[str, Dict] = dict(current.get("metrics") or {})
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(name)
        cur = cur_metrics.get(name)
        if base is None:
            result.verdicts.append(MetricVerdict(
                name=name, kind=cur.get("kind", "?"), status=NEW,
                current=cur.get("value"),
            ))
            continue
        if cur is None:
            result.verdicts.append(MetricVerdict(
                name=name, kind=base.get("kind", "?"), status=MISSING,
                baseline=base.get("value"),
            ))
            continue
        result.verdicts.append(_judge(
            name, base, cur, cal_ratio,
            timing_tolerance, fidelity_tolerance, alpha,
        ))
    return result


def _judge(
    name: str,
    base: Dict,
    cur: Dict,
    cal_ratio: float,
    timing_tolerance: float,
    fidelity_tolerance: float,
    alpha: float,
) -> MetricVerdict:
    kind = str(base.get("kind", "fidelity"))
    direction = str(base.get("direction", "lower"))
    base_value = float(base.get("value", 0.0))
    cur_value = float(cur.get("value", 0.0))
    timing = kind == "timing"
    tolerance = timing_tolerance if timing else fidelity_tolerance
    if timing:
        # a slower current host inflates both the reference and, for
        # "higher is better" rates, deflates the expectation
        base_value = (
            base_value * cal_ratio if direction == "lower"
            else base_value / cal_ratio
        )

    if base_value == 0.0:
        status = STABLE if cur_value == 0.0 else DEGRADED
        return MetricVerdict(
            name=name, kind=kind, status=status,
            baseline=base_value, current=cur_value,
            note="" if status == STABLE else "baseline was zero",
        )

    ratio = cur_value / base_value
    # normalize so "worse" is always ratio > 1
    worse_ratio = ratio if direction != "higher" else (
        1.0 / ratio if ratio != 0 else float("inf")
    )
    note = ""
    if worse_ratio > 1.0 + tolerance:
        status = DEGRADED
        if timing:
            confirmed, note = _confirm_with_ranks(
                base, cur, direction, cal_ratio, alpha
            )
            if not confirmed:
                status = STABLE
    elif worse_ratio < 1.0 / (1.0 + tolerance):
        # an exact metric has no "better" direction: any drift is a break
        if direction == "exact":
            status, note = DEGRADED, "exact metric drifted"
        else:
            status = IMPROVED
    else:
        status = STABLE
    return MetricVerdict(
        name=name, kind=kind, status=status,
        baseline=base_value, current=cur_value, ratio=ratio, note=note,
    )


def _confirm_with_ranks(
    base: Dict, cur: Dict, direction: str, cal_ratio: float, alpha: float,
):
    """Nonparametric confirmation of a timing band violation.

    The shift must also be significant under the one-sided Mann–Whitney
    test — but only when the test has any power at ``alpha``: with n
    and m samples the smallest achievable p is 1/C(n+m, n) (complete
    separation), so tiny sample counts (e.g. 2 vs 2, min p = 1/6) would
    *always* downgrade, masking real regressions.  In that regime the
    median band decides alone.
    """
    base_samples = [float(s) for s in (base.get("samples") or [])]
    cur_samples = [float(s) for s in (cur.get("samples") or [])]
    n, m = len(cur_samples), len(base_samples)
    if n < 2 or m < 2 or 1.0 / math.comb(n + m, n) > alpha:
        return True, "too few repeat samples; band only"
    base_samples = [
        s * cal_ratio if direction == "lower" else s / cal_ratio
        for s in base_samples
    ]
    if direction == "higher":
        # "current got worse" = current samples rank LOW
        p = mann_whitney_p(base_samples, cur_samples)
    else:
        p = mann_whitney_p(cur_samples, base_samples)
    if p <= alpha:
        return True, f"rank-test confirmed (p={p:.3f})"
    return False, f"band exceeded but not significant (p={p:.2f})"
