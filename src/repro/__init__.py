"""Tetris: multi-resource packing for cluster schedulers (SIGCOMM 2014).

A from-scratch reproduction of the paper's system and evaluation:

- :mod:`repro.resources` — resource vectors and models;
- :mod:`repro.cluster` — machines, racks, HDFS-like block store;
- :mod:`repro.workload` — tasks, stages, jobs, DAGs, trace generation;
- :mod:`repro.sim` — the discrete-event fluid simulator;
- :mod:`repro.schedulers` — Tetris plus every baseline and ablation;
- :mod:`repro.estimation` — demand estimators and the resource tracker;
- :mod:`repro.enforcement` — token-bucket I/O enforcement;
- :mod:`repro.activity` — ingestion/evacuation background load;
- :mod:`repro.metrics`, :mod:`repro.analysis` — evaluation metrics;
- :mod:`repro.experiments` — the harness reproducing each table/figure.

Quickstart::

    from repro import (
        Cluster, TetrisScheduler, generate_workload_suite,
        WorkloadSuiteConfig, run_trace, ExperimentConfig,
    )

    trace = generate_workload_suite(WorkloadSuiteConfig(num_jobs=40))
    result = run_trace(trace, TetrisScheduler(),
                       ExperimentConfig(num_machines=50))
    print(result.summary())
"""

from repro.resources import (
    DEFAULT_MODEL,
    FB_MACHINE_CAPACITY,
    ResourceModel,
    ResourceVector,
)
from repro.cluster import Cluster, Machine, Topology
from repro.workload import (
    BingTraceConfig,
    FacebookTraceConfig,
    Job,
    Stage,
    Task,
    TaskInput,
    TaskWork,
    WorkloadSuiteConfig,
    generate_bing_trace,
    generate_facebook_trace,
    generate_workload_suite,
)
from repro.workload.trace import materialize_trace, load_trace, save_trace
from repro.schedulers import (
    CapacityScheduler,
    DRFScheduler,
    FifoScheduler,
    PackingOnlyScheduler,
    SlotFairScheduler,
    SRTFScheduler,
    TetrisConfig,
    TetrisScheduler,
    aggregate_upper_bound,
)
from repro.estimation import (
    NoisyEstimator,
    OracleEstimator,
    ProfilingEstimator,
    ResourceTracker,
)
from repro.activity import evacuation, ingestion
from repro.sim import Engine, EngineConfig, FluidConfig
from repro.experiments import (
    ExperimentConfig,
    RunResult,
    run_comparison,
    run_trace,
)
from repro.metrics import MetricsCollector
from repro.integration.asks import Ask, StageAsk, build_ask

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_MODEL",
    "FB_MACHINE_CAPACITY",
    "ResourceModel",
    "ResourceVector",
    "Cluster",
    "Machine",
    "Topology",
    "Job",
    "Stage",
    "Task",
    "TaskInput",
    "TaskWork",
    "WorkloadSuiteConfig",
    "FacebookTraceConfig",
    "BingTraceConfig",
    "generate_workload_suite",
    "generate_facebook_trace",
    "generate_bing_trace",
    "materialize_trace",
    "load_trace",
    "save_trace",
    "TetrisScheduler",
    "TetrisConfig",
    "SlotFairScheduler",
    "CapacityScheduler",
    "DRFScheduler",
    "FifoScheduler",
    "SRTFScheduler",
    "PackingOnlyScheduler",
    "aggregate_upper_bound",
    "OracleEstimator",
    "NoisyEstimator",
    "ProfilingEstimator",
    "ResourceTracker",
    "ingestion",
    "evacuation",
    "Engine",
    "EngineConfig",
    "FluidConfig",
    "ExperimentConfig",
    "RunResult",
    "run_trace",
    "run_comparison",
    "MetricsCollector",
    "Ask",
    "StageAsk",
    "build_ask",
]
