"""The job manager's *ask* (Section 4.4).

In YARN, each job manager (AM) periodically sends the cluster-wide
resource manager an **ask** describing its pending tasks.  Tetris
extends the ask to carry multi-resource demands and to flag the last
few tasks before a barrier — and keeps it *succinct*:

    "If the ask were to contain task demands for each possible
    placement, it would be too large.  Tetris keeps the asks succinct by
    observing that given the locations and sizes of a task's inputs, its
    resource demands can be inferred for any potential placement."

This module implements exactly that encoding: per *stage* (tasks of a
stage are statistically similar), one demand profile plus input sizes
and replica locations — from which the RM-side scheduler derives the
placement-adjusted demand vector for any machine
(`schedulers/base.adjust_for_placement`).  For the Table 7-adjacent
claim that this stays small, :func:`naive_ask_size_bytes` estimates the
rejected per-(task, machine) enumeration for comparison.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.estimation.estimator import DemandEstimator, OracleEstimator
from repro.workload.job import Job
from repro.workload.task import TaskState

__all__ = ["StageAsk", "Ask", "build_ask", "naive_ask_size_bytes"]


@dataclass(frozen=True)
class StageAsk:
    """One stage's entry in the ask.

    ``input_mb_by_machine`` summarizes where the stage's pending input
    bytes live — the information that lets the RM infer local-vs-remote
    demands per candidate machine without enumerating placements.
    ``barrier_hint`` marks stages whose remaining tasks gate a barrier
    (Section 3.5), so the RM can treat the stragglers preferentially.
    """

    stage: str
    pending_tasks: int
    demands: Dict[str, float]
    mean_input_mb: float
    input_mb_by_machine: Dict[int, float]
    barrier_hint: bool

    def encoded_size_bytes(self) -> int:
        return len(json.dumps(asdict(self)).encode())


@dataclass(frozen=True)
class Ask:
    """The full AM -> RM ask for one job."""

    job_id: int
    template: Optional[str]
    stages: Tuple[StageAsk, ...]

    def encoded_size_bytes(self) -> int:
        return len(self.to_json().encode())

    def to_json(self) -> str:
        return json.dumps(
            {
                "job_id": self.job_id,
                "template": self.template,
                "stages": [asdict(s) for s in self.stages],
            }
        )

    @property
    def pending_tasks(self) -> int:
        return sum(s.pending_tasks for s in self.stages)


def build_ask(
    job: Job,
    estimator: Optional[DemandEstimator] = None,
    barrier_knob: float = 0.9,
) -> Ask:
    """Build the succinct ask for a job's current pending work."""
    estimator = estimator if estimator is not None else OracleEstimator()
    stage_asks: List[StageAsk] = []
    for stage in job.dag:
        pending = [
            t for t in stage.tasks if t.state is TaskState.RUNNABLE
        ]
        if not pending:
            continue
        representative = pending[0]
        demands = estimator.estimate(representative).as_dict()
        by_machine: Dict[int, float] = {}
        total_mb = 0.0
        for task in pending:
            for inp in task.inputs:
                total_mb += inp.size_mb
                for machine_id in inp.locations:
                    by_machine[machine_id] = (
                        by_machine.get(machine_id, 0.0) + inp.size_mb
                    )
        barrier_hint = (
            stage.num_finished > 0
            and stage.finished_fraction >= barrier_knob
        )
        stage_asks.append(
            StageAsk(
                stage=stage.name,
                pending_tasks=len(pending),
                demands=demands,
                mean_input_mb=total_mb / len(pending),
                input_mb_by_machine=by_machine,
                barrier_hint=barrier_hint,
            )
        )
    return Ask(
        job_id=job.job_id, template=job.template, stages=tuple(stage_asks)
    )


#: bytes for one (task, machine) demand entry in the naive encoding:
#: 6 float64 demands + task id + machine id
_NAIVE_ENTRY_BYTES = 6 * 8 + 8 + 4


def naive_ask_size_bytes(job: Job, num_machines: int) -> int:
    """Size of the encoding the paper rejects: per-task, per-candidate-
    machine demand vectors."""
    pending = sum(
        1
        for stage in job.dag
        for t in stage.tasks
        if t.state is TaskState.RUNNABLE
    )
    return pending * num_machines * _NAIVE_ENTRY_BYTES
