"""YARN-integration artifacts: the AM -> RM ask encoding (Section 4.4)."""

from repro.integration.asks import (
    Ask,
    StageAsk,
    build_ask,
    naive_ask_size_bytes,
)

__all__ = ["Ask", "StageAsk", "build_ask", "naive_ask_size_bytes"]
