"""Demand estimation and machine-level resource tracking (Section 4.1)."""

from repro.estimation.estimator import (
    DemandEstimator,
    NoisyEstimator,
    OracleEstimator,
    ProfilingEstimator,
)
from repro.estimation.history import StageStatistics, TemplateHistory
from repro.estimation.tracker import ResourceTracker, TrackerConfig

__all__ = [
    "DemandEstimator",
    "OracleEstimator",
    "NoisyEstimator",
    "ProfilingEstimator",
    "StageStatistics",
    "TemplateHistory",
    "ResourceTracker",
    "TrackerConfig",
]
