"""Per-(job template, stage) demand statistics.

Recurring jobs rerun the same computation hourly or daily on new data
(Section 4.1); the statistics of a stage's tasks carry over between runs,
and within a run the first few finished tasks of a stage predict the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.resources import ResourceModel, ResourceVector

__all__ = ["StageStatistics", "TemplateHistory"]


@dataclass
class StageStatistics:
    """Streaming mean/variance of observed task demand vectors."""

    model: ResourceModel
    count: int = 0
    _mean: Optional[np.ndarray] = None
    _m2: Optional[np.ndarray] = None

    def observe(self, demands: ResourceVector) -> None:
        x = demands.data
        if self._mean is None:
            self._mean = np.zeros_like(x)
            self._m2 = np.zeros_like(x)
        self.count += 1
        delta = x - self._mean
        self._mean = self._mean + delta / self.count
        self._m2 = self._m2 + delta * (x - self._mean)

    def mean(self) -> Optional[ResourceVector]:
        if self.count == 0:
            return None
        return ResourceVector(self.model, self._mean.copy())

    def std(self) -> Optional[ResourceVector]:
        if self.count < 2:
            return None
        return ResourceVector(
            self.model, np.sqrt(self._m2 / (self.count - 1))
        )

    def coefficient_of_variation(self) -> Optional[np.ndarray]:
        std = self.std()
        mean = self.mean()
        if std is None or mean is None:
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            cov = np.where(mean.data > 0, std.data / mean.data, 0.0)
        return cov


class TemplateHistory:
    """Statistics store keyed on (job template, stage name)."""

    def __init__(self, model: ResourceModel):
        self.model = model
        self._stats: Dict[Tuple[str, str], StageStatistics] = {}

    def observe(
        self, template: str, stage_name: str, demands: ResourceVector
    ) -> None:
        key = (template, stage_name)
        if key not in self._stats:
            self._stats[key] = StageStatistics(self.model)
        self._stats[key].observe(demands)

    def mean(
        self, template: str, stage_name: str
    ) -> Optional[ResourceVector]:
        stats = self._stats.get((template, stage_name))
        return stats.mean() if stats else None

    def count(self, template: str, stage_name: str) -> int:
        stats = self._stats.get((template, stage_name))
        return stats.count if stats else 0

    def __len__(self) -> int:
        return len(self._stats)
