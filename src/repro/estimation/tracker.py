"""The resource tracker (Sections 4.1 and 4.3).

A tracker process on every node observes aggregate usage from OS counters
and reports periodically to the cluster-wide resource manager.  This lets
the scheduler:

- reclaim resources idled by over-estimates,
- steer around unforeseen hotspots and *non-job* activity (ingestion,
  evacuation) that never appears in its own allocation ledger.

To avoid reclaiming resources that a freshly-placed task has not ramped up
to yet, the report inflates observed usage with a per-task allowance that
decays linearly over ``ramp_seconds`` (the paper uses 10 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING, Tuple

from repro.resources import ResourceVector

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.machine import Machine
    from repro.obs.registry import Registry
    from repro.sim.fluid import FlowTable
    from repro.workload.task import Task

__all__ = ["ResourceTracker", "TrackerConfig"]


@dataclass(frozen=True)
class TrackerConfig:
    """Tracker parameters."""

    report_period: float = 2.0
    ramp_seconds: float = 10.0


class ResourceTracker:
    """Cluster-wide aggregation of per-node usage reports."""

    def __init__(self, cluster: "Cluster", config: Optional[TrackerConfig] = None):
        self.cluster = cluster
        self.config = config if config is not None else TrackerConfig()
        self.last_report_time: float = 0.0
        #: (task_id, machine_id) -> (placement time, booked demands)
        self._placements: Dict[int, Tuple[float, int, ResourceVector]] = {}
        #: optional metrics (set by use_metrics); None costs nothing
        self._m_reports = None
        self._m_tracked = None

    def use_metrics(self, registry: "Registry") -> None:
        """Register this tracker's metrics in ``registry``."""
        self._m_reports = registry.counter(
            "repro_tracker_reports_total",
            "Cluster-wide tracker report rounds",
        )
        self._m_tracked = registry.gauge(
            "repro_tracker_tracked_placements",
            "Live placements the tracker holds ramp-up state for",
        )

    # -- engine callbacks -----------------------------------------------------
    def note_placement(
        self, task: "Task", machine_id: int, booked: ResourceVector, time: float
    ) -> None:
        self._placements[task.task_id] = (time, machine_id, booked)

    def note_completion(self, task: "Task") -> None:
        self._placements.pop(task.task_id, None)

    def report(self, time: float, flows: "FlowTable") -> None:
        """Refresh every machine's ``observed_usage`` from ground truth.

        Rigid dimensions come from the machines' true allocations; fluid
        dimensions from the flow table's achieved throughput — which is
        what OS counters would show.  The whole refresh is three matrix
        assignments into the cluster state plane's ``observed`` matrix;
        each machine's ``observed_usage`` vector is a view over its row,
        so the per-machine objects see the report with no rebinding.
        """
        self.last_report_time = time
        if self._m_reports is not None:
            self._m_reports.inc()
            self._m_tracked.set(len(self._placements))
        throughput = flows.slot_throughput()
        fluid_names = flows.fluid_dim_names()
        model = self.cluster.model
        state = self.cluster.state
        observed = state.observed
        observed[:] = 0.0
        rigid = model.rigid_mask
        observed[:, rigid] = state.allocated[:, rigid]
        for k, name in enumerate(fluid_names):
            observed[:, model.index[name]] = throughput[:, k]

    # -- scheduler-facing view ---------------------------------------------------
    def ramp_allowance(self, machine: "Machine", time: float) -> ResourceVector:
        """Usage headroom still owed to freshly-placed tasks."""
        allowance = ResourceVector.zeros_like(machine.capacity)
        ramp = self.config.ramp_seconds
        if ramp <= 0:
            return allowance
        for placed_time, machine_id, booked in self._placements.values():
            if machine_id != machine.machine_id:
                continue
            age = time - placed_time
            if age < ramp:
                allowance.add_inplace(booked * (1.0 - age / ramp))
        return allowance

    def available(
        self, machine: "Machine", time: Optional[float] = None
    ) -> ResourceVector:
        """Free resources as the scheduler should see them.

        Rigid dimensions (memory) always count the full booked peak — a
        task's memory cannot be reclaimed without risking thrashing.  For
        fluid dimensions (CPU, disk, network rates) the tracker reports
        *observed* usage plus a ramp-up allowance for freshly-placed
        tasks.  This both reclaims head-room idled by over-estimates
        (booked > observed: Section 4.1, "the tracker reports unused
        resources and allocates them to new tasks") and charges for load
        the scheduler never booked (ingestion, misbehaving tasks:
        observed > booked — the Figure 6 mechanism).
        """
        if time is None:
            time = self.last_report_time
        model = machine.capacity.model
        used = machine.observed_usage + self.ramp_allowance(machine, time)
        for name, fluid in zip(model.names, model.fluid_mask):
            if not fluid:
                used.set(
                    name,
                    max(used.get(name), machine.allocated.get(name)),
                )
        return (machine.capacity - used).clamp_nonnegative()
