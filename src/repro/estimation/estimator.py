"""Task demand estimators (Section 4.1).

The scheduler never sees ground truth; it schedules against an estimate.
Four estimators are provided:

- :class:`OracleEstimator` — returns true demands (the §3 assumption, and
  the default for controlled experiments);
- :class:`NoisyEstimator` — true demands with multiplicative noise, for
  robustness studies;
- :class:`ProfilingEstimator` — the paper's pipeline: statistics from prior
  runs of the same recurring job, then from completed peer tasks of the
  same stage, then a deliberate *over*-estimate (over-estimation is better
  than under-estimation; the tracker reclaims the slack).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.estimation.history import TemplateHistory
from repro.resources import ResourceVector
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import Registry

__all__ = [
    "DemandEstimator",
    "OracleEstimator",
    "NoisyEstimator",
    "ProfilingEstimator",
]


class DemandEstimator(abc.ABC):
    """Estimates a task's peak demand profile (placement-independent)."""

    #: True when repeated :meth:`estimate` calls for the same task always
    #: return the same vector for the task's lifetime.  Schedulers that
    #: cache demand vectors (the batched Tetris packing path) keep their
    #: caches across task completions only for stable estimators;
    #: learning estimators (peer means, template history) force a full
    #: cache invalidation whenever a task finishes.
    stable_estimates: bool = True

    @abc.abstractmethod
    def estimate(self, task: Task) -> ResourceVector:
        """Estimated peak demand vector for ``task``."""

    def record_completion(self, task: Task) -> None:
        """Feed back a finished task's observed demands (optional)."""

    def use_metrics(self, registry: "Registry") -> None:
        """Attach a metrics registry (optional; default does nothing)."""


class OracleEstimator(DemandEstimator):
    """Perfect knowledge of task demands."""

    def estimate(self, task: Task) -> ResourceVector:
        return task.demands

    def __repr__(self) -> str:
        return "OracleEstimator()"


class NoisyEstimator(DemandEstimator):
    """True demands scaled by lognormal multiplicative noise.

    ``sigma`` is the noise scale in log space; the same draw is reused per
    task so repeated estimates are consistent.
    """

    def __init__(self, sigma: float = 0.2, seed: int = 0):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self.rng = np.random.default_rng(seed)
        self._factor_by_task: Dict[int, float] = {}

    def estimate(self, task: Task) -> ResourceVector:
        factor = self._factor_by_task.get(task.task_id)
        if factor is None:
            factor = float(self.rng.lognormal(mean=0.0, sigma=self.sigma))
            self._factor_by_task[task.task_id] = factor
        return task.demands * factor

    def __repr__(self) -> str:
        return f"NoisyEstimator(sigma={self.sigma})"


class ProfilingEstimator(DemandEstimator):
    """The paper's estimation pipeline.

    Priority order for a task of stage S in a job with template T:

    1. history of (T, S) from previous *runs* (recurring jobs);
    2. completed peers of the same stage in the *current* run (tasks of a
       stage do the same computation on different partitions);
    3. a conservative over-estimate: ``overestimate_factor`` times a
       reference vector (the stage's true mean is unknown, so we inflate a
       configurable default guess).
    """

    #: estimates move as peers finish and history accrues
    stable_estimates = False

    def __init__(
        self,
        history: Optional[TemplateHistory] = None,
        default_guess: Optional[ResourceVector] = None,
        overestimate_factor: float = 1.5,
        min_peer_samples: int = 3,
    ):
        if overestimate_factor < 1.0:
            raise ValueError("overestimate_factor must be >= 1")
        self.history = history
        self.default_guess = default_guess
        self.overestimate_factor = overestimate_factor
        self.min_peer_samples = min_peer_samples
        self._peer_stats: Dict[int, TemplateHistory] = {}
        #: per-source estimate counter (history/peers/fallback), set by
        #: use_metrics; None keeps the hot path unchanged
        self._m_estimates = None

    def use_metrics(self, registry: "Registry") -> None:
        self._m_estimates = registry.counter(
            "repro_estimator_estimates_total",
            "Demand estimates served, by pipeline stage "
            "(history, peers, or the over-estimation fallback)",
            labelnames=("source",),
        )

    def _peer_mean(self, task: Task) -> Optional[ResourceVector]:
        """Mean demands of already-finished peers of this stage."""
        stage = task.stage
        if stage is None:
            return None
        finished = [
            t for t in stage.tasks if t.state is TaskState.FINISHED
        ]
        if len(finished) < self.min_peer_samples:
            return None
        total = ResourceVector.zeros_like(finished[0].demands)
        for t in finished:
            total.add_inplace(t.demands)
        return total * (1.0 / len(finished))

    def estimate(self, task: Task) -> ResourceVector:
        template = getattr(task.job, "template", None)
        stage_name = getattr(task.stage, "name", None)
        if (
            self.history is not None
            and template is not None
            and stage_name is not None
        ):
            mean = self.history.mean(template, stage_name)
            if mean is not None:
                if self._m_estimates is not None:
                    self._m_estimates.labels(source="history").inc()
                return mean
        peer = self._peer_mean(task)
        if peer is not None:
            if self._m_estimates is not None:
                self._m_estimates.labels(source="peers").inc()
            return peer
        if self._m_estimates is not None:
            self._m_estimates.labels(source="fallback").inc()
        if self.default_guess is not None:
            return self.default_guess * self.overestimate_factor
        return task.demands * self.overestimate_factor

    def record_completion(self, task: Task) -> None:
        template = getattr(task.job, "template", None)
        stage_name = getattr(task.stage, "name", None)
        if (
            self.history is not None
            and template is not None
            and stage_name is not None
        ):
            self.history.observe(template, stage_name, task.demands)

    def __repr__(self) -> str:
        return (
            f"ProfilingEstimator(overestimate_factor="
            f"{self.overestimate_factor})"
        )
