"""Resource wastage from contention-stretched tasks (Sections 1, 2.1).

The paper's core indictment of over-allocation: when two tasks contend
for a resource neither scheduler tracked, *"they will take twice as long
to finish.  In doing so, they hold on to their cores and memory and
prevent other tasks ... from using them."*

These helpers quantify that waste on a finished run:

- :func:`resource_holding_integral` — total resource-seconds of a
  dimension held by tasks (booked demand x realized duration);
- :func:`excess_holding` — the part of that integral *beyond* what the
  tasks would have held at their contention-free (eq. 5) durations.
  Zero for a scheduler that never over-allocates; large for slot/DRF
  baselines under I/O contention.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, TYPE_CHECKING

from repro.resources import ResourceVector
from repro.workload.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["resource_holding_integral", "excess_holding", "holding_report"]


def _successful_placements(placement_log):
    for task, machine_id, start, booked in placement_log:
        if (
            task.finish_time is None
            or task.start_time is None
            or abs(start - task.start_time) > 1e-6
        ):
            continue  # failed attempt or still running
        yield task, booked


def resource_holding_integral(
    placement_log: Sequence[Tuple[Task, int, float, ResourceVector]],
    resource: str,
) -> float:
    """Total resource-seconds of ``resource`` held across all tasks."""
    total = 0.0
    for task, booked in _successful_placements(placement_log):
        total += booked.get(resource) * task.duration
    return total


def excess_holding(
    placement_log: Sequence[Tuple[Task, int, float, ResourceVector]],
    resource: str,
) -> float:
    """Resource-seconds held beyond the contention-free durations.

    For each task: booked demand times (realized duration - nominal
    duration), clamped at zero.  This is exactly the waste the paper
    attributes to over-allocation: stretched tasks squatting on
    resources they are not using productively.
    """
    total = 0.0
    for task, booked in _successful_placements(placement_log):
        stretch = max(task.duration - task.nominal_duration(), 0.0)
        total += booked.get(resource) * stretch
    return total


def holding_report(engine: "Engine") -> Dict[str, Dict[str, float]]:
    """Per-resource holding and excess integrals for a finished run."""
    model = engine.cluster.model
    out: Dict[str, Dict[str, float]] = {}
    for name in model.names:
        held = resource_holding_integral(engine.placement_log, name)
        excess = excess_holding(engine.placement_log, name)
        out[name] = {
            "held": held,
            "excess": excess,
            "excess_fraction": excess / held if held > 0 else 0.0,
        }
    return out
