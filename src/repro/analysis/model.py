"""The Section 3.1 analytical model, as an executable schedule auditor.

The paper casts task scheduling as an optimization problem with four
constraint families.  This module verifies a *realized* schedule (from a
finished :class:`~repro.sim.engine.Engine` run) against them:

- **capacity** (eq. 1): at no instant may a machine's *booked*
  allocation exceed capacity on a dimension.  Baseline schedulers
  knowingly violate this on the dimensions they ignore — the auditor
  reports per-dimension violations, so a test can assert that Tetris is
  clean while slot-fair is not;
- **single uninterrupted execution** (eq. 4): every task runs exactly
  once, on one machine, with no gaps (the model forbids preemption);
- **precedence**: a task starts only after its arrival and after every
  parent stage finished (the barrier semantics behind eq. 4's release
  structure);
- **duration lower bound** (eq. 5): a task can never beat the duration
  implied by its peak rates — realized duration >= nominal duration.

Auditing every simulation in the test suite is the closest practical
substitute for solving the (APX-hard) model: it proves the simulator
and schedulers inhabit the model's feasible region.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.resources import ResourceVector
from repro.workload.job import Job
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["Violation", "AuditReport", "audit_engine", "audit_schedule"]

#: slack for floating-point comparisons, in resource units / seconds
TOLERANCE = 1e-6


@dataclass(frozen=True)
class Violation:
    """One constraint violation."""

    kind: str  # "capacity" | "execution" | "precedence" | "duration"
    message: str
    dimension: Optional[str] = None
    machine_id: Optional[int] = None
    task_id: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.kind}] {self.message}"


@dataclass
class AuditReport:
    """All violations found in a schedule."""

    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def of_kind(self, kind: str) -> List[Violation]:
        return [v for v in self.violations if v.kind == kind]

    def violated_dimensions(self) -> set:
        """Dimensions with at least one capacity violation."""
        return {
            v.dimension for v in self.of_kind("capacity") if v.dimension
        }

    def __len__(self) -> int:
        return len(self.violations)


def _check_capacity(
    placements: Sequence[Tuple[Task, int, float, ResourceVector]],
    capacities: Dict[int, ResourceVector],
    report: AuditReport,
) -> None:
    """Interval sweep of booked allocations per machine (eq. 1)."""
    by_machine: Dict[int, List[Tuple[float, int, ResourceVector]]] = (
        defaultdict(list)
    )
    for task, machine_id, start, booked in placements:
        finish = task.finish_time
        if finish is None or task.start_time is None:
            continue
        # with failure injection the log also holds failed attempts;
        # only the successful one matches the task's final start time
        if abs(start - task.start_time) > TOLERANCE:
            continue
        by_machine[machine_id].append((start, +1, booked))
        by_machine[machine_id].append((finish, -1, booked))
    for machine_id, events in by_machine.items():
        capacity = capacities[machine_id]
        # releases before acquisitions at equal timestamps
        events.sort(key=lambda e: (e[0], e[1]))
        current = ResourceVector.zeros_like(capacity)
        for time, sign, booked in events:
            if sign > 0:
                current.add_inplace(booked)
            else:
                current.sub_inplace(booked)
            over = current.data - capacity.data
            for k, name in enumerate(capacity.model.names):
                if over[k] > TOLERANCE:
                    report.violations.append(
                        Violation(
                            kind="capacity",
                            message=(
                                f"machine {machine_id} booked "
                                f"{current.data[k]:.2f} {name} "
                                f"(capacity {capacity.data[k]:.2f}) "
                                f"at t={time:.2f}"
                            ),
                            dimension=name,
                            machine_id=machine_id,
                        )
                    )


def _check_execution(jobs: Sequence[Job], report: AuditReport) -> None:
    """Every task finished exactly once, with consistent timestamps."""
    for job in jobs:
        for task in job.all_tasks():
            if task.state is not TaskState.FINISHED:
                report.violations.append(
                    Violation(
                        kind="execution",
                        message=f"task {task.task_id} never finished",
                        task_id=task.task_id,
                    )
                )
                continue
            if (
                task.start_time is None
                or task.finish_time is None
                or task.machine_id is None
                or task.finish_time < task.start_time - TOLERANCE
            ):
                report.violations.append(
                    Violation(
                        kind="execution",
                        message=(
                            f"task {task.task_id} has inconsistent "
                            f"execution record"
                        ),
                        task_id=task.task_id,
                    )
                )


def _check_precedence(jobs: Sequence[Job], report: AuditReport) -> None:
    """Arrival times and stage barriers respected."""
    for job in jobs:
        for stage in job.dag:
            release = job.arrival_time
            if stage.parents:
                parent_finishes = [
                    t.finish_time
                    for p in stage.parents
                    for t in p.tasks
                    if t.finish_time is not None
                ]
                if parent_finishes:
                    release = max(release, max(parent_finishes))
            for task in stage.tasks:
                if task.start_time is None:
                    continue
                if task.start_time < release - TOLERANCE:
                    report.violations.append(
                        Violation(
                            kind="precedence",
                            message=(
                                f"task {task.task_id} of stage "
                                f"{stage.name!r} started at "
                                f"{task.start_time:.2f} before its "
                                f"release at {release:.2f}"
                            ),
                            task_id=task.task_id,
                        )
                    )


def _check_durations(jobs: Sequence[Job], report: AuditReport) -> None:
    """No task beats the eq. (5) peak-rate lower bound."""
    for job in jobs:
        for task in job.all_tasks():
            if task.duration is None:
                continue
            lower = task.nominal_duration()
            if task.duration < lower - max(TOLERANCE, 1e-3 * lower):
                report.violations.append(
                    Violation(
                        kind="duration",
                        message=(
                            f"task {task.task_id} ran in "
                            f"{task.duration:.3f}s, below its peak-rate "
                            f"bound {lower:.3f}s"
                        ),
                        task_id=task.task_id,
                    )
                )


def audit_schedule(
    jobs: Sequence[Job],
    placements: Sequence[Tuple[Task, int, float, ResourceVector]],
    capacities: Dict[int, ResourceVector],
    include_capacity: bool = True,
) -> AuditReport:
    """Audit a realized schedule against the Section 3.1 constraints.

    ``include_capacity=False`` skips the booked-capacity sweep (eq. 1):
    with the resource tracker enabled, the scheduler deliberately books
    reclaimed fluid head-room beyond peak sums (Section 4.1), so that
    check only expresses an invariant for tracker-less runs.
    """
    report = AuditReport()
    _check_execution(jobs, report)
    _check_precedence(jobs, report)
    _check_durations(jobs, report)
    if include_capacity:
        _check_capacity(placements, capacities, report)
    return report


def audit_engine(
    engine: "Engine", include_capacity: Optional[bool] = None
) -> AuditReport:
    """Audit a finished engine run.

    By default the booked-capacity check is included exactly when the
    run had no resource tracker (see :func:`audit_schedule`).
    """
    if include_capacity is None:
        include_capacity = engine.tracker is None
    capacities = {
        m.machine_id: m.capacity for m in engine.cluster.machines
    }
    return audit_schedule(
        engine.jobs,
        engine.placement_log,
        capacities,
        include_capacity=include_capacity,
    )
