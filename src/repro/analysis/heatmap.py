"""Demand heatmaps and diversity statistics (Figure 2, Section 2.2.2).

Figure 2 plots 2-D histograms of task demands (cores vs. memory, cores
vs. disk, ...) on normalized axes with logarithmic counts; the text
quantifies diversity with per-resource coefficients of variation.  Both
are reproduced here for any task population.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.correlation import AGGREGATES, demand_matrix
from repro.workload.task import Task

__all__ = ["demand_heatmap", "demand_cov"]


def demand_heatmap(
    tasks: Sequence[Task],
    x_resource: str = "cores",
    y_resource: str = "memory",
    bins: int = 20,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """2-D histogram of task demands on axes normalized to [0, 1].

    Returns ``(counts, x_edges, y_edges)``; counts are raw (take
    ``log10(counts + 1)`` for the paper's color scale).
    """
    names = [name for name, _ in AGGREGATES]
    if x_resource not in names or y_resource not in names:
        raise ValueError(f"resources must be among {names}")
    matrix = demand_matrix(tasks)
    x = matrix[:, names.index(x_resource)]
    y = matrix[:, names.index(y_resource)]
    x_max = x.max() if x.max() > 0 else 1.0
    y_max = y.max() if y.max() > 0 else 1.0
    counts, x_edges, y_edges = np.histogram2d(
        x / x_max, y / y_max, bins=bins, range=[[0, 1], [0, 1]]
    )
    return counts, x_edges, y_edges


def demand_cov(tasks: Sequence[Task]) -> Dict[str, float]:
    """Coefficient of variation of task demands per resource.

    The paper reports {CPU: 1.52, memory: 0.77, disk: 1.74,
    network: 1.35} for the production traces.
    """
    matrix = demand_matrix(tasks)
    out: Dict[str, float] = {}
    for k, (name, _) in enumerate(AGGREGATES):
        column = matrix[:, k]
        mean = column.mean()
        out[name] = float(column.std() / mean) if mean > 0 else 0.0
    return out
