"""Cross-resource demand correlation (Table 2).

The paper's Table 2 shows that tasks' demands for different resources
are barely correlated — the root of the complementarity that packing
exploits.  These helpers compute the same matrix for any set of tasks.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.workload.task import Task

__all__ = ["demand_matrix", "demand_correlation_matrix"]

#: Table 2's four resources, aggregated from the six-dimension model
AGGREGATES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("cores", ("cpu",)),
    ("memory", ("mem",)),
    ("disk", ("diskr", "diskw")),
    ("network", ("netin", "netout")),
)


def demand_matrix(tasks: Sequence[Task]) -> np.ndarray:
    """Rows = tasks, columns = (cores, memory, disk, network) demands."""
    rows = []
    for task in tasks:
        row = [
            sum(task.demands.get(dim) for dim in dims)
            for _, dims in AGGREGATES
        ]
        rows.append(row)
    return np.asarray(rows, dtype=float)


def demand_correlation_matrix(
    tasks: Sequence[Task],
) -> Dict[Tuple[str, str], float]:
    """Pairwise Pearson correlations between resource demands.

    Returns the upper triangle keyed by resource-name pairs, matching
    the layout of Table 2.
    """
    matrix = demand_matrix(tasks)
    if matrix.shape[0] < 2:
        raise ValueError("need at least two tasks")
    names = [name for name, _ in AGGREGATES]
    corr = np.corrcoef(matrix, rowvar=False)
    out: Dict[Tuple[str, str], float] = {}
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            value = corr[i, j]
            out[(names[i], names[j])] = (
                float(value) if np.isfinite(value) else 0.0
            )
    return out
