"""Workload analysis: the statistics of Section 2.2 (Figure 2, Tables 2-3)."""

from repro.analysis.correlation import demand_correlation_matrix, demand_matrix
from repro.analysis.tightness import (
    machine_usage_tightness,
    utilization_tightness,
)
from repro.analysis.heatmap import demand_heatmap, demand_cov
from repro.analysis.model import AuditReport, Violation, audit_engine, audit_schedule
from repro.analysis.wastage import (
    excess_holding,
    holding_report,
    resource_holding_integral,
)

__all__ = [
    "demand_matrix",
    "demand_correlation_matrix",
    "utilization_tightness",
    "machine_usage_tightness",
    "demand_heatmap",
    "demand_cov",
    "AuditReport",
    "Violation",
    "audit_engine",
    "audit_schedule",
    "excess_holding",
    "holding_report",
    "resource_holding_integral",
]
