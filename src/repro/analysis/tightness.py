"""Resource tightness: how often is a resource nearly saturated?

Table 3 reports, for the Facebook cluster, the probability that each
resource's usage exceeds 60/80/95% of capacity; Table 6 repeats the
measurement per scheduler on the testbed (with an over-100% column that
only over-allocating schedulers can hit).  Both reduce to the same
computation over a utilization timeline.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.metrics.collector import TimelinePoint

__all__ = ["utilization_tightness", "machine_usage_tightness"]


def utilization_tightness(
    timeline: Sequence[TimelinePoint],
    thresholds: Sequence[float] = (0.6, 0.8, 0.95),
    resources: Sequence[str] = (),
) -> Dict[str, Dict[float, float]]:
    """P(utilization > threshold) per resource over a cluster timeline.

    Uses the *demand* utilization (booked/attempted usage), which is the
    quantity that exceeds 1.0 under over-allocation.
    """
    if not timeline:
        raise ValueError("empty timeline")
    if not resources:
        resources = sorted(timeline[0].demand_utilization)
    out: Dict[str, Dict[float, float]] = {}
    for resource in resources:
        series = np.array(
            [p.demand_utilization.get(resource, 0.0) for p in timeline]
        )
        out[resource] = {
            float(th): float((series > th).mean()) for th in thresholds
        }
    return out


def machine_usage_tightness(
    samples: Mapping[str, np.ndarray],
    thresholds: Sequence[float] = (0.6, 0.8, 1.0),
) -> Dict[str, Dict[float, float]]:
    """P(a machine's usage of a resource exceeds a capacity fraction).

    ``samples`` maps a resource name to an array of per-machine,
    per-sample utilization fractions (any shape).  This is the Table 6
    view: machine-level rather than cluster-aggregate, so fragmentation
    and hotspots show up.
    """
    out: Dict[str, Dict[float, float]] = {}
    for resource, values in samples.items():
        arr = np.asarray(values, dtype=float).reshape(-1)
        if arr.size == 0:
            raise ValueError(f"no samples for resource {resource!r}")
        out[resource] = {
            float(th): float((arr > th).mean()) for th in thresholds
        }
    return out
