"""Resource vectors and resource models.

Everything in this reproduction is expressed in terms of a small set of
resource *dimensions*.  The paper (Tables 4 and 5) tracks six of them per
machine and per task:

- ``cpu``     -- cores
- ``mem``     -- GB of RAM
- ``diskr``   -- disk read bandwidth, MB/s
- ``diskw``   -- disk write bandwidth, MB/s
- ``netin``   -- network bandwidth into the machine, MB/s
- ``netout``  -- network bandwidth out of the machine, MB/s

A :class:`ResourceModel` names the dimensions and classifies each one as
*rigid* (CPU, memory: allocated exactly, never over-committed by a scheduler
that checks them) or *fluid* (disk and network bandwidth: actual consumption
is a rate, and contention squeezes everyone proportionally).

A :class:`ResourceVector` is a point in that space, backed by a small numpy
array.  Vectors are used for machine capacities, free resources, task peak
demands and utilization samples.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ResourceModel",
    "ResourceVector",
    "DEFAULT_MODEL",
    "FB_MACHINE_CAPACITY",
]

#: Comparison slack for capacity checks, in absolute units.  Fluid rates are
#: MB/s (order 1e2) and rigid units are cores/GB (order 1e1), so 1e-9 is far
#: below any meaningful quantity.
EPSILON = 1e-9


class ResourceModel:
    """Names and classifies the resource dimensions used by a simulation.

    Parameters
    ----------
    names:
        Ordered dimension names, e.g. ``("cpu", "mem", "diskr", ...)``.
    fluid:
        Names of the dimensions whose consumption is a *rate* subject to
        proportional-share contention (disk and network bandwidth).  The
        rest are rigid (CPU cores, memory).
    """

    __slots__ = ("names", "index", "fluid_mask", "rigid_mask", "_hash")

    def __init__(self, names: Sequence[str], fluid: Iterable[str] = ()):
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate resource names in {names!r}")
        self.names: Tuple[str, ...] = tuple(names)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        fluid = set(fluid)
        unknown = fluid - set(self.names)
        if unknown:
            raise ValueError(f"fluid dimensions {sorted(unknown)} not in model")
        self.fluid_mask = np.array([n in fluid for n in self.names], dtype=bool)
        self.rigid_mask = ~self.fluid_mask
        self._hash = hash(self.names + tuple(sorted(fluid)))

    @property
    def dims(self) -> int:
        return len(self.names)

    def fluid_names(self) -> Tuple[str, ...]:
        return tuple(n for n, f in zip(self.names, self.fluid_mask) if f)

    def rigid_names(self) -> Tuple[str, ...]:
        return tuple(n for n, f in zip(self.names, self.rigid_mask) if f)

    def zeros(self) -> "ResourceVector":
        return ResourceVector(self, np.zeros(self.dims))

    def mask(self, names: Optional[Iterable[str]] = None) -> np.ndarray:
        """Boolean dimension mask selecting ``names`` (None selects all).

        Used by the batched packing path to restrict fit checks and
        alignment scoring to a subset of dimensions without rebuilding
        :class:`ResourceVector` objects per candidate.
        """
        if names is None:
            return np.ones(self.dims, dtype=bool)
        out = np.zeros(self.dims, dtype=bool)
        for name in names:
            try:
                out[self.index[name]] = True
            except KeyError:
                raise KeyError(
                    f"unknown resource {name!r}; model has {self.names}"
                ) from None
        return out

    def vector(self, **values: float) -> "ResourceVector":
        """Build a vector from keyword values; unnamed dimensions are zero.

        >>> DEFAULT_MODEL.vector(cpu=2, mem=4).get("cpu")
        2.0
        """
        data = np.zeros(self.dims)
        for name, value in values.items():
            try:
                data[self.index[name]] = value
            except KeyError:
                raise KeyError(
                    f"unknown resource {name!r}; model has {self.names}"
                ) from None
        return ResourceVector(self, data)

    def from_mapping(self, mapping: Mapping[str, float]) -> "ResourceVector":
        return self.vector(**dict(mapping))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ResourceModel)
            and self.names == other.names
            and bool(np.array_equal(self.fluid_mask, other.fluid_mask))
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"ResourceModel({self.names!r}, fluid={self.fluid_names()!r})"


class ResourceVector:
    """A vector of resource quantities under a :class:`ResourceModel`.

    Arithmetic returns new vectors; the ``*_inplace`` variants mutate and are
    used on the simulator hot path.  All comparisons tolerate ``EPSILON`` of
    floating-point slack.
    """

    __slots__ = ("model", "data")

    def __init__(self, model: ResourceModel, data: np.ndarray):
        self.model = model
        self.data = np.asarray(data, dtype=float)
        if self.data.shape != (model.dims,):
            raise ValueError(
                f"expected {model.dims} dimensions, got shape {self.data.shape}"
            )

    # -- construction -----------------------------------------------------
    def copy(self) -> "ResourceVector":
        return ResourceVector(self.model, self.data.copy())

    @classmethod
    def zeros_like(cls, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(other.model, np.zeros(other.model.dims))

    # -- element access ---------------------------------------------------
    def get(self, name: str) -> float:
        return float(self.data[self.model.index[name]])

    def set(self, name: str, value: float) -> None:
        self.data[self.model.index[name]] = value

    def as_dict(self) -> Dict[str, float]:
        return {n: float(v) for n, v in zip(self.model.names, self.data)}

    def __iter__(self) -> Iterator[float]:
        return iter(self.data)

    # -- arithmetic -------------------------------------------------------
    def _check(self, other: "ResourceVector") -> None:
        if other.model is not self.model and other.model != self.model:
            raise ValueError("resource vectors from different models")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        self._check(other)
        return ResourceVector(self.model, self.data + other.data)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        self._check(other)
        return ResourceVector(self.model, self.data - other.data)

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(self.model, self.data * float(scalar))

    __rmul__ = __mul__

    def add_inplace(self, other: "ResourceVector") -> None:
        self._check(other)
        self.data += other.data

    def sub_inplace(self, other: "ResourceVector") -> None:
        self._check(other)
        self.data -= other.data

    def clamp_nonnegative(self) -> "ResourceVector":
        return ResourceVector(self.model, np.maximum(self.data, 0.0))

    def elementwise_min(self, other: "ResourceVector") -> "ResourceVector":
        self._check(other)
        return ResourceVector(self.model, np.minimum(self.data, other.data))

    def elementwise_max(self, other: "ResourceVector") -> "ResourceVector":
        self._check(other)
        return ResourceVector(self.model, np.maximum(self.data, other.data))

    # -- comparisons / predicates ------------------------------------------
    def fits_in(self, other: "ResourceVector") -> bool:
        """True if this vector is <= ``other`` in every dimension (with slack)."""
        self._check(other)
        return bool(np.all(self.data <= other.data + EPSILON))

    def is_zero(self) -> bool:
        return bool(np.all(np.abs(self.data) <= EPSILON))

    def is_nonnegative(self) -> bool:
        return bool(np.all(self.data >= -EPSILON))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ResourceVector)
            and self.model == other.model
            and bool(np.allclose(self.data, other.data, atol=EPSILON))
        )

    def __hash__(self) -> int:  # pragma: no cover - vectors are not dict keys
        return hash((self.model, self.data.tobytes()))

    # -- scoring helpers ----------------------------------------------------
    def dot(self, other: "ResourceVector") -> float:
        self._check(other)
        return float(np.dot(self.data, other.data))

    def normalized_by(self, capacity: "ResourceVector") -> "ResourceVector":
        """Divide by ``capacity`` per-dimension; zero-capacity dims map to 0.

        Normalizing both task demands and machine availability by the
        machine's capacity is how the paper makes the alignment score
        insensitive to units (Section 3.2).
        """
        self._check(capacity)
        out = np.zeros(self.model.dims)
        nz = capacity.data > EPSILON
        out[nz] = self.data[nz] / capacity.data[nz]
        return ResourceVector(self.model, out)

    def dominant_share(self, capacity: "ResourceVector") -> float:
        """Max over dimensions of self/capacity — DRF's dominant share."""
        return float(np.max(self.normalized_by(capacity).data, initial=0.0))

    def total(self) -> float:
        return float(self.data.sum())

    def norm(self) -> float:
        return float(np.linalg.norm(self.data))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{n}={v:g}" for n, v in zip(self.model.names, self.data) if v
        )
        return f"ResourceVector({inner or '0'})"


#: The paper's six-dimension model (Tables 4 and 5).  CPU is fluid because
#: cores time-share: over-committing CPU slows everyone proportionally
#: (with no extra penalty — see FluidConfig).  Memory is the only rigid
#: resource: a task's peak memory is held for its whole lifetime.
DEFAULT_MODEL = ResourceModel(
    names=("cpu", "mem", "diskr", "diskw", "netin", "netout"),
    fluid=("cpu", "diskr", "diskw", "netin", "netout"),
)

#: Machine profile used for the Facebook trace replay (Section 5.1):
#: 16 cores, 48 GB memory, 4 disks at 50 MB/s each, 1 Gbps NIC (125 MB/s).
FB_MACHINE_CAPACITY = DEFAULT_MODEL.vector(
    cpu=16, mem=48, diskr=200, diskw=200, netin=125, netout=125
)
