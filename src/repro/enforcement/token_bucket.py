"""Token buckets that enforce per-task I/O allocations (Section 4.2).

User code is arbitrary — a TCP flow will happily ramp to the whole NIC.
The prototype intercepts filesystem and network calls and routes each one
through a token bucket: the call proceeds if enough tokens remain and is
queued otherwise.  Tokens arrive at the allocated rate; the bucket size
bounds the burst.

This module is a faithful, standalone implementation of that mechanism;
the simulator uses it in tests and examples (the fluid model already caps
rates, so the engine does not route every simulated byte through here).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

__all__ = ["TokenBucket", "IoGate"]


class TokenBucket:
    """A classic token bucket.

    Parameters
    ----------
    rate:
        Token arrival rate (e.g. MB/s of allocated bandwidth).
    burst:
        Bucket capacity — the largest instantaneous burst allowed.
    initial:
        Starting token count (defaults to a full bucket).
    """

    def __init__(
        self, rate: float, burst: float, initial: Optional[float] = None
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive: {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst if initial is None else min(initial, burst)
        self.last_refill = 0.0

    def refill(self, now: float) -> None:
        """Accrue tokens up to ``now`` (monotonic simulation seconds)."""
        if now < self.last_refill:
            raise ValueError("time went backwards")
        self.tokens = min(
            self.burst, self.tokens + (now - self.last_refill) * self.rate
        )
        self.last_refill = now

    def try_consume(self, amount: float, now: float) -> bool:
        """Take ``amount`` tokens if available; returns success."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.refill(now)
        if self.tokens + 1e-12 >= amount:
            self.tokens -= amount
            return True
        return False

    def time_until_available(self, amount: float, now: float) -> float:
        """Seconds until ``amount`` tokens will exist (0 if already there)."""
        if amount > self.burst:
            raise ValueError(
                f"request {amount} exceeds burst capacity {self.burst}"
            )
        self.refill(now)
        deficit = amount - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    def set_rate(self, rate: float) -> None:
        """Re-target the bucket when the task's allocation changes."""
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.rate = rate


class IoGate:
    """Routes I/O calls through a token bucket, queueing what does not fit.

    Mirrors the prototype's interception layer: each read/write call asks
    the gate; granted calls proceed, others wait in FIFO order and drain
    as tokens accrue.
    """

    def __init__(self, bucket: TokenBucket):
        self.bucket = bucket
        self._queue: Deque[Tuple[float, object]] = deque()
        self.granted_bytes = 0.0
        self.queued_calls = 0

    def request(self, amount: float, now: float, token: object = None) -> bool:
        """Submit a call of ``amount`` bytes; True if it goes through now.

        Queued calls are *not* drained here — call :meth:`drain` to learn
        which earlier calls have been released (FIFO order is preserved:
        a new call never jumps a queued one).
        """
        if not self._queue and self.bucket.try_consume(amount, now):
            self.granted_bytes += amount
            return True
        self._queue.append((amount, token))
        self.queued_calls += 1
        return False

    def drain(self, now: float) -> List[object]:
        """Release queued calls that now fit; returns their tokens."""
        released: List[object] = []
        while self._queue:
            amount, token = self._queue[0]
            if not self.bucket.try_consume(amount, now):
                break
            self._queue.popleft()
            self.granted_bytes += amount
            released.append(token)
        return released

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def next_release_time(self, now: float) -> Optional[float]:
        """When the head-of-line call will fit, or None if queue is empty."""
        if not self._queue:
            return None
        amount, _ = self._queue[0]
        return now + self.bucket.time_until_available(amount, now)
