"""Allocation enforcement: token buckets on disk and network I/O."""

from repro.enforcement.token_bucket import IoGate, TokenBucket

__all__ = ["TokenBucket", "IoGate"]
