"""Fairness metrics: slowdown vs. a fair baseline and relative integral
unfairness (Section 5.3.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

__all__ = [
    "job_slowdowns",
    "slowdown_summary",
    "SlowdownSummary",
    "relative_integral_unfairness_summary",
    "jains_index",
]


def jains_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index of a set of allocations.

    (sum x)^2 / (n * sum x^2): 1.0 when everyone gets the same, 1/n when
    one party gets everything.  Used to summarize how evenly a scheduler
    divided the cluster (e.g., over per-job average shares).
    """
    arr = np.asarray(list(allocations), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one allocation")
    if np.any(arr < 0):
        raise ValueError("allocations must be non-negative")
    denom = arr.size * float(np.dot(arr, arr))
    if denom == 0:
        return 1.0  # everyone got the same (nothing)
    return float(arr.sum() ** 2 / denom)


def job_slowdowns(
    fair_jcts: Mapping[int, float], other_jcts: Mapping[int, float]
) -> Dict[int, float]:
    """Per-job fractional slowdown of ``other`` relative to ``fair``.

    Positive values mean the job took *longer* than under the fair
    scheduler; the paper reports the fraction of jobs with positive
    slowdown and its magnitude (Figure 9).
    Jobs present in only one run are ignored.
    """
    out: Dict[int, float] = {}
    for job_id, fair_jct in fair_jcts.items():
        if job_id not in other_jcts or fair_jct <= 0:
            continue
        out[job_id] = (other_jcts[job_id] - fair_jct) / fair_jct
    return out


@dataclass(frozen=True)
class SlowdownSummary:
    """Prevalence and magnitude of job slowdown vs. a fair baseline."""

    fraction_slowed: float
    mean_slowdown_of_slowed: float
    max_slowdown: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "fraction_slowed": self.fraction_slowed,
            "mean_slowdown_of_slowed": self.mean_slowdown_of_slowed,
            "max_slowdown": self.max_slowdown,
        }


def slowdown_summary(
    fair_jcts: Mapping[int, float],
    other_jcts: Mapping[int, float],
    threshold: float = 0.0,
) -> SlowdownSummary:
    """Summarize slowdowns; a job counts as slowed when its fractional
    slowdown exceeds ``threshold`` (0 = any slowdown)."""
    slowdowns = job_slowdowns(fair_jcts, other_jcts)
    if not slowdowns:
        return SlowdownSummary(0.0, 0.0, 0.0)
    values = np.array(list(slowdowns.values()))
    slowed = values[values > threshold]
    return SlowdownSummary(
        fraction_slowed=float(len(slowed) / len(values)),
        mean_slowdown_of_slowed=float(slowed.mean()) if len(slowed) else 0.0,
        max_slowdown=float(values.max()) if len(values) else 0.0,
    )


def relative_integral_unfairness_summary(
    unfairness_integral: Mapping[int, float],
    job_runtimes: Mapping[int, float],
) -> Dict[str, float]:
    """Summary of the paper's relative integral unfairness metric.

    For each job, RIU = (1/runtime) * integral over the job's lifetime of
    (a(t) - f(t)) / f(t) dt, where a is the allocation actually received
    and f the purported fair allocation.  Jobs below zero were treated
    worse than fair.  The paper reports: few jobs negative (~7%), small
    average magnitude (~5%).
    """
    rius: List[float] = []
    for job_id, integral in unfairness_integral.items():
        runtime = job_runtimes.get(job_id, 0.0)
        if runtime > 0:
            rius.append(integral / runtime)
    if not rius:
        return {
            "fraction_negative": 0.0,
            "mean_negative_magnitude": 0.0,
            "mean_riu": 0.0,
        }
    arr = np.array(rius)
    negative = arr[arr < 0]
    return {
        "fraction_negative": float(len(negative) / len(arr)),
        "mean_negative_magnitude": (
            float(-negative.mean()) if len(negative) else 0.0
        ),
        "mean_riu": float(arr.mean()),
    }
