"""Metrics collection during a simulation run.

Collects:

- per-job completion times (for average JCT and its distribution);
- makespan (finish time of the last job);
- timeline samples of running-task count, per-resource *demand*
  utilization (which exceeds 100% under over-allocation — Figure 5),
  and achieved throughput;
- per-job allocation integrals for the relative-integral-unfairness
  metric of Section 5.3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.sim.fluid import FlowTable
    from repro.workload.job import Job

__all__ = ["MetricsCollector", "TimelinePoint", "JobRecord"]


@dataclass(frozen=True)
class TimelinePoint:
    """One utilization sample."""

    time: float
    running_tasks: int
    demand_utilization: Dict[str, float]
    throughput_utilization: Dict[str, float]


@dataclass
class JobRecord:
    """Completion record of one job."""

    job_id: int
    name: str
    template: Optional[str]
    num_tasks: int
    arrival_time: float
    finish_time: float

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.arrival_time


class MetricsCollector:
    """Accumulates metrics for one simulation run."""

    def __init__(
        self,
        sample_period: float = 10.0,
        track_fairness: bool = False,
        track_machine_usage: bool = False,
    ):
        self.sample_period = sample_period
        self.track_fairness = track_fairness
        self.track_machine_usage = track_machine_usage
        #: resource -> list of per-machine utilization arrays, one per sample
        self.machine_samples: Dict[str, List[np.ndarray]] = {}
        self.jobs: Dict[int, JobRecord] = {}
        self.timeline: List[TimelinePoint] = []
        self._next_sample = 0.0
        #: per-job integral of (share - fair)/fair dt
        self.unfairness_integral: Dict[int, float] = {}
        #: per-job integral of share dt (average allocation)
        self.share_integral: Dict[int, float] = {}
        self.first_arrival: Optional[float] = None
        self.last_finish: float = 0.0
        self.task_durations: List[float] = []
        #: failed (retried) task attempts seen by the engine
        self.task_failures: int = 0

    # -- job lifecycle -----------------------------------------------------
    def job_arrived(self, job: "Job", time: float) -> None:
        if self.first_arrival is None or time < self.first_arrival:
            self.first_arrival = time

    def job_finished(self, job: "Job", time: float) -> None:
        self.jobs[job.job_id] = JobRecord(
            job_id=job.job_id,
            name=job.name,
            template=job.template,
            num_tasks=job.num_tasks,
            arrival_time=job.arrival_time,
            finish_time=time,
        )
        self.last_finish = max(self.last_finish, time)

    def task_finished(self, duration: float) -> None:
        self.task_durations.append(duration)

    def task_failed(self) -> None:
        self.task_failures += 1

    # -- sampling -----------------------------------------------------------
    def maybe_sample(
        self, time: float, cluster: "Cluster", flows: "FlowTable"
    ) -> None:
        if time + 1e-12 < self._next_sample:
            return
        self._next_sample = time + self.sample_period
        self.sample(time, cluster, flows)

    def sample(
        self, time: float, cluster: "Cluster", flows: "FlowTable"
    ) -> None:
        model = cluster.model
        total_cap = cluster.total_capacity()
        total_alloc = cluster.total_allocated()
        demand_util = {}
        for name in model.rigid_names():
            cap = total_cap.get(name)
            demand_util[name] = total_alloc.get(name) / cap if cap else 0.0
        fluid_names = flows.fluid_dim_names()
        demand = flows.slot_demand().sum(axis=0)
        throughput = flows.slot_throughput().sum(axis=0)
        throughput_util = dict(demand_util)
        for k, name in enumerate(fluid_names):
            cap = total_cap.get(name)
            demand_util[name] = demand[k] / cap if cap else 0.0
            throughput_util[name] = throughput[k] / cap if cap else 0.0
        self.timeline.append(
            TimelinePoint(
                time=time,
                running_tasks=cluster.total_running_tasks(),
                demand_utilization=demand_util,
                throughput_utilization=throughput_util,
            )
        )
        if self.track_machine_usage:
            self._sample_machines(cluster, flows)

    def _sample_machines(
        self, cluster: "Cluster", flows: "FlowTable"
    ) -> None:
        """Per-machine demand utilization, for Table 6-style statistics."""
        model = cluster.model
        per_machine_demand = flows.slot_demand()
        fluid_names = flows.fluid_dim_names()
        for name in model.rigid_names():
            values = np.array(
                [
                    m.allocated.get(name) / m.capacity.get(name)
                    if m.capacity.get(name) > 0
                    else 0.0
                    for m in cluster.machines
                ]
            )
            self.machine_samples.setdefault(name, []).append(values)
        for k, name in enumerate(fluid_names):
            caps = np.array(
                [m.capacity.get(name) for m in cluster.machines]
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                values = np.where(
                    caps > 0, per_machine_demand[:, k] / caps, 0.0
                )
            self.machine_samples.setdefault(name, []).append(values)

    def machine_usage_arrays(self) -> Dict[str, np.ndarray]:
        """Stacked per-machine utilization samples, one array per resource."""
        return {
            name: np.stack(samples)
            for name, samples in self.machine_samples.items()
        }

    # -- fairness integrals -------------------------------------------------
    def accumulate_fairness(
        self, dt: float, job_shares: Dict[int, float]
    ) -> None:
        """Advance the unfairness integrals by ``dt``.

        ``job_shares`` maps active job ids to their current dominant
        resource share; the purported fair share is an equal split among
        the currently active jobs.
        """
        if not self.track_fairness or dt <= 0 or not job_shares:
            return
        fair = 1.0 / len(job_shares)
        for job_id, share in job_shares.items():
            delta = (share - fair) / fair * dt
            self.unfairness_integral[job_id] = (
                self.unfairness_integral.get(job_id, 0.0) + delta
            )
            self.share_integral[job_id] = (
                self.share_integral.get(job_id, 0.0) + share * dt
            )

    # -- summary metrics ----------------------------------------------------
    def completion_times(self) -> Dict[int, float]:
        return {jid: rec.completion_time for jid, rec in self.jobs.items()}

    def mean_jct(self) -> float:
        if not self.jobs:
            return 0.0
        return float(
            np.mean([rec.completion_time for rec in self.jobs.values()])
        )

    def median_jct(self) -> float:
        if not self.jobs:
            return 0.0
        return float(
            np.median([rec.completion_time for rec in self.jobs.values()])
        )

    def makespan(self) -> float:
        if self.first_arrival is None:
            return 0.0
        return self.last_finish - self.first_arrival

    def mean_task_duration(self) -> float:
        if not self.task_durations:
            return 0.0
        return float(np.mean(self.task_durations))

    def running_tasks_series(self) -> List[tuple]:
        return [(p.time, p.running_tasks) for p in self.timeline]

    def utilization_series(self, resource: str) -> List[tuple]:
        return [
            (p.time, p.demand_utilization.get(resource, 0.0))
            for p in self.timeline
        ]

    def summary(self) -> Dict[str, float]:
        return {
            "jobs": float(len(self.jobs)),
            "mean_jct": self.mean_jct(),
            "median_jct": self.median_jct(),
            "makespan": self.makespan(),
            "mean_task_duration": self.mean_task_duration(),
        }

    # -- export -----------------------------------------------------------
    def write_timeline_csv(self, path) -> None:
        """Dump the utilization timeline as CSV (for external plotting)."""
        import csv

        if not self.timeline:
            raise ValueError("no timeline samples to write")
        resources = sorted(self.timeline[0].demand_utilization)
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(
                ["time", "running_tasks"]
                + [f"demand_{r}" for r in resources]
                + [f"throughput_{r}" for r in resources]
            )
            for point in self.timeline:
                writer.writerow(
                    [point.time, point.running_tasks]
                    + [point.demand_utilization.get(r, 0.0)
                       for r in resources]
                    + [point.throughput_utilization.get(r, 0.0)
                       for r in resources]
                )

    def write_jobs_csv(self, path) -> None:
        """Dump per-job completion records as CSV."""
        import csv

        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(
                ["job_id", "name", "template", "num_tasks",
                 "arrival_time", "finish_time", "completion_time"]
            )
            for rec in self.jobs.values():
                writer.writerow(
                    [rec.job_id, rec.name, rec.template or "",
                     rec.num_tasks, rec.arrival_time, rec.finish_time,
                     rec.completion_time]
                )
