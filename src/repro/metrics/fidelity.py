"""Packing-fidelity deltas between two runs of the same trace.

The federation (and any other approximation of the centralized
scheduler) trades a little placement quality for round throughput.
This module quantifies "a little": given a reference run and a
candidate run over the same trace, it reports the deltas of the three
packing outcomes the paper argues about —

- **makespan** (Section 5.1's primary win),
- **mean job completion time**,
- **fragmentation**: how much of the cluster sat unused at the average
  sampled instant, measured on the bottleneck dimension (``1 - mean
  over timeline samples of max-dimension demand utilization``).  Worse
  packing strands capacity across machines, which shows up here even
  when makespan barely moves.

Deltas are signed percentages (percentage *points* for fragmentation,
which is already a ratio); positive means the candidate is worse.  The
report knows how to gate itself (:meth:`FidelityReport.within`), which
is what ``repro compare --fidelity`` and the federation CI smoke job
print and enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import RunResult
    from repro.metrics.collector import MetricsCollector

__all__ = ["FidelityReport", "packing_fidelity", "timeline_fragmentation"]


def _delta_pct(reference: float, candidate: float) -> float:
    """Signed relative delta in percent; 0/0 compares equal."""
    if reference == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return (candidate - reference) / reference * 100.0


def timeline_fragmentation(collector: "MetricsCollector") -> float:
    """Mean unused fraction of the bottleneck dimension, in [0, 1].

    Each timeline sample contributes ``1 - max_d util_d`` — the slack
    left on the most-loaded resource dimension.  Averaging over the
    run's samples gives a scalar "how much capacity the packing
    stranded" number; tighter packings score lower.
    """
    points = collector.timeline
    if not points:
        return 0.0
    total = 0.0
    for point in points:
        utils = point.demand_utilization.values()
        peak = max(utils) if utils else 0.0
        total += 1.0 - min(peak, 1.0)
    return total / len(points)


@dataclass(frozen=True)
class FidelityReport:
    """Three packing outcomes, reference vs candidate, with deltas."""

    makespan_ref: float
    makespan_cand: float
    mean_jct_ref: float
    mean_jct_cand: float
    fragmentation_ref: float
    fragmentation_cand: float

    @property
    def makespan_delta_pct(self) -> float:
        return _delta_pct(self.makespan_ref, self.makespan_cand)

    @property
    def mean_jct_delta_pct(self) -> float:
        return _delta_pct(self.mean_jct_ref, self.mean_jct_cand)

    @property
    def fragmentation_delta_points(self) -> float:
        """Percentage-point delta of the (already relative) fragmentation."""
        return (self.fragmentation_cand - self.fragmentation_ref) * 100.0

    def within(self, tolerance_pct: float = 5.0) -> bool:
        """True when makespan and mean JCT are no more than
        ``tolerance_pct`` percent worse than the reference (better is
        always fine; fragmentation is reported but not gated — it is a
        diagnosis, not an outcome)."""
        return (
            self.makespan_delta_pct <= tolerance_pct
            and self.mean_jct_delta_pct <= tolerance_pct
        )

    def rows(self) -> List[Dict[str, float]]:
        """Table-friendly rows, one per metric."""
        return [
            {
                "metric": "makespan",
                "reference": self.makespan_ref,
                "candidate": self.makespan_cand,
                "delta_pct": self.makespan_delta_pct,
            },
            {
                "metric": "mean_jct",
                "reference": self.mean_jct_ref,
                "candidate": self.mean_jct_cand,
                "delta_pct": self.mean_jct_delta_pct,
            },
            {
                "metric": "fragmentation",
                "reference": self.fragmentation_ref,
                "candidate": self.fragmentation_cand,
                "delta_pct": self.fragmentation_delta_points,
            },
        ]

    def as_dict(self) -> Dict[str, float]:
        return {
            "makespan_ref": self.makespan_ref,
            "makespan_cand": self.makespan_cand,
            "makespan_delta_pct": self.makespan_delta_pct,
            "mean_jct_ref": self.mean_jct_ref,
            "mean_jct_cand": self.mean_jct_cand,
            "mean_jct_delta_pct": self.mean_jct_delta_pct,
            "fragmentation_ref": self.fragmentation_ref,
            "fragmentation_cand": self.fragmentation_cand,
            "fragmentation_delta_points": self.fragmentation_delta_points,
        }


def packing_fidelity(
    reference: "RunResult", candidate: "RunResult"
) -> FidelityReport:
    """Compare two runs of the *same trace* (reference first)."""
    return FidelityReport(
        makespan_ref=reference.makespan,
        makespan_cand=candidate.makespan,
        mean_jct_ref=reference.mean_jct,
        mean_jct_cand=candidate.mean_jct,
        fragmentation_ref=timeline_fragmentation(reference.collector),
        fragmentation_cand=timeline_fragmentation(candidate.collector),
    )
