"""Comparison helpers: percentage improvements and CDFs, as the paper
reports them (Section 5.1, Metrics)."""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["improvement_percent", "improvement_distribution", "cdf_points"]


def improvement_percent(baseline: float, treatment: float) -> float:
    """The paper's reduction metric: 100 * (baseline - treatment)/baseline.

    20% improvement means the treatment is 1.25x better.
    """
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - treatment) / baseline


def improvement_distribution(
    baseline_jcts: Mapping[int, float], treatment_jcts: Mapping[int, float]
) -> List[float]:
    """Per-job percentage improvement, for CDF plots (Figures 4a, 7)."""
    out = []
    for job_id, base in baseline_jcts.items():
        if job_id in treatment_jcts and base > 0:
            out.append(improvement_percent(base, treatment_jcts[job_id]))
    return out


def cdf_points(
    values: Sequence[float], num_points: int = 101
) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs sampled at even percentiles."""
    if not values:
        return []
    arr = np.sort(np.asarray(values, dtype=float))
    fractions = np.linspace(0.0, 1.0, num_points)
    idx = np.minimum((fractions * (len(arr) - 1)).round().astype(int), len(arr) - 1)
    return [(float(arr[i]), float(f)) for i, f in zip(idx, fractions)]
