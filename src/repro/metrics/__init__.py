"""Metrics: completion times, makespan, utilization timelines, fairness.

The Prometheus-style instrumentation registry lives in
:mod:`repro.obs.registry`; it is re-exported here so callers that think
of it as "the metrics" find it in the natural place.
"""

from repro.metrics.collector import MetricsCollector, TimelinePoint
from repro.obs.registry import Counter, Gauge, Histogram, Registry
from repro.metrics.fairness import (
    job_slowdowns,
    relative_integral_unfairness_summary,
    slowdown_summary,
)
from repro.metrics.comparison import (
    improvement_percent,
    improvement_distribution,
    cdf_points,
)
from repro.metrics.fidelity import (
    FidelityReport,
    packing_fidelity,
    timeline_fragmentation,
)

__all__ = [
    "FidelityReport",
    "packing_fidelity",
    "timeline_fragmentation",
    "MetricsCollector",
    "TimelinePoint",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "job_slowdowns",
    "relative_integral_unfairness_summary",
    "slowdown_summary",
    "improvement_percent",
    "improvement_distribution",
    "cdf_points",
]
