"""Metrics: completion times, makespan, utilization timelines, fairness."""

from repro.metrics.collector import MetricsCollector, TimelinePoint
from repro.metrics.fairness import (
    job_slowdowns,
    relative_integral_unfairness_summary,
    slowdown_summary,
)
from repro.metrics.comparison import (
    improvement_percent,
    improvement_distribution,
    cdf_points,
)

__all__ = [
    "MetricsCollector",
    "TimelinePoint",
    "job_slowdowns",
    "relative_integral_unfairness_summary",
    "slowdown_summary",
    "improvement_percent",
    "improvement_distribution",
    "cdf_points",
]
