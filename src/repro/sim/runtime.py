"""Task runtime model: translate a placed task into fluid flows (eq. 5).

The terms of equation (5) of the paper map one-to-one onto flows:

==============================  ============================================
term                            flow
==============================  ============================================
f_cpu / cpu rate                fixed-rate ``cpu`` flow (cores are rigid)
f_diskW / diskW rate            ``write`` flow through (machine, diskw)
f_diskR local / diskR rate      ``local read`` flow through (machine, diskr)
remote reads                    per-source flows through (src, diskr),
                                (src, netout) and (dst, netin)
==============================  ============================================

The task completes when all of its flows complete, i.e. its duration is the
max over the terms — exactly eq. (5), with the achieved rates determined by
contention in the :class:`~repro.sim.fluid.FlowTable`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.cluster.topology import Topology
from repro.resources import ResourceVector
from repro.sim.fluid import FlowSpec
from repro.workload.task import NEGLIGIBLE_WORK, Task

__all__ = ["build_flows", "choose_read_source"]

#: fall-back transfer rate (MB/s) when a task with remote input has no
#: declared network demand — a mis-estimated placement still makes progress
FALLBACK_RATE_MBPS = 1.0


def choose_read_source(
    topology: Topology, machine_id: int, locations: Tuple[int, ...]
) -> int:
    """Pick which replica a remote read streams from.

    Prefers a replica in the reader's rack (cheaper in real CLOS fabrics),
    falling back to the first replica.
    """
    if not locations:
        raise ValueError("input has no locations")
    for loc in locations:
        if topology.same_rack(machine_id, loc):
            return loc
    return locations[0]


def build_flows(
    task: Task,
    machine_id: int,
    topology: Topology,
    demands: Optional[ResourceVector] = None,
) -> List[FlowSpec]:
    """Flows created by running ``task`` on ``machine_id``.

    ``demands`` are the task's *actual* peak rates (defaults to the task's
    own demand vector); the booked estimate is the scheduler's business and
    does not change physics.
    """
    if demands is None:
        demands = task.demands
    tag = ("task", task.task_id)
    specs: List[FlowSpec] = []

    cpu_rate = demands.get("cpu")
    if task.work.cpu_core_seconds > NEGLIGIBLE_WORK:
        rate = cpu_rate if cpu_rate > 0 else FALLBACK_RATE_MBPS
        specs.append(
            FlowSpec(
                work=task.work.cpu_core_seconds,
                nominal_rate=rate,
                slots=((machine_id, "cpu"),),
                tag=tag,
            )
        )

    local_mb = 0.0
    remote_by_source: Dict[int, float] = defaultdict(float)
    for inp in task.inputs:
        if inp.size_mb <= NEGLIGIBLE_WORK:
            continue
        if inp.is_local_to(machine_id):
            local_mb += inp.size_mb
        else:
            source = choose_read_source(topology, machine_id, inp.locations)
            remote_by_source[source] += inp.size_mb

    if local_mb > NEGLIGIBLE_WORK:
        # a task that expected to stream this data over the network reads
        # it at least that fast from the local disk
        rate = max(
            demands.get("diskr"), demands.get("netin"), FALLBACK_RATE_MBPS
        )
        specs.append(
            FlowSpec(
                work=local_mb,
                nominal_rate=rate,
                slots=((machine_id, "diskr"),),
                tag=tag,
            )
        )

    if remote_by_source:
        netin = demands.get("netin")
        total_remote = sum(remote_by_source.values())
        aggregate_rate = netin if netin > 0 else FALLBACK_RATE_MBPS
        for source, size_mb in sorted(remote_by_source.items()):
            rate = aggregate_rate * (size_mb / total_remote)
            specs.append(
                FlowSpec(
                    work=size_mb,
                    nominal_rate=max(rate, 1e-6),
                    slots=(
                        (source, "diskr"),
                        (source, "netout"),
                        (machine_id, "netin"),
                    ),
                    tag=tag,
                )
            )

    if task.work.write_mb > NEGLIGIBLE_WORK:
        diskw = demands.get("diskw")
        rate = diskw if diskw > 0 else FALLBACK_RATE_MBPS
        specs.append(
            FlowSpec(
                work=task.work.write_mb,
                nominal_rate=rate,
                slots=((machine_id, "diskw"),),
                tag=tag,
            )
        )

    return specs
