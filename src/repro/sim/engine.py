"""The discrete-event engine.

Each iteration advances the fluid flows to the next interesting instant
(the earlier of the next queued event and the next flow completion),
processes completions and events, then lets the scheduler place tasks on
the machines whose state changed.

The engine keeps the *scheduler's* view (booked estimates on machines)
strictly separate from *physics* (flows built from true task demands), so
mis-estimation and over-allocation behave as they would on a real cluster.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import (
    Dict,
    Iterable,
    List,
    MutableSequence,
    Optional,
    Sequence,
    Set,
    TYPE_CHECKING,
)

import numpy as np

from repro.cluster.cluster import Cluster
from repro.estimation.estimator import DemandEstimator
from repro.estimation.tracker import ResourceTracker
from repro.metrics.collector import MetricsCollector
from repro.schedulers.base import Placement, Scheduler
from repro.sim.events import ArrayEventQueue, EventKind
from repro.sim.fluid import FluidConfig, FlowTable
from repro.sim.runtime import build_flows
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.table import TaskTable
from repro.workload.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.activity.ingestion import ClusterActivity
    from repro.obs.registry import Registry
    from repro.obs.trace import DecisionTrace
    from repro.profiling import Profiler

__all__ = ["Engine", "EngineConfig"]


class _DisabledLog:
    """Placeholder for a log disabled with a zero cap.

    Reads behave like an empty log; ``append`` raises, which is the
    regression guard for the zero-allocation round loop — the engine
    must gate entry *construction* behind the cap, never build a tuple
    just to discard it here.
    """

    __slots__ = ()
    maxlen = 0

    def append(self, entry: tuple) -> None:
        raise RuntimeError(
            "log is disabled (cap=0); the engine must not build entries"
        )

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0


_DISABLED_LOG = _DisabledLog()


def _make_log(cap: Optional[int]) -> MutableSequence[tuple]:
    """An append-only log, bounded to the most recent ``cap`` entries
    when a cap is configured (cap 0 disables the log entirely)."""
    if cap is None:
        return []
    if cap == 0:
        return _DISABLED_LOG
    return deque(maxlen=cap)


@dataclass(frozen=True)
class EngineConfig:
    """Engine parameters.

    ``min_task_duration`` is the wall-time charged to tasks with no
    modeled work (bookkeeping-only tasks).  ``max_time`` guards against
    runaway simulations.  ``shuffle_fanin`` caps how many distinct source
    machines one task's shuffle read is coalesced into.
    """

    min_task_duration: float = 0.05
    max_time: float = 50_000_000.0
    sample_period: float = 10.0
    tracker_period: float = 2.0
    track_fairness: bool = False
    track_machine_usage: bool = False
    #: opt-in growth caps for the per-round and per-placement logs; when
    #: set, only the most recent entries are kept (a bounded deque) so
    #: long large-cluster runs don't accumulate unbounded tuples.  None
    #: (the default) keeps everything, which the analysis/report layers
    #: expect for complete runs.
    max_round_log: Optional[int] = None
    max_placement_log: Optional[int] = None
    #: failure injection: probability that a completed attempt is
    #: discarded and the task re-queued (the paper's trace replay mimics
    #: per-task failure probabilities); capped at max_task_attempts
    task_failure_prob: float = 0.0
    max_task_attempts: int = 4
    seed: int = 0


class Engine:
    """Runs one simulation: (cluster, scheduler, jobs [, activities])."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        jobs: Sequence[Job],
        activities: Iterable["ClusterActivity"] = (),
        estimator: Optional[DemandEstimator] = None,
        tracker: Optional[ResourceTracker] = None,
        fluid_config: Optional[FluidConfig] = None,
        config: Optional[EngineConfig] = None,
        collector: Optional[MetricsCollector] = None,
        profiler: Optional["Profiler"] = None,
        decision_trace: Optional["DecisionTrace"] = None,
        metrics: Optional["Registry"] = None,
    ):
        self.cluster = cluster
        self.scheduler = scheduler
        self.jobs = list(jobs)
        self.activities = list(activities)
        self.config = config if config is not None else EngineConfig()
        self.tracker = tracker
        self.collector = (
            collector
            if collector is not None
            else MetricsCollector(
                sample_period=self.config.sample_period,
                track_fairness=self.config.track_fairness,
                track_machine_usage=self.config.track_machine_usage,
            )
        )
        self.flows = FlowTable(
            cluster.model,
            [m.capacity.data for m in cluster.machines],
            fluid_config,
        )
        self.events = ArrayEventQueue()
        self.now = 0.0
        self.rng = np.random.default_rng(self.config.seed)
        #: structure-of-arrays task plane: live tasks occupy stable
        #: slots; state transitions write through from the Task objects
        self.task_table = TaskTable(cluster.model)
        self._task_by_id: Dict[int, Task] = {}
        self._outstanding_flows: Dict[int, int] = {}
        self._activity_by_id: Dict[int, "ClusterActivity"] = {}
        self._activity_flows: Dict[int, int] = {}
        self._unfinished_jobs = len(self.jobs)
        self._dirty: Set[int] = set()
        #: re-entrant stepping state: ``start()`` primes events exactly
        #: once; ``_accepting_jobs`` keeps the engine (and the tracker
        #: report chain) alive while a streaming caller may still inject
        #: jobs via :meth:`add_job`
        self._started = False
        self._accepting_jobs = False
        #: every placement as (task, machine_id, time, booked) — input to
        #: the Section 3.1 constraint auditor (repro.analysis.model).
        #: A plain list unless the config caps it (then a bounded deque
        #: holding the most recent entries).
        self.placement_log: MutableSequence[tuple] = _make_log(
            self.config.max_placement_log
        )
        self._log_placements = self.config.max_placement_log != 0
        self._log_rounds = self.config.max_round_log != 0
        #: total placements applied, independent of any log cap
        self.num_placements = 0
        #: every scheduling round as (time, machines visited, placements,
        #: wall seconds) — the scheduler track of the Perfetto export
        self.round_log: MutableSequence[tuple] = _make_log(
            self.config.max_round_log
        )
        #: optional timing sink; also handed to the scheduler so it can
        #: record its own phases under the same object
        self.profiler = profiler
        if profiler is not None and hasattr(scheduler, "profiler"):
            scheduler.profiler = profiler
        #: optional decision-event sink and metrics registry, shared with
        #: the scheduler / tracker / estimator (same Optional[...] pattern
        #: as the profiler: None costs nothing)
        self.trace = decision_trace
        self.metrics = metrics
        self._m_rounds = self._m_placements = self._m_tasks_finished = None
        self._m_task_failures = self._m_jobs_finished = None
        self._m_queue_depth = self._m_sim_time = self._m_round_placements = None
        if metrics is not None:
            self._register_metrics(metrics)
        scheduler.use_observability(trace=decision_trace, metrics=metrics)
        scheduler.bind(cluster, estimator=estimator, tracker=tracker)
        self.estimator = scheduler.estimator
        if metrics is not None:
            if tracker is not None:
                tracker.use_metrics(metrics)
            self.estimator.use_metrics(metrics)
            self.flows.use_metrics(metrics)

    def _register_metrics(self, registry: "Registry") -> None:
        self._m_rounds = registry.counter(
            "repro_engine_rounds_total", "Scheduling rounds run"
        )
        self._m_placements = registry.counter(
            "repro_engine_placements_total", "Task placements applied"
        )
        self._m_tasks_finished = registry.counter(
            "repro_engine_tasks_finished_total", "Task completions"
        )
        self._m_task_failures = registry.counter(
            "repro_engine_task_failures_total",
            "Failed (retried) task attempts",
        )
        self._m_jobs_finished = registry.counter(
            "repro_engine_jobs_finished_total", "Job completions"
        )
        self._m_queue_depth = registry.gauge(
            "repro_engine_event_queue_depth", "Pending simulator events"
        )
        self._m_sim_time = registry.gauge(
            "repro_engine_sim_time_seconds", "Current simulation time"
        )
        self._m_round_placements = registry.histogram(
            "repro_engine_round_placements",
            "Placements made per scheduling round",
            buckets=(0, 1, 2, 5, 10, 20, 50, 100),
        )

    # -- public API -------------------------------------------------------------
    def run(self) -> MetricsCollector:
        """Run to completion; returns the metrics collector."""
        self.start()
        while not self._finished():
            t_next = self.next_instant()
            if t_next == float("inf"):
                self._raise_stuck()
            self._step_to(t_next)
        return self.finalize()

    # -- re-entrant stepping ----------------------------------------------------
    #
    # ``run()`` above is one-shot; a streaming caller (repro.serve) drives
    # the same loop body incrementally: ``start()`` once, ``add_job()`` as
    # arrivals are committed, ``run_until()`` to advance simulated time up
    # to an event-time watermark, and ``finalize()`` when the stream ends.

    def start(self) -> None:
        """Prime the event queue; idempotent (``run`` calls it too)."""
        if not self._started:
            self._started = True
            self._prime_events()

    def next_instant(self) -> float:
        """The next interesting time: earliest queued event or flow
        completion (+inf when neither is pending)."""
        return min(
            self.events.peek_time(),
            self.now + self.flows.time_to_next_completion(),
        )

    def open_stream(self) -> None:
        """Declare that more jobs may arrive via :meth:`add_job`.

        While open, the engine never reports :meth:`_finished` and the
        tracker report chain stays alive through idle periods — exactly
        as a batch run behaves while primed arrivals are still queued.
        """
        self._accepting_jobs = True

    def close_stream(self) -> None:
        """No further :meth:`add_job` calls will come."""
        self._accepting_jobs = False

    def add_job(self, job: Job) -> None:
        """Commit a job that arrived after construction (streaming mode).

        The job's arrival event is queued at ``job.arrival_time``, which
        must not lie in the simulated past — injecting behind the clock
        would rewrite history the scheduler has already acted on.
        """
        if job.arrival_time < self.now:
            raise ValueError(
                f"event-time violation: job {job.name!r} arrives at "
                f"{job.arrival_time} but the clock is already at {self.now}"
            )
        self.jobs.append(job)
        for t in job.all_tasks():
            self._task_by_id[t.task_id] = t
            self.task_table.register(t)
        self._unfinished_jobs += 1
        self.events.push(job.arrival_time, EventKind.JOB_ARRIVAL, job)

    def run_until(
        self,
        limit: float,
        inclusive: bool = True,
        max_steps: Optional[int] = None,
    ) -> int:
        """Advance through every instant up to ``limit``; returns the
        number of steps taken.

        With ``inclusive=False`` the engine stops strictly *below*
        ``limit`` — the streaming watermark discipline: a server that has
        seen arrivals only up to time T must not process the instant T
        itself, because a not-yet-committed arrival could still tie with
        it.  ``max_steps`` bounds one call so an async driver can yield
        control between slices.
        """
        self.start()
        steps = 0
        while not self._finished():
            t_next = self.next_instant()
            if t_next == float("inf"):
                if self._accepting_jobs:
                    break  # idle: waiting for the stream
                self._raise_stuck()
            past_limit = t_next > limit if inclusive else t_next >= limit
            if past_limit:
                break
            self._step_to(t_next)
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return steps

    def finalize(self) -> MetricsCollector:
        """Take the closing sample; returns the metrics collector."""
        self.collector.sample(self.now, self.cluster, self.flows)
        return self.collector

    def _step_to(self, t_next: float) -> None:
        """One iteration of the simulation loop, advancing to ``t_next``."""
        if t_next > self.config.max_time:
            raise RuntimeError(
                f"simulation exceeded max_time={self.config.max_time}"
            )
        dt = max(t_next - self.now, 0.0)
        self._accumulate_fairness(dt)
        completed = self.flows.advance(dt)
        self.now = t_next
        self._handle_completed_flows(completed)
        self._handle_events()
        self._run_scheduler()
        self.collector.maybe_sample(self.now, self.cluster, self.flows)

    # -- setup ------------------------------------------------------------------
    def _prime_events(self) -> None:
        for job in self.jobs:
            for t in job.all_tasks():
                self._task_by_id[t.task_id] = t
                self.task_table.register(t)
            self.events.push(job.arrival_time, EventKind.JOB_ARRIVAL, job)
        for activity in self.activities:
            self.events.push(
                activity.start_time, EventKind.ACTIVITY_START, activity
            )
        if self.tracker is not None and self.config.tracker_period > 0:
            self.events.push(
                self.config.tracker_period, EventKind.TRACKER_REPORT, None
            )

    def _finished(self) -> bool:
        return (
            not self._accepting_jobs
            and self._unfinished_jobs == 0
            and self.flows.num_active == 0
            and not self.events.has_pending(
                EventKind.JOB_ARRIVAL, EventKind.ACTIVITY_START
            )
        )

    def _raise_stuck(self) -> None:
        stuck = [
            t
            for t in self._task_by_id.values()
            if t.state is TaskState.RUNNABLE
        ]
        raise RuntimeError(
            f"simulation stuck at t={self.now}: {self._unfinished_jobs} "
            f"unfinished jobs, {len(stuck)} runnable tasks cannot be placed "
            f"(first few: {stuck[:3]})"
        )

    # -- event handling ------------------------------------------------------
    def _handle_events(self) -> None:
        for event in self.events.pop_until(self.now):
            if event.kind is EventKind.JOB_ARRIVAL:
                self._arrive_job(event.payload)
            elif event.kind is EventKind.TASK_FIXED_COMPLETE:
                self._finish_task(event.payload)
            elif event.kind is EventKind.TRACKER_REPORT:
                self._tracker_tick()
            elif event.kind is EventKind.ACTIVITY_START:
                self._start_activity(event.payload)

    def _arrive_job(self, job: Job) -> None:
        job.arrive()
        self.collector.job_arrived(job, self.now)
        # lift barriers behind empty stages; a job with no tasks at all
        # completes at arrival
        job.note_task_finished()
        if job.is_finished:
            job.mark_finished(self.now)
            self.collector.job_finished(job, self.now)
            self._unfinished_jobs -= 1
            if self._m_jobs_finished is not None:
                self._m_jobs_finished.inc()
            return
        self.scheduler.on_job_arrival(job, self.now)
        self._mark_all_dirty()

    def _tracker_tick(self) -> None:
        self.tracker.report(self.now, self.flows)
        # the availability view just moved under every machine: both the
        # engine's dirty set and the scheduler's own mirror must reflect it
        self._mark_all_dirty()
        self.scheduler.mark_all_machines_dirty()
        if self._accepting_jobs or not (
            self._unfinished_jobs == 0 and self.flows.num_active == 0
        ):
            self.events.push(
                self.now + self.config.tracker_period,
                EventKind.TRACKER_REPORT,
                None,
            )

    def _start_activity(self, activity: "ClusterActivity") -> None:
        specs = activity.flow_specs()
        self._activity_flows[activity.activity_id] = len(specs)
        self._activity_by_id[activity.activity_id] = activity
        for spec in specs:
            self.flows.add_flow(spec)

    def _mark_all_dirty(self) -> None:
        self._dirty.update(range(self.cluster.num_machines))

    # -- flow completions ----------------------------------------------------
    def _handle_completed_flows(self, completed: List[int]) -> None:
        finished_tasks: List[Task] = []
        for tag in self.flows.completed_tags(completed):
            kind, ident = tag
            if kind == "task":
                self._outstanding_flows[ident] -= 1
                if self._outstanding_flows[ident] == 0:
                    finished_tasks.append(self._task_by_id[ident])
            elif kind == "activity":
                self._activity_flows[ident] -= 1
                if self._activity_flows[ident] == 0:
                    self._activity_by_id[ident].finish_time = self.now
        for task in finished_tasks:
            self._finish_task(task)

    def _finish_task(self, task: Task) -> None:
        machine = self.cluster.machine(task.machine_id)
        machine.remove(task)
        self._outstanding_flows.pop(task.task_id, None)
        if (
            self.config.task_failure_prob > 0
            and task.attempts + 1 < self.config.max_task_attempts
            and self.rng.uniform() < self.config.task_failure_prob
        ):
            # the attempt is lost; release bookkeeping and requeue
            if self.tracker is not None:
                self.tracker.note_completion(task)
            self.scheduler.on_task_failed(task, self.now)
            task.mark_failed(self.now)
            self.collector.task_failed()
            if self._m_task_failures is not None:
                self._m_task_failures.inc()
            self._dirty.add(machine.machine_id)
            return
        task.mark_finished(self.now)
        self.task_table.release(task)
        self.collector.task_finished(task.duration)
        if self._m_tasks_finished is not None:
            self._m_tasks_finished.inc()
        self.estimator.record_completion(task)
        if self.tracker is not None:
            self.tracker.note_completion(task)
        job = task.job
        released = job.note_task_finished()
        self.scheduler.on_task_finished(task, self.now)
        self._dirty.add(machine.machine_id)
        if released:
            for stage in released:
                self._resolve_shuffle_inputs(stage)
                self.scheduler.on_stage_released(stage, self.now)
            self._mark_all_dirty()
        if job.is_finished and job.finish_time is None:
            job.mark_finished(self.now)
            self.collector.job_finished(job, self.now)
            self._unfinished_jobs -= 1
            if self._m_jobs_finished is not None:
                self._m_jobs_finished.inc()

    def _resolve_shuffle_inputs(self, stage: Stage) -> None:
        """Assign source machines to inputs produced by upstream stages.

        A task input created with empty ``locations`` stands for shuffle
        data; once the barrier lifts we pin each to the machine where some
        parent task actually ran (weighted by parent output size would be
        more faithful; uniform over parents preserves the spread).
        """
        parent_machines = [
            t.machine_id
            for parent in stage.parents
            for t in parent.tasks
            if t.machine_id is not None
        ]
        if not parent_machines:
            parent_machines = [0]
        from repro.workload.task import TaskInput

        for task in stage.tasks:
            if not any(not inp.locations for inp in task.inputs):
                continue
            resolved = []
            for inp in task.inputs:
                if inp.locations:
                    resolved.append(inp)
                else:
                    source = int(
                        parent_machines[
                            int(self.rng.integers(len(parent_machines)))
                        ]
                    )
                    resolved.append(TaskInput(inp.size_mb, (source,)))
            task.inputs = resolved

    # -- scheduling ---------------------------------------------------------
    def _run_scheduler(self) -> None:
        if not self._dirty:
            return
        machine_ids = sorted(self._dirty)
        self._dirty.clear()
        start = perf_counter()
        if self.profiler is not None:
            with self.profiler.time("engine.scheduler_round"):
                placements = self.scheduler.schedule(self.now, machine_ids)
        else:
            placements = self.scheduler.schedule(self.now, machine_ids)
        wall = perf_counter() - start
        if self._log_rounds:
            self.round_log.append(
                (self.now, len(machine_ids), len(placements), wall)
            )
        if self.trace is not None:
            self.trace.emit(
                "round",
                time=self.now,
                machines=len(machine_ids),
                placements=len(placements),
                queue_depth=len(self.events),
            )
        if self._m_rounds is not None:
            self._m_rounds.inc()
            self._m_round_placements.observe(len(placements))
            self._m_queue_depth.set(len(self.events))
            self._m_sim_time.set(self.now)
        self._commit_placements(placements)

    def _commit_placements(self, placements: List[Placement]) -> None:
        """Apply a round's (already-sequenced) placements to the cluster.

        The round loop's commit phase: ``schedule()`` proposes, this
        applies.  Under the federation, the placements arriving here
        have already survived the sequencer's conflict validation; for
        a centralized scheduler the propose/commit split is the same —
        schedulers never mutate machines inside ``schedule()``.
        """
        for placement in placements:
            self._start_task(placement)

    def _start_task(self, placement: Placement) -> None:
        task = placement.task
        machine = self.cluster.machine(placement.machine_id)
        machine.place(task, placement.booked)
        task.mark_running(placement.machine_id, self.now)
        self.num_placements += 1
        if self._log_placements:
            self.placement_log.append(
                (task, placement.machine_id, self.now, placement.booked)
            )
        if self.trace is not None:
            self.trace.emit(
                "task_start",
                time=self.now,
                job=task.job.name,
                stage=task.stage.name,
                task=task.index,
                machine=placement.machine_id,
            )
        if self._m_placements is not None:
            self._m_placements.inc()
        self.scheduler.on_task_started(
            task, placement.machine_id, placement.booked
        )
        if self.tracker is not None:
            self.tracker.note_placement(
                task, placement.machine_id, placement.booked, self.now
            )
        specs = build_flows(
            task, placement.machine_id, self.cluster.topology
        )
        if specs:
            self._outstanding_flows[task.task_id] = len(specs)
            for spec in specs:
                self.flows.add_flow(spec)
        else:
            self.events.push(
                self.now + self.config.min_task_duration,
                EventKind.TASK_FIXED_COMPLETE,
                task,
            )

    # -- fairness integrals ----------------------------------------------------
    def _accumulate_fairness(self, dt: float) -> None:
        if not self.collector.track_fairness or dt <= 0:
            return
        shares = {
            job.job_id: self.scheduler.dominant_share(job)
            for job in self.scheduler.active_jobs
            if not job.is_finished
        }
        self.collector.accumulate_fairness(dt, shares)
