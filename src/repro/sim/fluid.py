"""Fluid-rate flow table: proportional-share contention on disk and network.

Every piece of in-flight work is a *flow*:

- a **cpu** flow burns core-seconds at a fixed rate (cores are rigidly
  allocated, so they never contend);
- a **local read** flow moves bytes through ``diskr`` on one machine;
- a **remote read** flow moves bytes through ``diskr`` and ``netout`` at the
  source machine and ``netin`` at the destination;
- a **write** flow moves bytes through ``diskw``;
- an **external** flow (ingestion, evacuation) uses any slots it declares.

Each (machine, fluid-dimension) pair is a *slot* with a fixed capacity.
When the nominal demand on a slot exceeds its capacity, every flow through
it is scaled down proportionally — and a configurable *contention penalty*
makes the aggregate throughput drop below capacity, modeling incast, disk
seeks and cache misses (Section 2.1): with over-subscription ratio r > 1
the aggregate achieved throughput is capacity / (1 + sigma * (r - 1)).

All state lives in flat numpy arrays so that advancing hundreds of
concurrent flows costs a handful of vectorized operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.resources import ResourceModel

__all__ = ["FlowTable", "FluidConfig", "FlowSpec"]

#: a flow touches at most this many (machine, dimension) slots
MAX_SLOTS = 3

#: work below this is considered complete (guards float error)
WORK_TOLERANCE = 1e-7


@dataclass(frozen=True)
class FluidConfig:
    """Contention model parameters.

    ``contention_sigma`` is the penalty slope: 0 gives pure proportional
    sharing; the default 0.5 makes a 2x over-subscribed resource deliver
    only ~67% of its capacity in aggregate — the "sharply lower
    throughput" of Section 2.1 (switch-buffer incast, disk-seek and
    cache-miss overheads).  ``sigma_overrides`` sets a per-dimension
    slope — CPU time-sharing is lossless (sigma 0) while I/O contention
    is worse than proportional.
    """

    contention_sigma: float = 0.5
    sigma_overrides: Optional[Dict[str, float]] = None

    def sigma_for(self, dim_name: str) -> float:
        if self.sigma_overrides and dim_name in self.sigma_overrides:
            return self.sigma_overrides[dim_name]
        if dim_name == "cpu" and (
            not self.sigma_overrides or "cpu" not in self.sigma_overrides
        ):
            return 0.0
        return self.contention_sigma


@dataclass(frozen=True)
class FlowSpec:
    """Description of a flow to register.

    ``slots`` are (machine_id, dim_name) pairs; the flow demands
    ``nominal_rate`` on each of them simultaneously (a transfer moves at one
    rate through disk and both NICs).  ``fixed`` flows ignore contention.
    """

    work: float
    nominal_rate: float
    slots: Tuple[Tuple[int, str], ...] = ()
    fixed: bool = False
    tag: Optional[object] = None


class FlowTable:
    """Vectorized store of all active flows."""

    def __init__(
        self,
        model: ResourceModel,
        machine_capacities: Sequence[Sequence[float]],
        config: Optional[FluidConfig] = None,
    ):
        self.model = model
        self.config = config if config is not None else FluidConfig()
        self._fluid_dims = [
            i for i, fluid in enumerate(model.fluid_mask) if fluid
        ]
        self._fluid_index = {d: k for k, d in enumerate(self._fluid_dims)}
        self._dim_slot = {
            model.names[d]: k for d, k in self._fluid_index.items()
        }
        self.num_machines = len(machine_capacities)
        nf = len(self._fluid_dims)
        caps = np.asarray(machine_capacities, dtype=float)
        #: capacity per (machine, fluid-dim) slot, flattened
        self._slot_capacity = caps[:, self._fluid_dims].reshape(-1)
        self._num_slots = self.num_machines * nf
        self._nf = nf
        dim_sigmas = np.array(
            [self.config.sigma_for(model.names[d]) for d in self._fluid_dims]
        )
        #: contention penalty slope per slot
        self._slot_sigma = np.tile(dim_sigmas, self.num_machines)

        # flow arrays, grown on demand
        n = 64
        self._remaining = np.zeros(n)
        self._nominal = np.zeros(n)
        self._rate = np.zeros(n)
        self._slots = np.full((n, MAX_SLOTS), -1, dtype=np.int64)
        self._fixed = np.zeros(n, dtype=bool)
        self._active = np.zeros(n, dtype=bool)
        self._free: List[int] = list(range(n))
        self._tags: Dict[int, object] = {}
        self._rates_dirty = True

    # -- registration ----------------------------------------------------------
    def _slot_index(self, machine_id: int, dim_name: str) -> int:
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"machine {machine_id} out of range")
        try:
            k = self._dim_slot[dim_name]
        except KeyError:
            raise ValueError(
                f"{dim_name!r} is not a fluid dimension of the model"
            ) from None
        return machine_id * self._nf + k

    def _grow(self) -> None:
        old = len(self._remaining)
        new = old * 2
        self._remaining = np.resize(self._remaining, new)
        self._nominal = np.resize(self._nominal, new)
        self._rate = np.resize(self._rate, new)
        grown_slots = np.full((new, MAX_SLOTS), -1, dtype=np.int64)
        grown_slots[:old] = self._slots
        self._slots = grown_slots
        fixed = np.zeros(new, dtype=bool)
        fixed[:old] = self._fixed
        self._fixed = fixed
        active = np.zeros(new, dtype=bool)
        active[:old] = self._active
        self._active = active
        self._free.extend(range(old, new))

    def add_flow(self, spec: FlowSpec) -> int:
        """Register a flow; returns its id.  Zero-work flows are rejected."""
        if spec.work <= 0:
            raise ValueError(f"flow work must be positive: {spec.work}")
        if spec.nominal_rate <= 0:
            raise ValueError(
                f"flow nominal rate must be positive: {spec.nominal_rate}"
            )
        if len(spec.slots) > MAX_SLOTS:
            raise ValueError(f"flow touches too many slots: {spec.slots}")
        if not self._free:
            self._grow()
        idx = self._free.pop()
        self._remaining[idx] = spec.work
        self._nominal[idx] = spec.nominal_rate
        self._rate[idx] = spec.nominal_rate
        self._slots[idx, :] = -1
        for j, (machine_id, dim_name) in enumerate(spec.slots):
            self._slots[idx, j] = self._slot_index(machine_id, dim_name)
        self._fixed[idx] = spec.fixed
        self._active[idx] = True
        if spec.tag is not None:
            self._tags[idx] = spec.tag
        self._rates_dirty = True
        return idx

    def remove_flow(self, flow_id: int) -> None:
        if not self._active[flow_id]:
            raise ValueError(f"flow {flow_id} is not active")
        self._active[flow_id] = False
        self._tags.pop(flow_id, None)
        self._free.append(flow_id)
        self._rates_dirty = True

    def tag_of(self, flow_id: int) -> Optional[object]:
        return self._tags.get(flow_id)

    @property
    def num_active(self) -> int:
        return int(self._active.sum())

    def remaining_work(self, flow_id: int) -> float:
        if not self._active[flow_id]:
            raise ValueError(f"flow {flow_id} is not active")
        return float(self._remaining[flow_id])

    def current_rate(self, flow_id: int) -> float:
        self._recompute_rates()
        return float(self._rate[flow_id])

    # -- rate computation ----------------------------------------------------
    def _recompute_rates(self) -> None:
        if not self._rates_dirty:
            return
        active = self._active
        if not active.any():
            self._rates_dirty = False
            return
        idx = np.flatnonzero(active & ~self._fixed)
        demand = np.zeros(self._num_slots)
        if idx.size:
            slots = self._slots[idx]
            valid = slots >= 0
            np.add.at(
                demand,
                slots[valid],
                np.repeat(self._nominal[idx], MAX_SLOTS)[valid.reshape(-1)],
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                self._slot_capacity > 0, demand / self._slot_capacity, np.inf
            )
        over = ratio > 1.0
        scale = np.ones(self._num_slots)
        # proportional share times the contention penalty
        sigma = self._slot_sigma[over]
        scale[over] = 1.0 / (ratio[over] * (1.0 + sigma * (ratio[over] - 1.0)))
        scale[demand <= 0] = 1.0
        if idx.size:
            slots = self._slots[idx]
            slot_scale = np.where(slots >= 0, scale[np.maximum(slots, 0)], 1.0)
            self._rate[idx] = self._nominal[idx] * slot_scale.min(axis=1)
        fixed_idx = np.flatnonzero(active & self._fixed)
        self._rate[fixed_idx] = self._nominal[fixed_idx]
        self._rates_dirty = False

    # -- time stepping ----------------------------------------------------------
    def time_to_next_completion(self) -> float:
        """Seconds until the earliest active flow finishes (inf if none)."""
        self._recompute_rates()
        active = self._active
        if not active.any():
            return float("inf")
        rates = self._rate[active]
        remaining = self._remaining[active]
        with np.errstate(divide="ignore"):
            times = np.where(rates > 0, remaining / rates, np.inf)
        return float(times.min())

    def advance(self, dt: float) -> List[int]:
        """Progress all flows by ``dt`` seconds; return ids that completed."""
        if dt < 0:
            raise ValueError(f"negative dt: {dt}")
        self._recompute_rates()
        active = np.flatnonzero(self._active)
        if active.size == 0:
            return []
        if dt > 0:
            self._remaining[active] -= self._rate[active] * dt
        done_mask = self._remaining[active] <= WORK_TOLERANCE
        completed = [int(i) for i in active[done_mask]]
        for flow_id in completed:
            self._active[flow_id] = False
            self._free.append(flow_id)
        if completed:
            self._rates_dirty = True
        return completed

    def completed_tags(self, completed: Iterable[int]) -> List[object]:
        out = []
        for flow_id in completed:
            tag = self._tags.pop(flow_id, None)
            if tag is not None:
                out.append(tag)
        return out

    # -- observation -----------------------------------------------------------
    def slot_demand(self) -> np.ndarray:
        """Nominal demand per (machine, fluid-dim), shape (M, F).

        This is what a naive utilization counter would report — it exceeds
        capacity when a scheduler over-allocates (Figure 5c of the paper).
        """
        demand = np.zeros(self._num_slots)
        idx = np.flatnonzero(self._active & ~self._fixed)
        if idx.size:
            slots = self._slots[idx]
            valid = slots >= 0
            np.add.at(
                demand,
                slots[valid],
                np.repeat(self._nominal[idx], MAX_SLOTS)[valid.reshape(-1)],
            )
        return demand.reshape(self.num_machines, self._nf)

    def slot_throughput(self) -> np.ndarray:
        """Achieved rate per (machine, fluid-dim), shape (M, F)."""
        self._recompute_rates()
        throughput = np.zeros(self._num_slots)
        idx = np.flatnonzero(self._active & ~self._fixed)
        if idx.size:
            slots = self._slots[idx]
            valid = slots >= 0
            np.add.at(
                throughput,
                slots[valid],
                np.repeat(self._rate[idx], MAX_SLOTS)[valid.reshape(-1)],
            )
        return throughput.reshape(self.num_machines, self._nf)

    def fluid_dim_names(self) -> Tuple[str, ...]:
        return tuple(self.model.names[d] for d in self._fluid_dims)
