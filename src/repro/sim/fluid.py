"""Fluid-rate flow table: proportional-share contention on disk and network.

Every piece of in-flight work is a *flow*:

- a **cpu** flow burns core-seconds at a fixed rate (cores are rigidly
  allocated, so they never contend);
- a **local read** flow moves bytes through ``diskr`` on one machine;
- a **remote read** flow moves bytes through ``diskr`` and ``netout`` at the
  source machine and ``netin`` at the destination;
- a **write** flow moves bytes through ``diskw``;
- an **external** flow (ingestion, evacuation) uses any slots it declares.

Each (machine, fluid-dimension) pair is a *slot* with a fixed capacity.
When the nominal demand on a slot exceeds its capacity, every flow through
it is scaled down proportionally — and a configurable *contention penalty*
makes the aggregate throughput drop below capacity, modeling incast, disk
seeks and cache misses (Section 2.1): with over-subscription ratio r > 1
the aggregate achieved throughput is capacity / (1 + sigma * (r - 1)).

Rate maintenance is *sparse*.  A flow's rate depends only on the scales
of its own slots, and a slot's scale depends only on the sum of its
members' **nominal** rates — nominals are constants, so there is no
feedback from achieved rates back into demands.  The slot-connected
"component" an ``add_flow``/``remove_flow``/completion can touch
therefore collapses to the one-hop neighborhood: the flow's slots, and
the flows sharing those slots.  ``_recompute_rates`` resums demand and
rescales exactly those dirty slots and re-rates exactly those touched
flows; everything else keeps its arrays untouched.  (Slot capacities are
fixed at construction; a capacity change would dirty the slot the same
way.)  The resummation accumulates each dirty slot's members in
ascending flow-id order — the order a full ``np.add.at`` rebuild uses —
so the sparse path is bit-identical to :meth:`reference_rates`, the
retained full-table oracle.

``time_to_next_completion`` is likewise incremental: every re-rated flow
pushes its absolute finish instant onto a lazy min-heap (entries carry a
per-flow generation counter, so completion/removal/re-rating invalidates
old entries without searching the heap), and the query pops stale
entries and answers from the top instead of scanning the whole table.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

import numpy as np

from repro.resources import ResourceModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import Registry

__all__ = ["FlowTable", "FluidConfig", "FlowSpec"]

#: a flow touches at most this many (machine, dimension) slots
MAX_SLOTS = 3

#: work below this is considered complete (guards float error)
WORK_TOLERANCE = 1e-7


@dataclass(frozen=True)
class FluidConfig:
    """Contention model parameters.

    ``contention_sigma`` is the penalty slope: 0 gives pure proportional
    sharing; the default 0.5 makes a 2x over-subscribed resource deliver
    only ~67% of its capacity in aggregate — the "sharply lower
    throughput" of Section 2.1 (switch-buffer incast, disk-seek and
    cache-miss overheads).  ``sigma_overrides`` sets a per-dimension
    slope — CPU time-sharing is lossless (sigma 0) while I/O contention
    is worse than proportional.
    """

    contention_sigma: float = 0.5
    sigma_overrides: Optional[Dict[str, float]] = None

    def sigma_for(self, dim_name: str) -> float:
        if self.sigma_overrides and dim_name in self.sigma_overrides:
            return self.sigma_overrides[dim_name]
        if dim_name == "cpu" and (
            not self.sigma_overrides or "cpu" not in self.sigma_overrides
        ):
            return 0.0
        return self.contention_sigma


@dataclass(frozen=True)
class FlowSpec:
    """Description of a flow to register.

    ``slots`` are (machine_id, dim_name) pairs; the flow demands
    ``nominal_rate`` on each of them simultaneously (a transfer moves at one
    rate through disk and both NICs).  ``fixed`` flows ignore contention.
    """

    work: float
    nominal_rate: float
    slots: Tuple[Tuple[int, str], ...] = ()
    fixed: bool = False
    tag: Optional[object] = None


class FlowTable:
    """Vectorized store of all active flows with sparse rate updates."""

    def __init__(
        self,
        model: ResourceModel,
        machine_capacities: Sequence[Sequence[float]],
        config: Optional[FluidConfig] = None,
    ):
        self.model = model
        self.config = config if config is not None else FluidConfig()
        self._fluid_dims = [
            i for i, fluid in enumerate(model.fluid_mask) if fluid
        ]
        self._fluid_index = {d: k for k, d in enumerate(self._fluid_dims)}
        self._dim_slot = {
            model.names[d]: k for d, k in self._fluid_index.items()
        }
        self.num_machines = len(machine_capacities)
        nf = len(self._fluid_dims)
        caps = np.asarray(machine_capacities, dtype=float)
        #: capacity per (machine, fluid-dim) slot, flattened
        self._slot_capacity = caps[:, self._fluid_dims].reshape(-1)
        self._num_slots = self.num_machines * nf
        self._nf = nf
        dim_sigmas = np.array(
            [self.config.sigma_for(model.names[d]) for d in self._fluid_dims]
        )
        #: contention penalty slope per slot
        self._slot_sigma = np.tile(dim_sigmas, self.num_machines)

        # flow arrays, grown on demand
        n = 64
        self._remaining = np.zeros(n)
        self._nominal = np.zeros(n)
        self._rate = np.zeros(n)
        self._slots = np.full((n, MAX_SLOTS), -1, dtype=np.int64)
        self._fixed = np.zeros(n, dtype=bool)
        self._active = np.zeros(n, dtype=bool)
        #: heap-entry generation per flow id; a bump invalidates every
        #: completion-heap entry pushed for the previous incarnation/rate
        self._gen = np.zeros(n, dtype=np.int64)
        self._free: List[int] = list(range(n))
        self._tags: Dict[int, object] = {}

        # sparse-maintenance state
        #: nominal demand and contention scale per slot, kept equal to
        #: what a full rebuild would produce (see _recompute_rates)
        self._slot_demand = np.zeros(self._num_slots)
        self._slot_scale = np.ones(self._num_slots)
        #: non-fixed active flow ids touching each slot
        self._slot_members: List[Set[int]] = [
            set() for _ in range(self._num_slots)
        ]
        self._dirty_slots: Set[int] = set()
        #: (absolute finish instant, generation, flow id) lazy min-heap
        self._heap: List[Tuple[float, int, int]] = []
        #: internal absolute clock: the sum of every advance() dt, the
        #: reference frame for the heap's finish instants
        self._clock = 0.0

        #: plain-int effectiveness counters (always maintained; mirrored
        #: into the obs Registry when use_metrics is called)
        self.stats: Dict[str, int] = {
            "sparse_recomputes": 0,
            "slots_recomputed": 0,
            "flows_recomputed": 0,
            "heap_entries": 0,
            "stale_heap_pops": 0,
        }
        self._m_recomputes = None
        self._m_slots = None
        self._m_flows = None

    # -- observability ---------------------------------------------------------
    def use_metrics(self, registry: "Registry") -> None:
        """Register sparse-recompute effectiveness counters."""
        self._m_recomputes = registry.counter(
            "repro_fluid_sparse_recomputes_total",
            "Sparse rate recomputations (dirty-neighborhood passes)",
        )
        self._m_slots = registry.counter(
            "repro_fluid_slots_recomputed_total",
            "Slots whose demand/scale was resummed across all sparse passes",
        )
        self._m_flows = registry.counter(
            "repro_fluid_flows_recomputed_total",
            "Flows re-rated across all sparse passes",
        )

    # -- registration ----------------------------------------------------------
    def _slot_index(self, machine_id: int, dim_name: str) -> int:
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"machine {machine_id} out of range")
        try:
            k = self._dim_slot[dim_name]
        except KeyError:
            raise ValueError(
                f"{dim_name!r} is not a fluid dimension of the model"
            ) from None
        return machine_id * self._nf + k

    def _grow(self) -> None:
        old = len(self._remaining)
        new = old * 2
        self._remaining = np.resize(self._remaining, new)
        self._nominal = np.resize(self._nominal, new)
        self._rate = np.resize(self._rate, new)
        grown_slots = np.full((new, MAX_SLOTS), -1, dtype=np.int64)
        grown_slots[:old] = self._slots
        self._slots = grown_slots
        fixed = np.zeros(new, dtype=bool)
        fixed[:old] = self._fixed
        self._fixed = fixed
        active = np.zeros(new, dtype=bool)
        active[:old] = self._active
        self._active = active
        gen = np.zeros(new, dtype=np.int64)
        gen[:old] = self._gen
        self._gen = gen
        self._free.extend(range(old, new))

    def _push_completion(self, idx: int) -> None:
        """Schedule ``idx``'s finish instant on the lazy heap.

        The absolute instant ``clock + remaining/rate`` is invariant
        under advance() (both terms move together), so an entry stays
        correct until the flow's rate changes — at which point the
        generation bump orphans it and a fresh entry is pushed.
        """
        self._gen[idx] += 1
        heapq.heappush(
            self._heap,
            (
                self._clock + self._remaining[idx] / self._rate[idx],
                int(self._gen[idx]),
                idx,
            ),
        )
        self.stats["heap_entries"] += 1

    def add_flow(self, spec: FlowSpec) -> int:
        """Register a flow; returns its id.  Zero-work flows are rejected."""
        if spec.work <= 0:
            raise ValueError(f"flow work must be positive: {spec.work}")
        if spec.nominal_rate <= 0:
            raise ValueError(
                f"flow nominal rate must be positive: {spec.nominal_rate}"
            )
        if len(spec.slots) > MAX_SLOTS:
            raise ValueError(f"flow touches too many slots: {spec.slots}")
        if not self._free:
            self._grow()
        idx = self._free.pop()
        self._remaining[idx] = spec.work
        self._nominal[idx] = spec.nominal_rate
        self._rate[idx] = spec.nominal_rate
        self._slots[idx, :] = -1
        for j, (machine_id, dim_name) in enumerate(spec.slots):
            self._slots[idx, j] = self._slot_index(machine_id, dim_name)
        self._fixed[idx] = spec.fixed
        self._active[idx] = True
        if spec.tag is not None:
            self._tags[idx] = spec.tag
        if spec.fixed or not spec.slots:
            # contention never touches this flow: its rate is final now,
            # so its completion entry can be scheduled immediately
            self._push_completion(idx)
        else:
            for j in range(len(spec.slots)):
                slot = int(self._slots[idx, j])
                self._slot_members[slot].add(idx)
                self._dirty_slots.add(slot)
        return idx

    def _deactivate(self, flow_id: int) -> None:
        """Retire a flow: free its id, orphan its heap entries, and dirty
        the slots it was contending on."""
        self._active[flow_id] = False
        self._gen[flow_id] += 1
        self._free.append(flow_id)
        if not self._fixed[flow_id]:
            for j in range(MAX_SLOTS):
                slot = int(self._slots[flow_id, j])
                if slot >= 0:
                    self._slot_members[slot].discard(flow_id)
                    self._dirty_slots.add(slot)

    def remove_flow(self, flow_id: int) -> None:
        if not self._active[flow_id]:
            raise ValueError(f"flow {flow_id} is not active")
        self._deactivate(flow_id)
        self._tags.pop(flow_id, None)

    def tag_of(self, flow_id: int) -> Optional[object]:
        return self._tags.get(flow_id)

    @property
    def num_active(self) -> int:
        return int(self._active.sum())

    def remaining_work(self, flow_id: int) -> float:
        if not self._active[flow_id]:
            raise ValueError(f"flow {flow_id} is not active")
        return float(self._remaining[flow_id])

    def current_rate(self, flow_id: int) -> float:
        self._recompute_rates()
        return float(self._rate[flow_id])

    # -- rate computation ----------------------------------------------------
    def _recompute_rates(self) -> None:
        """Refresh rates for the dirty-slot neighborhood only.

        Per dirty slot: resum the members' nominal demand (ascending
        flow-id order, matching a full ``np.add.at`` rebuild bit for
        bit) and recompute the contention scale.  Then re-rate exactly
        the flows touching a dirty slot.  Clean slots keep their stored
        demand/scale, which by induction equals the full rebuild's.
        """
        if not self._dirty_slots:
            return
        slots = np.fromiter(
            sorted(self._dirty_slots), dtype=np.int64,
            count=len(self._dirty_slots),
        )
        self._dirty_slots.clear()
        demand = self._slot_demand
        demand[slots] = 0.0
        touched: Set[int] = set()
        member_ids: List[int] = []
        member_slots: List[int] = []
        for s in slots:
            members = self._slot_members[s]
            if members:
                ordered = sorted(members)
                member_ids.extend(ordered)
                member_slots.extend([int(s)] * len(ordered))
                touched.update(ordered)
        if member_ids:
            np.add.at(
                demand,
                np.asarray(member_slots, dtype=np.int64),
                self._nominal[np.asarray(member_ids, dtype=np.int64)],
            )
        cap = self._slot_capacity[slots]
        d = demand[slots]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(cap > 0, d / cap, np.inf)
        over = ratio > 1.0
        scale = np.ones(len(slots))
        # proportional share times the contention penalty
        sigma = self._slot_sigma[slots][over]
        scale[over] = 1.0 / (ratio[over] * (1.0 + sigma * (ratio[over] - 1.0)))
        scale[d <= 0] = 1.0
        self._slot_scale[slots] = scale
        if touched:
            flows = np.fromiter(
                sorted(touched), dtype=np.int64, count=len(touched)
            )
            fslots = self._slots[flows]
            slot_scale = np.where(
                fslots >= 0, self._slot_scale[np.maximum(fslots, 0)], 1.0
            )
            self._rate[flows] = self._nominal[flows] * slot_scale.min(axis=1)
            for idx in flows:
                self._push_completion(int(idx))
        self.stats["sparse_recomputes"] += 1
        self.stats["slots_recomputed"] += len(slots)
        self.stats["flows_recomputed"] += len(touched)
        if self._m_recomputes is not None:
            self._m_recomputes.inc()
            self._m_slots.inc(len(slots))
            self._m_flows.inc(len(touched))

    def reference_rates(self) -> np.ndarray:
        """Full-table rate rebuild — the pre-sparse implementation, kept
        as the verification oracle.  Returns a fresh rate array without
        touching any table state; the sparse-maintained ``_rate`` must
        equal it on every active flow (property-tested to 1e-9, and by
        construction bit-identical)."""
        rate = self._rate.copy()
        active = self._active
        if not active.any():
            return rate
        idx = np.flatnonzero(active & ~self._fixed)
        demand = np.zeros(self._num_slots)
        if idx.size:
            slots = self._slots[idx]
            valid = slots >= 0
            np.add.at(
                demand,
                slots[valid],
                np.repeat(self._nominal[idx], MAX_SLOTS)[valid.reshape(-1)],
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                self._slot_capacity > 0, demand / self._slot_capacity, np.inf
            )
        over = ratio > 1.0
        scale = np.ones(self._num_slots)
        sigma = self._slot_sigma[over]
        scale[over] = 1.0 / (ratio[over] * (1.0 + sigma * (ratio[over] - 1.0)))
        scale[demand <= 0] = 1.0
        if idx.size:
            slots = self._slots[idx]
            slot_scale = np.where(slots >= 0, scale[np.maximum(slots, 0)], 1.0)
            rate[idx] = self._nominal[idx] * slot_scale.min(axis=1)
        fixed_idx = np.flatnonzero(active & self._fixed)
        rate[fixed_idx] = self._nominal[fixed_idx]
        return rate

    # -- time stepping ----------------------------------------------------------
    def time_to_next_completion(self) -> float:
        """Seconds until the earliest active flow finishes (inf if none).

        Answered from the lazy completion heap: stale entries (finished,
        removed, or re-rated flows) are popped on sight; the first live
        entry names the earliest finisher, and the returned interval is
        computed fresh from its current remaining work and rate.
        """
        self._recompute_rates()
        heap = self._heap
        while heap:
            _, gen, idx = heap[0]
            if self._active[idx] and self._gen[idx] == gen:
                return float(self._remaining[idx] / self._rate[idx])
            heapq.heappop(heap)
            self.stats["stale_heap_pops"] += 1
        return float("inf")

    def advance(self, dt: float) -> List[int]:
        """Progress all flows by ``dt`` seconds; return ids that completed."""
        if dt < 0:
            raise ValueError(f"negative dt: {dt}")
        self._recompute_rates()
        self._clock += dt
        active = np.flatnonzero(self._active)
        if active.size == 0:
            return []
        if dt > 0:
            self._remaining[active] -= self._rate[active] * dt
        done_mask = self._remaining[active] <= WORK_TOLERANCE
        completed = [int(i) for i in active[done_mask]]
        for flow_id in completed:
            self._deactivate(flow_id)
        return completed

    def completed_tags(self, completed: Iterable[int]) -> List[object]:
        out = []
        for flow_id in completed:
            tag = self._tags.pop(flow_id, None)
            if tag is not None:
                out.append(tag)
        return out

    # -- observation -----------------------------------------------------------
    def slot_demand(self) -> np.ndarray:
        """Nominal demand per (machine, fluid-dim), shape (M, F).

        This is what a naive utilization counter would report — it exceeds
        capacity when a scheduler over-allocates (Figure 5c of the paper).
        """
        demand = np.zeros(self._num_slots)
        idx = np.flatnonzero(self._active & ~self._fixed)
        if idx.size:
            slots = self._slots[idx]
            valid = slots >= 0
            np.add.at(
                demand,
                slots[valid],
                np.repeat(self._nominal[idx], MAX_SLOTS)[valid.reshape(-1)],
            )
        return demand.reshape(self.num_machines, self._nf)

    def slot_throughput(self) -> np.ndarray:
        """Achieved rate per (machine, fluid-dim), shape (M, F)."""
        self._recompute_rates()
        throughput = np.zeros(self._num_slots)
        idx = np.flatnonzero(self._active & ~self._fixed)
        if idx.size:
            slots = self._slots[idx]
            valid = slots >= 0
            np.add.at(
                throughput,
                slots[valid],
                np.repeat(self._rate[idx], MAX_SLOTS)[valid.reshape(-1)],
            )
        return throughput.reshape(self.num_machines, self._nf)

    def fluid_dim_names(self) -> Tuple[str, ...]:
        return tuple(self.model.names[d] for d in self._fluid_dims)
