"""Event queue for the discrete-event engine."""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, List

__all__ = ["Event", "EventKind", "EventQueue"]


class EventKind(enum.Enum):
    JOB_ARRIVAL = "job_arrival"
    TASK_FIXED_COMPLETE = "task_fixed_complete"  # tasks with no fluid work
    TRACKER_REPORT = "tracker_report"
    ACTIVITY_START = "activity_start"
    ACTIVITY_STOP = "activity_stop"
    WAKEUP = "wakeup"  # generic scheduler wake-up


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped event; ``seq`` breaks ties deterministically."""

    time: float
    seq: int = field(compare=True)
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"negative event time: {time}")
        event = Event(time, next(self._seq), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float:
        """Time of the earliest event, or +inf when empty."""
        return self._heap[0].time if self._heap else float("inf")

    #: relative tie tolerance for :meth:`pop_until`.  An event whose time
    #: differs from the query time by less than this *fraction* is a tie:
    #: both times came from the same arithmetic (``now + dt`` chains) and
    #: differ only by accumulated rounding.  A fixed absolute epsilon
    #: breaks at large clocks — 1e-12 is below one ulp of any time beyond
    #: ~4096s, so late-simulation ties would silently stop matching while
    #: early ones did.
    TIE_RTOL = 1e-12

    def pop_until(self, time: float) -> List[Event]:
        """Pop every event with ``event.time <= time`` (in order).

        Ties are resolved with a tolerance *relative* to the clock
        (``TIE_RTOL``), so tie handling is scale-invariant: an event one
        rounding error past ``time`` pops now whether the simulation is
        at t=1 or t=1e9.
        """
        cutoff = time + self.TIE_RTOL * max(1.0, abs(time))
        out: List[Event] = []
        while self._heap and self._heap[0].time <= cutoff:
            out.append(heapq.heappop(self._heap))
        return out

    def has_pending(self, *kinds: EventKind) -> bool:
        """Whether any queued event has one of the given kinds (or any
        event at all when no kinds are named).  The supported way for
        callers to ask "is anything still coming?" without reaching into
        the heap."""
        if not kinds:
            return bool(self._heap)
        wanted = set(kinds)
        return any(event.kind in wanted for event in self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
