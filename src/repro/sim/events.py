"""Event queues for the discrete-event engine.

Two implementations with identical semantics:

- :class:`EventQueue` — the original ``heapq``-of-``Event``-objects
  queue, kept as the reference implementation;
- :class:`ArrayEventQueue` — the structure-of-arrays queue the engine
  runs on: the heap lives in parallel numpy arrays (times, sequence
  numbers, kind codes) plus a payload list, so the pending-event state
  can be inspected, snapshotted, and scanned (``has_pending``) without
  walking an object heap.

Both resolve ``pop_until`` ties with the same *relative* tolerance
(``TIE_RTOL``), so tie handling is scale-invariant at any simulated
clock — the property tests drive both queues with the same traffic and
require identical pop sequences.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, List

import numpy as np

__all__ = ["Event", "EventKind", "EventQueue", "ArrayEventQueue"]


class EventKind(enum.Enum):
    JOB_ARRIVAL = "job_arrival"
    TASK_FIXED_COMPLETE = "task_fixed_complete"  # tasks with no fluid work
    TRACKER_REPORT = "tracker_report"
    ACTIVITY_START = "activity_start"
    ACTIVITY_STOP = "activity_stop"
    WAKEUP = "wakeup"  # generic scheduler wake-up


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped event; ``seq`` breaks ties deterministically."""

    time: float
    seq: int = field(compare=True)
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"negative event time: {time}")
        event = Event(time, next(self._seq), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float:
        """Time of the earliest event, or +inf when empty."""
        return self._heap[0].time if self._heap else float("inf")

    #: relative tie tolerance for :meth:`pop_until`.  An event whose time
    #: differs from the query time by less than this *fraction* is a tie:
    #: both times came from the same arithmetic (``now + dt`` chains) and
    #: differ only by accumulated rounding.  A fixed absolute epsilon
    #: breaks at large clocks — 1e-12 is below one ulp of any time beyond
    #: ~4096s, so late-simulation ties would silently stop matching while
    #: early ones did.
    TIE_RTOL = 1e-12

    def pop_until(self, time: float) -> List[Event]:
        """Pop every event with ``event.time <= time`` (in order).

        Ties are resolved with a tolerance *relative* to the clock
        (``TIE_RTOL``), so tie handling is scale-invariant: an event one
        rounding error past ``time`` pops now whether the simulation is
        at t=1 or t=1e9.
        """
        cutoff = time + self.TIE_RTOL * max(1.0, abs(time))
        out: List[Event] = []
        while self._heap and self._heap[0].time <= cutoff:
            out.append(heapq.heappop(self._heap))
        return out

    def has_pending(self, *kinds: EventKind) -> bool:
        """Whether any queued event has one of the given kinds (or any
        event at all when no kinds are named).  The supported way for
        callers to ask "is anything still coming?" without reaching into
        the heap."""
        if not kinds:
            return bool(self._heap)
        wanted = set(kinds)
        return any(event.kind in wanted for event in self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


#: EventKind <-> small-int codes for the array-backed queue
_KIND_LIST = list(EventKind)
_KIND_CODES = {kind: code for code, kind in enumerate(_KIND_LIST)}


class ArrayEventQueue:
    """The structure-of-arrays event queue.

    A binary min-heap ordered by ``(time, seq)`` whose node storage is
    three parallel numpy arrays (``float64`` times, ``int64`` sequence
    numbers, ``int8`` kind codes) plus a payload list.  Pop order is
    identical to :class:`EventQueue`: ``seq`` is unique, so the
    ``(time, seq)`` order is total and any conforming heap pops the
    same sequence.  ``has_pending`` becomes a vectorized scan over the
    kind-code array instead of a walk over event objects.
    """

    TIE_RTOL = EventQueue.TIE_RTOL

    def __init__(self, capacity: int = 256) -> None:
        capacity = max(int(capacity), 1)
        self._time = np.empty(capacity)
        self._seq = np.empty(capacity, dtype=np.int64)
        self._kind = np.empty(capacity, dtype=np.int8)
        self._payload: List[Any] = [None] * capacity
        self._size = 0
        self._next_seq = 0

    # -- heap plumbing -----------------------------------------------------
    def _grow(self) -> None:
        old = self._time.shape[0]
        new = old * 2
        for name in ("_time", "_seq", "_kind"):
            arr = getattr(self, name)
            grown = np.empty(new, dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)
        self._payload.extend([None] * (new - old))

    def _swap(self, a: int, b: int) -> None:
        t, s, k, p = self._time, self._seq, self._kind, self._payload
        t[a], t[b] = t[b], t[a]
        s[a], s[b] = s[b], s[a]
        k[a], k[b] = k[b], k[a]
        p[a], p[b] = p[b], p[a]

    def _less(self, a: int, b: int) -> bool:
        ta = self._time[a]
        tb = self._time[b]
        if ta != tb:
            return bool(ta < tb)
        return bool(self._seq[a] < self._seq[b])

    def _sift_up(self, pos: int) -> None:
        while pos > 0:
            parent = (pos - 1) >> 1
            if self._less(pos, parent):
                self._swap(pos, parent)
                pos = parent
            else:
                break

    def _sift_down(self, pos: int) -> None:
        size = self._size
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._less(right, child):
                child = right
            if self._less(child, pos):
                self._swap(pos, child)
                pos = child
            else:
                break

    def _pop_root(self) -> Event:
        event = Event(
            float(self._time[0]),
            int(self._seq[0]),
            _KIND_LIST[self._kind[0]],
            self._payload[0],
        )
        last = self._size - 1
        if last > 0:
            self._swap(0, last)
        self._payload[last] = None
        self._size = last
        if last > 0:
            self._sift_down(0)
        return event

    # -- EventQueue API ----------------------------------------------------
    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"negative event time: {time}")
        if self._size == self._time.shape[0]:
            self._grow()
        pos = self._size
        seq = self._next_seq
        self._next_seq = seq + 1
        self._time[pos] = time
        self._seq[pos] = seq
        self._kind[pos] = _KIND_CODES[kind]
        self._payload[pos] = payload
        self._size = pos + 1
        self._sift_up(pos)
        return Event(float(time), seq, kind, payload)

    def peek_time(self) -> float:
        """Time of the earliest event, or +inf when empty."""
        return float(self._time[0]) if self._size else float("inf")

    def pop_until(self, time: float) -> List[Event]:
        """Pop every event with ``event.time <= time`` (in order), with
        the same scale-invariant relative tie tolerance as
        :meth:`EventQueue.pop_until`."""
        cutoff = time + self.TIE_RTOL * max(1.0, abs(time))
        out: List[Event] = []
        while self._size and self._time[0] <= cutoff:
            out.append(self._pop_root())
        return out

    def has_pending(self, *kinds: EventKind) -> bool:
        """Whether any queued event has one of the given kinds (or any
        event at all when no kinds are named) — a vectorized scan over
        the kind-code array."""
        if not kinds:
            return self._size > 0
        if not self._size:
            return False
        codes = np.array([_KIND_CODES[k] for k in kinds], dtype=np.int8)
        return bool(np.isin(self._kind[: self._size], codes).any())

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
