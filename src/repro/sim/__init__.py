"""Discrete-event fluid simulator for the cluster."""

from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.fluid import FlowTable, FluidConfig
from repro.sim.engine import Engine, EngineConfig

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "FlowTable",
    "FluidConfig",
    "Engine",
    "EngineConfig",
]
