"""Command-line interface: generate traces, run and compare schedulers.

Examples::

    python -m repro generate --kind suite --jobs 30 -o trace.json
    python -m repro run trace.json --scheduler tetris --machines 20
    python -m repro compare trace.json --machines 20 \
        --schedulers tetris,slot-fair,drf
    python -m repro sweep trace.json --knob fairness \
        --values 0,0.25,0.5,0.75
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.model import audit_engine
from repro.exec import RunSpec, get_backend, run_specs
from repro.exec.backends import WORKERS_ENV
from repro.experiments.harness import ExperimentConfig
from repro.metrics.comparison import improvement_percent
from repro.schedulers.registry import SCHEDULER_REGISTRY, build_scheduler
from repro.workload.trace import load_trace, save_trace
from repro.workload.tracegen import (
    BingTraceConfig,
    FacebookTraceConfig,
    WorkloadSuiteConfig,
    generate_bing_trace,
    generate_facebook_trace,
    generate_workload_suite,
)

__all__ = ["main", "SCHEDULERS"]

#: backward-compatible alias for the shared scheduler registry
SCHEDULERS: Dict[str, Callable[[], object]] = SCHEDULER_REGISTRY


def _scheduler_knobs(
    name: str, args: argparse.Namespace
) -> Optional[Dict[str, float]]:
    """The knob dict a command's flags select (None = defaults)."""
    if name != "tetris":
        return None
    knobs = {}
    if getattr(args, "fairness_knob", None) is not None:
        knobs["fairness_knob"] = args.fairness_knob
    if getattr(args, "barrier_knob", None) is not None:
        knobs["barrier_knob"] = args.barrier_knob
    return knobs or None


def _make_scheduler(name: str, args: argparse.Namespace):
    try:
        return build_scheduler(name, _scheduler_knobs(name, args))
    except KeyError as exc:
        raise SystemExit(str(exc))


def _maybe_federate(scheduler, config, trace=None):
    """Wrap the scheduler in a shard federation when ``--shards N > 1``.

    ``trace`` is the workload spec the process backend needs to
    materialize its worker mirrors; commands without one (serve) can
    only shard inline.
    """
    if config.shards <= 1:
        return scheduler
    from repro.federation import FederatedScheduler, FederationConfig

    try:
        federated = FederatedScheduler(
            scheduler,
            FederationConfig(
                num_shards=config.shards,
                backend=config.shard_backend,
                partitioner=config.shard_partitioner,
                spill_after=config.shard_spill_after,
                base_seed=config.seed,
            ),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    if config.shard_backend == "process":
        if trace is None:
            raise SystemExit(
                "this command supports --shard-backend inline only: a "
                "live stream has no static workload spec to materialize "
                "the worker mirrors from"
            )
        federated.provide_workload(tuple(trace), config)
    return federated


def _execution_stanza(backend, outcomes, wall_seconds_total):
    """The ``--json`` stanza recording how the results were produced."""
    return {
        "backend": backend.name,
        "workers": backend.workers,
        "wall_seconds_total": wall_seconds_total,
        "runs": {
            outcome.label: {
                "ok": outcome.ok,
                "attempts": outcome.attempts,
                "wall_seconds": outcome.wall_seconds,
                "error": outcome.error,
            }
            for outcome in outcomes
        },
    }


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        num_machines=args.machines,
        seed=args.seed,
        use_tracker=not args.no_tracker,
        shards=getattr(args, "shards", 1),
        shard_backend=getattr(args, "shard_backend", "inline"),
        shard_partitioner=getattr(args, "shard_partitioner", "rack"),
    )


def _print_summary(name: str, result) -> None:
    s = result.summary()
    print(
        f"{name:<14} jobs={int(s['jobs']):>4}  "
        f"mean JCT={s['mean_jct']:>9.1f}s  "
        f"median={s['median_jct']:>9.1f}s  "
        f"makespan={s['makespan']:>9.1f}s  "
        f"task dur={s['mean_task_duration']:>7.1f}s"
    )


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "suite":
        trace = generate_workload_suite(
            WorkloadSuiteConfig(
                num_jobs=args.jobs,
                task_scale=args.task_scale,
                arrival_horizon=args.horizon,
                seed=args.seed,
            )
        )
    elif args.kind == "facebook":
        trace = generate_facebook_trace(
            FacebookTraceConfig(
                num_jobs=args.jobs,
                arrival_horizon=args.horizon,
                seed=args.seed,
            )
        )
    else:
        trace = generate_bing_trace(
            BingTraceConfig(
                num_jobs=args.jobs,
                arrival_horizon=args.horizon,
                seed=args.seed,
            )
        )
    save_trace(trace, args.output)
    tasks = sum(s.num_tasks for j in trace for s in j.stages)
    print(f"wrote {len(trace)} jobs ({tasks} tasks) to {args.output}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from time import perf_counter

    trace = load_trace(args.trace)
    if args.scheduler not in SCHEDULERS:
        raise SystemExit(
            f"unknown scheduler {args.scheduler!r}; "
            f"choose from {sorted(SCHEDULERS)}"
        )
    backend = get_backend(args.workers)
    spec = RunSpec(
        trace=tuple(trace),
        scheduler=args.scheduler,
        knobs=_scheduler_knobs(args.scheduler, args),
        config=_experiment_config(args),
    )
    start = perf_counter()
    outcome = run_specs([spec], backend)[0]
    total_wall = perf_counter() - start
    if not outcome.ok:
        print(f"{args.scheduler}: FAILED ({outcome.error})", file=sys.stderr)
        if outcome.traceback:
            print(outcome.traceback, file=sys.stderr)
        return 1
    result = outcome.result
    _print_summary(args.scheduler, result)
    if args.json:
        from repro.bench.profile import dump_json

        dump_json(
            {
                "scheduler": args.scheduler,
                "trace": args.trace,
                "machines": args.machines,
                "seed": args.seed,
                "summary": result.summary(),
                "wall_seconds": result.wall_seconds,
                "placements": result.num_placements,
                "execution": _execution_stanza(
                    backend, [outcome], total_wall
                ),
            },
            args.json,
        )
        print(f"wrote {args.json}")
    if args.audit:
        # re-run with a kept engine to audit; run_trace does not expose
        # the engine, so audit on a fresh engine run
        from repro.sim.engine import Engine
        from repro.workload.trace import materialize_trace

        config = _experiment_config(args)
        cluster = config.make_cluster()
        jobs = materialize_trace(trace, cluster, seed=config.seed)
        scheduler = _maybe_federate(
            _make_scheduler(args.scheduler, args), config, trace=trace
        )
        engine = Engine(
            cluster,
            scheduler,
            jobs,
            config=config.make_engine_config(),
        )
        try:
            engine.run()
        finally:
            close = getattr(scheduler, "close", None)
            if close is not None:
                close()
        report = audit_engine(engine)
        if report.ok:
            print("audit: schedule satisfies all Section 3.1 constraints")
        else:
            dims = sorted(report.violated_dimensions())
            print(
                f"audit: {len(report)} violations "
                f"(over-allocated dimensions: {dims})"
            )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from time import perf_counter

    trace = load_trace(args.trace)
    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    unknown = [n for n in names if n not in SCHEDULERS]
    if unknown:
        raise SystemExit(
            f"unknown scheduler(s) {unknown}; choose from {sorted(SCHEDULERS)}"
        )
    backend = get_backend(args.workers)
    config = _experiment_config(args)

    def _spec_config(name: str):
        # only the Tetris-scorer family shards; baselines race centralized
        if config.shards > 1:
            from dataclasses import replace as dc_replace

            from repro.schedulers.tetris import TetrisScheduler

            if not issubclass(SCHEDULERS[name], TetrisScheduler):
                return dc_replace(config, shards=1)
        return config

    specs = [
        RunSpec(trace=tuple(trace), scheduler=name, config=_spec_config(name))
        for name in names
    ]
    start = perf_counter()
    outcomes = run_specs(specs, backend)
    total_wall = perf_counter() - start
    results = {}
    failed = []
    for outcome in outcomes:
        if outcome.ok:
            results[outcome.label] = outcome.result
            _print_summary(outcome.label, outcome.result)
        else:
            failed.append(outcome.label)
            print(f"{outcome.label:<14} FAILED ({outcome.error})")
    improvements = {}
    if args.baseline and args.baseline in results:
        base = results[args.baseline]
        print(f"\nimprovement over {args.baseline}:")
        for name, result in results.items():
            if name == args.baseline:
                continue
            jct = improvement_percent(base.mean_jct, result.mean_jct)
            makespan = improvement_percent(base.makespan, result.makespan)
            improvements[name] = {
                "jct_percent": jct, "makespan_percent": makespan,
            }
            print(
                f"  {name:<14} "
                f"JCT {jct:6.1f}%  "
                f"makespan {makespan:6.1f}%"
            )
    fidelity_failed = []
    fidelity_json = {}
    if args.fidelity and results:
        from dataclasses import replace as dc_replace

        from repro.metrics import packing_fidelity

        tol = args.fidelity_tolerance
        if config.shards > 1:
            # gate the sharded runs against their own centralized
            # references: same trace, same scheduler, --shards 1
            ref_config = dc_replace(config, shards=1)
            ref_outcomes = run_specs(
                [
                    RunSpec(trace=tuple(trace), scheduler=name,
                            config=ref_config, label=name)
                    for name in results
                    if _spec_config(name).shards > 1
                ],
                backend,
            )
            print(
                f"\npacking fidelity ({config.shards} shards vs "
                f"centralized, tolerance {tol:.1f}%):"
            )
            for ref in ref_outcomes:
                if not ref.ok or ref.label not in results:
                    fidelity_failed.append(ref.label)
                    print(f"  {ref.label:<14} reference run FAILED "
                          f"({ref.error})")
                    continue
                report = packing_fidelity(ref.result, results[ref.label])
                ok = report.within(tol)
                if not ok:
                    fidelity_failed.append(ref.label)
                fidelity_json[ref.label] = report.as_dict()
                print(
                    f"  {ref.label:<14} "
                    f"makespan {report.makespan_delta_pct:+6.2f}%  "
                    f"mean JCT {report.mean_jct_delta_pct:+6.2f}%  "
                    f"fragmentation "
                    f"{report.fragmentation_delta_points:+5.2f}pp  "
                    f"{'OK' if ok else 'OUTSIDE TOLERANCE'}"
                )
        elif args.baseline in results:
            # informational: each scheduler's packing vs the baseline
            base = results[args.baseline]
            print(f"\npacking fidelity vs {args.baseline}:")
            for name, result in results.items():
                if name == args.baseline:
                    continue
                report = packing_fidelity(base, result)
                fidelity_json[name] = report.as_dict()
                print(
                    f"  {name:<14} "
                    f"makespan {report.makespan_delta_pct:+6.2f}%  "
                    f"mean JCT {report.mean_jct_delta_pct:+6.2f}%  "
                    f"fragmentation "
                    f"{report.fragmentation_delta_points:+5.2f}pp"
                )
    if args.json:
        from repro.bench.profile import dump_json

        dump_json(
            {
                "trace": args.trace,
                "machines": args.machines,
                "seed": args.seed,
                "baseline": args.baseline,
                "summaries": {
                    name: result.summary()
                    for name, result in results.items()
                },
                "improvement_over_baseline": improvements,
                "fidelity": fidelity_json,
                "failed": failed,
                "execution": _execution_stanza(
                    backend, outcomes, total_wall
                ),
            },
            args.json,
        )
        print(f"wrote {args.json}")
    return 1 if failed or fidelity_failed else 0


#: sweepable Tetris knobs: CLI name -> TetrisConfig field
SWEEP_KNOBS = {
    "fairness": "fairness_knob",
    "barrier": "barrier_knob",
    "remote-penalty": "remote_penalty",
}


def cmd_sweep(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    values = [float(v) for v in args.values.split(",")]
    try:
        knob_field = SWEEP_KNOBS[args.knob]
    except KeyError:
        raise SystemExit(f"unknown knob {args.knob!r}")
    config = _experiment_config(args)
    specs = [
        RunSpec(
            trace=tuple(trace),
            scheduler="tetris",
            knobs={knob_field: value},
            config=config,
            label=f"{args.knob}={value:g}",
        )
        for value in values
    ]
    outcomes = run_specs(specs, get_backend(args.workers))
    print(f"{'value':>8}{'mean JCT':>12}{'makespan':>12}")
    failed = 0
    for value, outcome in zip(values, outcomes):
        if outcome.ok:
            result = outcome.result
            print(f"{value:>8.2f}{result.mean_jct:>12.1f}"
                  f"{result.makespan:>12.1f}")
        else:
            failed += 1
            print(f"{value:>8.2f}  FAILED ({outcome.error})")
    return 1 if failed else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """One fully-observed run: decision JSONL + Perfetto timeline + metrics."""
    import os

    from repro.estimation.tracker import ResourceTracker
    from repro.obs import DecisionTrace, Registry, write_chrome_trace
    from repro.profiling import Profiler
    from repro.sim.engine import Engine
    from repro.workload.trace import materialize_trace

    trace = load_trace(args.trace)
    config = _experiment_config(args)
    cluster = config.make_cluster()
    jobs = materialize_trace(trace, cluster, seed=config.seed)
    tracker = ResourceTracker(cluster) if config.use_tracker else None
    os.makedirs(args.output, exist_ok=True)
    decisions_path = os.path.join(args.output, "decisions.jsonl")
    timeline_path = os.path.join(args.output, "timeline.json")
    metrics_path = os.path.join(args.output, "metrics.prom")
    profiler = Profiler()
    registry = Registry()
    scheduler = _maybe_federate(
        _make_scheduler(args.scheduler, args), config, trace=trace
    )
    with DecisionTrace(decisions_path, max_events=args.max_events) as sink:
        engine = Engine(
            cluster,
            scheduler,
            jobs,
            tracker=tracker,
            config=config.make_engine_config(),
            profiler=profiler,
            decision_trace=sink,
            metrics=registry,
        )
        try:
            engine.run()
        finally:
            close = getattr(scheduler, "close", None)
            if close is not None:
                close()
        # wall-clock phase stats ride along in the same decision log
        for label in profiler.labels():
            s = profiler.stats(label)
            sink.emit(
                "phase_stats",
                label=label,
                count=s.count,
                total_ms=s.total * 1e3,
                mean_ms=s.mean * 1e3,
                min_ms=s.min * 1e3,
                max_ms=s.max * 1e3,
            )
        write_chrome_trace(engine, timeline_path)
        emitted, buffered = sink.emitted, len(sink)
    with open(metrics_path, "w", encoding="utf-8") as f:
        f.write(registry.render())
    print(
        f"{args.scheduler}: simulated {engine.now:.1f}s, "
        f"{len(engine.placement_log)} placements, "
        f"{emitted} decision events ({buffered} buffered)"
    )
    print(f"wrote {decisions_path}")
    print(f"wrote {timeline_path} (load at ui.perfetto.dev)")
    print(f"wrote {metrics_path}")
    return 0


def _print_profile_phases(path: str) -> int:
    """Render the phase table of an offline profile capture.

    Accepts any of the three phase-bearing artifacts in the repo: a
    ``BENCH_<scenario>.json`` bench profile, a history-store entry
    (which wraps one), or a saved ``/debug/profile`` response from a
    live serve daemon.
    """
    import json as _json

    with open(path, encoding="utf-8") as f:
        payload = _json.load(f)
    schema = payload.get("schema", "")
    if isinstance(schema, str) and schema.startswith(
        "repro.bench.history-entry/"
    ):
        meta = {
            "scenario": payload.get("scenario"),
            "git_sha": (payload.get("key") or {}).get("git_sha"),
        }
        payload = payload.get("profile", {})
    else:
        meta = {
            "scenario": payload.get("scenario"),
            "git_sha": (payload.get("meta") or {}).get("git_sha"),
        }
    phases = payload.get("phases") or {}
    if not phases:
        print(f"no phase data in {path}")
        return 1
    title = meta.get("scenario") or payload.get("phase") or "live"
    sha = meta.get("git_sha")
    print(f"profile: {title}" + (f" @ {str(sha)[:12]}" if sha else ""))
    header = (f"  {'phase':<28} {'count':>8} {'total ms':>12} "
              f"{'self ms':>12} {'mean ms':>10}")
    print(header)
    for label in sorted(phases):
        st = phases[label]
        # bench profiles store seconds under total/self_total; live
        # /debug/profile dumps store total_seconds/self_seconds + mean_ms
        total = st.get("total", st.get("total_seconds", 0.0)) * 1e3
        self_s = st.get("self_total", st.get("self_seconds"))
        self_ms = f"{self_s * 1e3:>12.2f}" if self_s is not None \
            else f"{'-':>12}"
        mean_ms = st.get("mean_ms")
        if mean_ms is None:
            mean_ms = st.get("mean", 0.0) * 1e3
        line = (f"  {label:<28} {st.get('count', 0):>8} {total:>12.2f} "
                f"{self_ms} {mean_ms:>10.3f}")
        window = st.get("window")
        if isinstance(window, dict):
            line += (f"  [{window['rate_per_sec']:.2f}/s, "
                     f"busy {window['busy_fraction']:.1%} "
                     f"over {window['seconds']:.0f}s]")
        print(line)
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """Summarize a decision JSONL written by `repro trace`."""
    from repro.obs import summarize_decision_log

    if args.log is None and not args.profile and not args.metrics:
        print("error: provide a decision log, --profile PATH, "
              "and/or --metrics PATH")
        return 2
    rc = 0
    if args.profile:
        rc = _print_profile_phases(args.profile)
    if args.log is None:
        if args.metrics:
            _print_cache_effectiveness(args.metrics)
            _print_federation_health(args.metrics)
        return rc
    summary = summarize_decision_log(args.log)
    print(f"events:     {summary['events_total']}")
    print(f"rounds:     {summary['rounds']}")
    print(f"placements: {summary['placements']}")
    if summary["by_type"]:
        print("by type:")
        for etype, count in sorted(summary["by_type"].items()):
            print(f"  {etype:<16} {count}")
    if summary["rejections"]:
        print("top rejection reasons:")
        for reason, count in list(summary["rejections"].items())[:10]:
            print(f"  {reason:<16} {count}")
    for key in ("alignment", "combined"):
        stats = summary[key]
        if stats["count"]:
            print(
                f"{key} scores: n={stats['count']} "
                f"mean={stats['mean']:.4f} "
                f"min={stats['min']:.4f} max={stats['max']:.4f}"
            )
    if summary["remote_penalized_candidates"]:
        print(
            "remote-penalized candidates: "
            f"{summary['remote_penalized_candidates']}"
        )
    if summary["placements_by_via"]:
        print("placements by path:")
        for via, count in sorted(summary["placements_by_via"].items()):
            print(f"  {via:<16} {count}")
    for phase in summary["phases"]:
        print(
            f"phase {phase['label']}: n={phase['count']} "
            f"total={phase['total_ms']:.2f}ms mean={phase['mean_ms']:.3f}ms"
        )
    if args.metrics:
        _print_cache_effectiveness(args.metrics)
        _print_federation_health(args.metrics)
    if summary["invalid_events"]:
        print(f"INVALID events: {summary['invalid_events']}")
        for error in summary["errors"]:
            print(f"  {error}")
        if args.strict:
            return 1
    return 0


def _print_cache_effectiveness(metrics_path: str) -> None:
    """Summarize the incremental-core counters from a metrics exposition
    file (the ``metrics.prom`` a ``repro trace`` run writes): candidate
    pack-cache hit rate, invalidations by scope, live signature groups,
    and the fluid model's sparse-recompute footprint."""
    from repro.obs import parse_exposition

    with open(metrics_path, encoding="utf-8") as f:
        metrics = parse_exposition(f.read())
    print("cache effectiveness:")
    pack = metrics.get("repro_tetris_pack_cache_total", {})
    hits = pack.get("outcome=hit", 0.0)
    misses = pack.get("outcome=miss", 0.0)
    if hits + misses:
        print(
            f"  pack cache:      {hits:.0f} hits / {misses:.0f} misses "
            f"({hits / (hits + misses):.1%} hit rate)"
        )
    for key, count in sorted(
        metrics.get("repro_tetris_cache_invalidations_total", {}).items()
    ):
        scope = key.split("=", 1)[1] if "=" in key else key or "all"
        print(f"  invalidations:   {count:.0f} ({scope})")
    groups = metrics.get("repro_tetris_signature_groups", {}).get("")
    if groups is not None:
        print(f"  live groups:     {groups:.0f} (at end of run)")
    recomputes = metrics.get(
        "repro_fluid_sparse_recomputes_total", {}
    ).get("", 0.0)
    if recomputes:
        slots = metrics.get(
            "repro_fluid_slots_recomputed_total", {}
        ).get("", 0.0)
        flows = metrics.get(
            "repro_fluid_flows_recomputed_total", {}
        ).get("", 0.0)
        print(
            f"  fluid recompute: {recomputes:.0f} sparse passes, "
            f"{slots / recomputes:.1f} slots / "
            f"{flows / recomputes:.1f} flows touched per pass"
        )


def _print_federation_health(metrics_path: str) -> None:
    """Summarize the federation's optimistic-concurrency counters from a
    metrics exposition file: proposal/commit volume, conflict rate by
    kind, retries and aborts, spill promotions, and commit latency.
    Silent for non-federated runs (no shards gauge or a single shard)."""
    from repro.obs import parse_exposition

    with open(metrics_path, encoding="utf-8") as f:
        metrics = parse_exposition(f.read())
    shards = metrics.get("repro_federation_shards", {}).get("")
    if not shards or shards <= 1:
        return
    proposals = metrics.get(
        "repro_federation_proposals_total", {}
    ).get("", 0.0)
    commits = metrics.get(
        "repro_federation_commits_total", {}
    ).get("", 0.0)
    conflicts = metrics.get("repro_federation_conflicts_total", {})
    total_conflicts = sum(conflicts.values())
    print(f"federation ({shards:.0f} shards):")
    if proposals:
        print(
            f"  proposals:       {proposals:.0f} "
            f"({commits:.0f} committed, "
            f"{total_conflicts / proposals:.2%} conflict rate)"
        )
    for key, count in sorted(conflicts.items()):
        if not count:
            continue
        kind = key.split("=", 1)[1] if "=" in key else key
        print(f"  conflicts:       {count:.0f} ({kind})")
    retries = metrics.get("repro_federation_retries_total", {}).get("", 0.0)
    aborts = metrics.get("repro_federation_aborts_total", {}).get("", 0.0)
    if retries or aborts:
        print(f"  retries/aborts:  {retries:.0f} / {aborts:.0f}")
    spills = metrics.get("repro_federation_spills_total", {}).get("", 0.0)
    if spills:
        print(f"  spill promotions: {spills:.0f}")
    count = metrics.get(
        "repro_federation_commit_seconds_count", {}
    ).get("", 0.0)
    total = metrics.get(
        "repro_federation_commit_seconds_sum", {}
    ).get("", 0.0)
    if count:
        print(
            f"  commit latency:  {total / count * 1000.0:.3f}ms mean "
            f"over {count:.0f} rounds"
        )


def _parse_listen(spec: str) -> tuple:
    """Parse a ``--listen HOST:PORT`` spec (port 0 = ephemeral)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(
            f"--listen expects HOST:PORT (port 0 for ephemeral), "
            f"got {spec!r}"
        )
    return host or "127.0.0.1", int(port)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the streaming scheduler daemon over a job-arrival stream."""
    import asyncio

    from repro.estimation.tracker import ResourceTracker
    from repro.obs import DecisionTrace, Registry, TelemetryServer
    from repro.profiling import Profiler
    from repro.serve import (
        AdmissionConfig,
        AdmissionController,
        SchedulerService,
        ServeConfig,
        SyntheticSource,
        TraceReplaySource,
    )
    from repro.sim.engine import Engine
    from repro.workload.trace import materialize_trace

    config = _experiment_config(args)
    cluster = config.make_cluster()
    if args.trace:
        trace = load_trace(args.trace)
        jobs = materialize_trace(trace, cluster, seed=config.seed)
        source = TraceReplaySource(jobs, speedup=args.speedup)
    else:
        source = SyntheticSource(
            num_jobs=args.jobs,
            tasks_per_job=args.tasks_per_job,
            interarrival=args.interarrival,
            speedup=args.speedup,
        )
    tracker = ResourceTracker(cluster) if config.use_tracker else None
    registry = Registry()
    # /debug/trace is a debug knob: a full decision trace is expensive
    # (per-candidate events), so the ring is only wired when asked for
    decision_trace = (
        DecisionTrace(max_events=args.trace_ring)
        if args.trace_ring
        else None
    )
    # /debug/profile rides the same rule: without --listen nothing can
    # scrape it, so no profiler is created and the engine's timing
    # hooks stay on their None fast path (zero overhead)
    profiler = Profiler() if args.listen else None
    scheduler = _maybe_federate(_make_scheduler(args.scheduler, args), config)
    engine = Engine(
        cluster,
        scheduler,
        [],
        tracker=tracker,
        config=config.make_engine_config(),
        profiler=profiler,
        decision_trace=decision_trace,
        metrics=registry,
    )
    admission = AdmissionController(
        AdmissionConfig(
            rate=args.rate,
            burst=args.burst,
            queue_cap=args.queue_cap,
            policy=args.policy,
        )
    )
    service = SchedulerService(
        engine,
        source,
        admission,
        ServeConfig(
            max_batch=args.batch_cap,
            duration=args.duration,
            # rolling-window gauges only matter when something can
            # scrape them; off otherwise so an unobserved daemon pays
            # nothing extra
            window_seconds=args.window if args.listen else None,
        ),
        registry=registry,
    )
    telemetry = None
    if args.listen:
        host, port = _parse_listen(args.listen)
        telemetry = TelemetryServer(
            host,
            port,
            registry=registry,
            health_fn=service.health,
            status_fn=service.status_snapshot,
            trace=decision_trace,
            profile_fn=service.profile_snapshot,
        )
        bound_host, bound_port = telemetry.start()
        # flush so a supervising process can read the bound (possibly
        # ephemeral) port before the replay finishes
        print(
            f"telemetry: listening on http://{bound_host}:{bound_port}",
            flush=True,
        )
    try:
        report = asyncio.run(service.serve())
    finally:
        if telemetry is not None:
            telemetry.stop()
    adm = report.admission
    print(
        f"served {report.jobs_committed}/{report.jobs_offered} jobs "
        f"({report.placements} placements, {report.tasks_total} tasks) "
        f"in {report.wall_seconds:.2f}s wall"
    )
    print(
        f"throughput: {report.placements_per_sec:,.0f} placements/s "
        f"sustained ({report.drive_seconds:.2f}s driving); "
        f"simulated {report.sim_time:.1f}s"
    )
    if adm.get("rejected"):
        print(
            f"rejected {adm['rejected']} "
            f"(rate={adm['rejected_rate']}, "
            f"queue_full={adm['rejected_queue_full']}, "
            f"closed={adm['rejected_closed']}); "
            f"peak queue depth {adm['peak_depth']}"
        )
    if report.jobs_dropped_on_shutdown:
        print(
            f"dropped {report.jobs_dropped_on_shutdown} queued jobs at "
            f"shutdown ({report.shutdown_reason})"
        )
    print(
        f"invariants: {report.invariant_checks} checks, "
        f"{report.invariant_violations} violations"
    )
    if args.json:
        from repro.bench.profile import dump_json

        dump_json(report.as_dict(), args.json)
        print(f"wrote {args.json}")
    return 1 if report.invariant_violations else 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct a decision narrative from a recorded decision log."""
    import json

    from repro.obs import (
        explain_task,
        explain_window,
        parse_task_ref,
        render_task_explanation,
        render_window_explanation,
    )

    if args.task:
        try:
            job, stage, index = parse_task_ref(args.task)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = explain_task(args.log, job, stage, index)
        if args.json:
            print(json.dumps(result, indent=2))
        else:
            print(render_task_explanation(result, limit=args.limit))
        return 0 if result["found"] else 1
    try:
        t0_raw, t1_raw = args.window.split(":", 1)
        t0, t1 = float(t0_raw), float(t1_raw)
    except ValueError:
        print(
            f"error: --window expects T0:T1 (numbers), got {args.window!r}",
            file=sys.stderr,
        )
        return 2
    summary = explain_window(args.log, t0, t1)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(render_window_explanation(summary))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import render_all

    written = render_all(args.output, quick=not args.full)
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    path = generate_report(
        args.output, quick=not args.full, seed=args.seed
    )
    print(f"wrote {path}")
    return 0


#: where the repo keeps its committed baseline profiles
BENCH_BASELINE_DIR = "benchmarks/baselines"

#: default root of the per-commit profile history store (mirrors
#: repro.bench.history.DEFAULT_HISTORY_DIR without importing it at
#: parser-build time)
DEFAULT_HISTORY_DIR = ".bench-history"


def _bench_scenarios(args: argparse.Namespace) -> list:
    from repro.bench import scenario_names

    if args.scenarios:
        return [n.strip() for n in args.scenarios.split(",") if n.strip()]
    return scenario_names(quick_only=args.quick)


def cmd_bench_run(args: argparse.Namespace) -> int:
    """Capture a BENCH_<scenario>.json profile per requested scenario."""
    from repro.bench import (
        HistoryStore,
        ProfileStore,
        capture,
        get_scenario,
        write_trajectory_artifact,
    )

    store = ProfileStore(args.output)
    history = HistoryStore(args.history) if args.history else None
    for name in _bench_scenarios(args):
        try:
            scenario = get_scenario(name)  # fail fast on unknown names
        except KeyError as exc:
            raise SystemExit(str(exc))
        if args.shards is not None:
            from dataclasses import replace as dc_replace

            if not hasattr(scenario, "shards"):
                raise SystemExit(
                    f"scenario {name!r} is a {scenario.kind} scenario; "
                    "--shards applies to trace scenarios only"
                )
            scenario = dc_replace(scenario, shards=args.shards)
        profile = capture(
            scenario,
            repeats=args.repeats,
            workers=args.workers,
            kernel_backend=args.backend,
        )
        path = store.save(profile)
        wall = profile["metrics"].get("wall_seconds") or \
            profile["metrics"].get("round_ms")
        headline = f"{wall['value']:.2f}{wall['unit']}" if wall else "-"
        print(f"{name:<14} captured ({headline} median of "
              f"{args.repeats}) -> {path}")
        if history is not None:
            entry = history.append(profile)
            print(f"{'':<14} history  -> {entry.path}")
            if not args.no_trajectory:
                artifact = write_trajectory_artifact(
                    history, name, args.trajectory_dir
                )
                print(f"{'':<14} trajectory -> {artifact}")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Gate fresh profiles against the committed baseline."""
    from repro.bench import ProfileStore, compare_profiles
    from repro.bench.profile import dump_json

    baseline_store = ProfileStore(args.baseline)
    current_store = ProfileStore(args.current)
    names = (
        [n.strip() for n in args.scenarios.split(",") if n.strip()]
        if args.scenarios
        else current_store.scenarios()
    )
    if not names:
        print(f"no profiles found under {args.current}")
        return 1
    failed = []
    results = []
    for name in names:
        current = current_store.load(name)
        if current is None:
            print(f"scenario {name}: no current profile under "
                  f"{args.current}")
            failed.append(name)
            continue
        baseline = baseline_store.load(name)
        if baseline is None:
            print(f"scenario {name}: no baseline under {args.baseline} "
                  "(skipped; commit one with `repro bench run -o "
                  f"{args.baseline}`)")
            continue
        result = compare_profiles(
            baseline,
            current,
            timing_tolerance=args.timing_tolerance,
            fidelity_tolerance=args.fidelity_tolerance,
        )
        results.append(result)
        print(result.render())
        if not result.ok:
            failed.append(name)
    if args.json:
        dump_json(
            {
                "baseline_dir": args.baseline,
                "current_dir": args.current,
                "failed": sorted(failed),
                "scenarios": {
                    r.scenario: {
                        "ok": r.ok,
                        "config_mismatch": r.config_mismatch,
                        "notes": r.notes,
                        "verdicts": [
                            {
                                "name": v.name,
                                "kind": v.kind,
                                "status": v.status,
                                "baseline": v.baseline,
                                "current": v.current,
                                "ratio": v.ratio,
                                "note": v.note,
                            }
                            for v in r.verdicts
                        ],
                    }
                    for r in results
                },
            },
            args.json,
        )
        print(f"wrote {args.json}")
    if failed:
        print(f"\nDEGRADED: {', '.join(sorted(failed))}")
        return 1
    print("\nall scenarios within tolerance")
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    """Render the perf trajectory across every stored profile."""
    from repro.bench import collect_profiles, render_trajectory

    directories = [d.strip() for d in args.dirs.split(",") if d.strip()]
    profiles = collect_profiles(directories)
    if not profiles:
        print(f"no BENCH_*.json profiles under: {', '.join(directories)}")
        return 1
    text = render_trajectory(profiles, fmt=args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        print(f"wrote {args.output} ({len(profiles)} profiles)")
    else:
        print(text)
    return 0


def _history_dirs(spec: str) -> list:
    return [d.strip() for d in spec.split(",") if d.strip()]


def cmd_bench_history(args: argparse.Namespace) -> int:
    """Render a scenario's per-commit perf trend from the history store."""
    from repro.bench import HistoryStore, collect_history, render_trend
    from repro.bench.profile import dump_json

    directories = _history_dirs(args.history)
    if args.compact is not None:
        for directory in directories:
            removed = HistoryStore(directory).compact(
                scenario=args.scenario, keep_last=args.compact
            )
            if removed:
                print(f"compacted {directory}: removed {len(removed)} "
                      "superseded entries")
    entries = collect_history(directories, args.scenario)
    if not entries:
        print(f"no history entries for scenario {args.scenario!r} "
              f"under: {', '.join(directories)}")
        return 1
    if args.limit is not None and args.limit > 0:
        entries = entries[-args.limit:]
    metrics = (
        [m.strip() for m in args.metrics.split(",") if m.strip()]
        if args.metrics
        else None
    )
    print(render_trend(entries, metrics=metrics, fmt=args.format))
    if args.json:
        dump_json(
            {
                "scenario": args.scenario,
                "history_dirs": directories,
                "entries": [e.as_index_row() for e in entries],
            },
            args.json,
        )
        print(f"wrote {args.json}")
    return 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    """Per-phase delta view between two history entries (commits)."""
    from repro.bench import HistoryStore, diff_entries
    from repro.bench.profile import dump_json

    store = HistoryStore(args.history)
    try:
        older = store.resolve(args.scenario, args.ref_a)
        newer = store.resolve(args.scenario, args.ref_b)
    except KeyError as exc:
        print(f"error: {exc.args[0] if exc.args else exc}")
        return 1
    print(f"diff {older.short_sha} ({older.calibration_stamp}) -> "
          f"{newer.short_sha} ({newer.calibration_stamp})")
    result = diff_entries(
        older,
        newer,
        timing_tolerance=args.timing_tolerance,
        fidelity_tolerance=args.fidelity_tolerance,
    )
    print(result.render())
    attribution = result.attribution()
    if attribution:
        print("phase attribution (worst first): "
              + ", ".join(v.name for v in attribution))
    if args.json:
        dump_json(
            {
                "scenario": args.scenario,
                "older": older.as_index_row(),
                "newer": newer.as_index_row(),
                "ok": result.ok,
                "notes": result.notes,
                "degraded": [v.name for v in result.degraded],
                "attribution": [v.name for v in attribution],
            },
            args.json,
        )
        print(f"wrote {args.json}")
    if not result.ok and not args.no_gate:
        return 1
    return 0


def cmd_bench_bisect(args: argparse.Namespace) -> int:
    """Localize the first commit that degraded a scenario."""
    from repro.bench import HistoryStore, git_bisect
    from repro.bench.profile import dump_json

    history = HistoryStore(args.history) if args.history else None
    try:
        result = git_bisect(
            args.scenario,
            good=args.good,
            bad=args.bad,
            repo=args.repo,
            history=history,
            timing_tolerance=args.timing_tolerance,
            fidelity_tolerance=args.fidelity_tolerance,
            min_repeats=args.min_repeats,
            max_repeats=args.max_repeats,
            capture_timeout=args.timeout,
            progress=print,
        )
    except RuntimeError as exc:
        print(f"error: {exc}")
        return 1
    print(result.render())
    for line in result.log:
        print(f"  | {line}")
    if args.json:
        dump_json(
            {
                "scenario": args.scenario,
                "good": args.good,
                "bad": args.bad,
                "culprit": result.culprit,
                "oracle_calls": result.oracle_calls,
                "steps": [
                    {
                        "sha": s.sha,
                        "verdict": s.verdict,
                        "repeats": s.repeats,
                        "escalations": s.escalations,
                        "cached": s.cached,
                        "degraded": s.degraded,
                    }
                    for s in result.steps
                ],
                "log": result.log,
            },
            args.json,
        )
        print(f"wrote {args.json}")
    return 0 if result.culprit else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tetris (SIGCOMM 2014) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a workload trace")
    gen.add_argument("--kind", choices=("suite", "facebook", "bing"),
                     default="suite")
    gen.add_argument("--jobs", type=int, default=40)
    gen.add_argument("--task-scale", type=float, default=0.05)
    gen.add_argument("--horizon", type=float, default=1000.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=cmd_generate)

    def common(p):
        p.add_argument("trace", help="trace JSON from `repro generate`")
        p.add_argument("--machines", type=int, default=20)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-tracker", action="store_true",
                       help="disable the resource tracker")
        shards_args(p)

    def shards_args(p):
        p.add_argument(
            "--shards", type=int, default=1, metavar="N",
            help="partition the machine plane across N scheduler shards "
            "with optimistic conflict resolution (1 = centralized, "
            "bit-identical to no sharding)",
        )
        p.add_argument(
            "--shard-backend", choices=("inline", "process"),
            default="inline",
            help="where shards run: in this process against the live "
            "state, or as a persistent worker pool with delta-encoded "
            "state sync",
        )
        p.add_argument(
            "--shard-partitioner", choices=("rack", "contiguous"),
            default="rack",
            help="machine partitioner (rack never splits a rack across "
            "shards)",
        )

    def workers_arg(p):
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="parallel worker processes (default: the "
            f"{WORKERS_ENV} env var, else 1 = serial); results are "
            "bit-identical to a serial run",
        )

    run = sub.add_parser("run", help="run one scheduler on a trace")
    common(run)
    workers_arg(run)
    run.add_argument("--scheduler", default="tetris",
                     choices=sorted(SCHEDULERS))
    run.add_argument("--fairness-knob", type=float, default=None)
    run.add_argument("--barrier-knob", type=float, default=None)
    run.add_argument("--audit", action="store_true",
                     help="verify the Section 3.1 constraints afterwards")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="also write the summary as JSON")
    run.set_defaults(func=cmd_run)

    cmp_ = sub.add_parser("compare", help="race several schedulers")
    common(cmp_)
    workers_arg(cmp_)
    cmp_.add_argument("--schedulers", default="tetris,slot-fair,drf")
    cmp_.add_argument("--baseline", default="slot-fair")
    cmp_.add_argument(
        "--fidelity", action="store_true",
        help="report packing-fidelity deltas (makespan / mean JCT / "
        "fragmentation); with --shards N the sharded runs are gated "
        "against their centralized references",
    )
    cmp_.add_argument(
        "--fidelity-tolerance", type=float, default=5.0, metavar="PCT",
        help="max percent a sharded run may be worse than centralized "
        "before compare --fidelity fails (default 5)",
    )
    cmp_.add_argument("--json", default=None, metavar="PATH",
                      help="also write the per-scheduler summaries as JSON")
    cmp_.set_defaults(func=cmd_compare)

    sweep = sub.add_parser("sweep", help="sweep a Tetris knob")
    common(sweep)
    workers_arg(sweep)
    sweep.add_argument("--knob", default="fairness",
                       choices=sorted(SWEEP_KNOBS))
    sweep.add_argument("--values", default="0,0.25,0.5,0.75")
    sweep.set_defaults(func=cmd_sweep)

    tr = sub.add_parser(
        "trace",
        help="run with full observability: decision JSONL, Perfetto "
        "timeline, metrics",
    )
    common(tr)
    tr.add_argument("--scheduler", default="tetris",
                    choices=sorted(SCHEDULERS))
    tr.add_argument("--fairness-knob", type=float, default=None)
    tr.add_argument("--barrier-knob", type=float, default=None)
    tr.add_argument("-o", "--output", default="obs",
                    help="output directory for the three artifacts")
    tr.add_argument("--max-events", type=int, default=200_000,
                    help="decision-trace ring-buffer size")
    tr.set_defaults(func=cmd_trace)

    ins = sub.add_parser(
        "inspect", help="summarize a decision log from `repro trace` "
        "and/or an offline profile capture"
    )
    ins.add_argument("log", nargs="?", default=None,
                     help="decisions.jsonl path")
    ins.add_argument("--profile", default=None, metavar="PATH",
                     help="render the phase table of an offline profile: "
                     "a BENCH_<scenario>.json capture, a history-store "
                     "entry, or a saved /debug/profile response")
    ins.add_argument("--strict", action="store_true",
                     help="exit non-zero if any event fails validation")
    ins.add_argument("--metrics", default=None, metavar="PATH",
                     help="metrics.prom from the same `repro trace` run; "
                     "adds a cache-effectiveness section (candidate-index "
                     "hit/miss/invalidation counters, fluid sparse-"
                     "recompute footprint)")
    ins.set_defaults(func=cmd_inspect)

    exp = sub.add_parser(
        "explain",
        help="reconstruct a placement's decision narrative from a "
        "decision log (`repro trace` output or a serve --trace-ring "
        "dump)",
    )
    exp.add_argument("log", help="decisions.jsonl path")
    exp_what = exp.add_mutually_exclusive_group(required=True)
    exp_what.add_argument(
        "--task", default=None, metavar="JOB/STAGE/IDX",
        help="explain one task: every consideration, rejection, "
        "fairness cut, and the winning score decomposition",
    )
    exp_what.add_argument(
        "--window", default=None, metavar="T0:T1",
        help="aggregate every decision in a simulated-time window",
    )
    exp.add_argument("--limit", type=int, default=10,
                     help="competing candidates to show per decision")
    exp.add_argument("--json", action="store_true",
                     help="emit the full explanation as JSON")
    exp.set_defaults(func=cmd_explain)

    serve = sub.add_parser(
        "serve",
        help="run the streaming scheduler daemon over a job-arrival "
        "stream (trace replay or generator)",
    )
    serve.add_argument(
        "trace", nargs="?", default=None,
        help="trace JSON to replay (omit to use the generator source)",
    )
    serve.add_argument("--machines", type=int, default=20)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--no-tracker", action="store_true",
                       help="disable the resource tracker")
    shards_args(serve)
    serve.add_argument("--scheduler", default="tetris",
                       choices=sorted(SCHEDULERS))
    serve.add_argument("--fairness-knob", type=float, default=None)
    serve.add_argument("--barrier-knob", type=float, default=None)
    serve.add_argument("--jobs", type=int, default=50,
                       help="generator mode: jobs to emit")
    serve.add_argument("--tasks-per-job", type=int, default=10,
                       help="generator mode: tasks per job")
    serve.add_argument("--interarrival", type=float, default=1.0,
                       help="generator mode: simulated seconds between jobs")
    serve.add_argument("--rate", type=float, default=None,
                       help="admission rate limit in jobs per wall second "
                       "(default: unlimited)")
    serve.add_argument("--burst", type=float, default=8.0,
                       help="token-bucket burst size in jobs")
    serve.add_argument("--queue-cap", type=int, default=1024,
                       help="pending-queue bound (the daemon's memory cap)")
    serve.add_argument("--policy", choices=("reject", "block"),
                       default="reject",
                       help="what a full queue does to a new arrival")
    serve.add_argument("--speedup", type=float, default=0.0,
                       help="time compression for wall-paced replay "
                       "(simulated seconds per wall second; 0 = no pacing, "
                       "deliver as fast as the consumer drains)")
    serve.add_argument("--duration", type=float, default=None,
                       help="wall-clock cap in seconds; queued arrivals "
                       "are dropped at expiry, committed jobs finish")
    serve.add_argument("--batch-cap", type=int, default=64,
                       help="max arrivals committed per scheduling batch")
    serve.add_argument("--json", default=None, metavar="PATH",
                       help="also write the full serve report as JSON")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="bind the live telemetry plane (/metrics, "
                       "/healthz, /status, /debug/trace, "
                       "/debug/profile); port 0 picks an ephemeral "
                       "port and prints it; unset = no server thread "
                       "at all")
    serve.add_argument("--window", type=float, default=60.0,
                       help="rolling-window span in seconds for the "
                       "sliding telemetry gauges (only active with "
                       "--listen)")
    serve.add_argument("--trace-ring", type=int, default=0,
                       metavar="N",
                       help="keep the last N decision events in memory "
                       "for /debug/trace (0 = tracing off; full decision "
                       "tracing costs per-candidate event emission)")
    serve.set_defaults(func=cmd_serve)

    figs = sub.add_parser(
        "figures", help="render the paper's figures as SVG files"
    )
    figs.add_argument("-o", "--output", default="figures")
    figs.add_argument("--full", action="store_true",
                      help="benchmark-scale runs (slower)")
    figs.set_defaults(func=cmd_figures)

    report = sub.add_parser(
        "report", help="run the core experiments, write a Markdown report"
    )
    report.add_argument("-o", "--output", default="report.md")
    report.add_argument("--full", action="store_true",
                        help="benchmark-scale runs (slower)")
    report.add_argument("--seed", type=int, default=1)
    report.set_defaults(func=cmd_report)

    bench = sub.add_parser(
        "bench",
        help="capture, compare, and report performance profiles "
        "(BENCH_<scenario>.json)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    brun = bench_sub.add_parser(
        "run", help="capture profiles for the benchmark scenarios"
    )
    brun.add_argument("--scenarios", default=None,
                      help="comma-separated scenario names "
                      "(default: the quick set, or all with --all)")
    group = brun.add_mutually_exclusive_group()
    group.add_argument("--quick", dest="quick", action="store_true",
                       default=True,
                       help="quick scenario set (default)")
    group.add_argument("--all", dest="quick", action="store_false",
                       help="every scenario, including the slow ones")
    brun.add_argument("--repeats", type=int, default=3,
                      help="independent repeats per scenario "
                      "(profiles store the median + raw samples)")
    brun.add_argument("-o", "--output", default="bench-out",
                      help="profile output directory")
    brun.add_argument("--history", nargs="?", default=None,
                      const=DEFAULT_HISTORY_DIR, metavar="DIR",
                      help="also append each capture to the per-commit "
                      f"history store (default dir: {DEFAULT_HISTORY_DIR})")
    brun.add_argument("--trajectory-dir", default=".", metavar="DIR",
                      help="where BENCH_<scenario>.json trajectory "
                      "pointer artifacts land when --history is on "
                      "(default: repo root)")
    brun.add_argument("--no-trajectory", action="store_true",
                      help="append to history without refreshing the "
                      "trajectory artifacts")
    brun.add_argument("--backend", default=None,
                      choices=("scalar", "numpy", "numba"),
                      help="kernel backend for the scheduling hot path "
                      "(default: $REPRO_BACKEND or numpy); recorded in "
                      "the profile meta — comparisons never cross "
                      "backends")
    brun.add_argument("--shards", type=int, default=None, metavar="N",
                      help="override the scenario's scheduler shard "
                      "count (trace scenarios only); recorded in the "
                      "profile meta — comparisons never cross shard "
                      "configs")
    workers_arg(brun)
    brun.set_defaults(func=cmd_bench_run)

    bcmp = bench_sub.add_parser(
        "compare",
        help="compare fresh profiles against the committed baseline; "
        "exits non-zero on confirmed degradation",
    )
    bcmp.add_argument("--baseline", default=BENCH_BASELINE_DIR,
                      help="baseline profile directory")
    bcmp.add_argument("--current", default="bench-out",
                      help="freshly captured profile directory")
    bcmp.add_argument("--scenarios", default=None,
                      help="restrict to these scenarios "
                      "(default: every current profile)")
    bcmp.add_argument("--timing-tolerance", type=float, default=0.5,
                      help="relative band for timing metrics "
                      "(0.5 = flag beyond 1.5x)")
    bcmp.add_argument("--fidelity-tolerance", type=float, default=0.02,
                      help="relative band for fidelity metrics")
    bcmp.add_argument("--json", default=None, metavar="PATH",
                      help="also write the structured verdicts as JSON")
    bcmp.set_defaults(func=cmd_bench_compare)

    brep = bench_sub.add_parser(
        "report", help="render the trajectory across stored profiles"
    )
    brep.add_argument("--dirs",
                      default=f"{BENCH_BASELINE_DIR},bench-out",
                      help="comma-separated profile directories "
                      "(missing ones are skipped)")
    brep.add_argument("--format", choices=("term", "md"), default="term")
    brep.add_argument("-o", "--output", default=None,
                      help="write to a file instead of stdout")
    brep.set_defaults(func=cmd_bench_report)

    bhist = bench_sub.add_parser(
        "history",
        help="per-commit perf trend of one scenario from the history "
        "store",
    )
    bhist.add_argument("--scenario", required=True)
    bhist.add_argument("--history", default=DEFAULT_HISTORY_DIR,
                       help="comma-separated history store roots")
    bhist.add_argument("--metrics", default=None,
                       help="comma-separated metric names "
                       "(default: headline + phase timings present)")
    bhist.add_argument("--limit", type=int, default=None,
                       help="show only the newest N entries")
    bhist.add_argument("--format", choices=("term", "md"), default="term")
    bhist.add_argument("--compact", type=int, default=None, metavar="N",
                       help="first compact each store: keep the newest N "
                       "entries plus one per (commit, host-speed class)")
    bhist.add_argument("--json", default=None, metavar="PATH",
                       help="also write the entry index as JSON")
    bhist.set_defaults(func=cmd_bench_history)

    bdiff = bench_sub.add_parser(
        "diff",
        help="per-phase delta view between two commits' history "
        "entries; exits non-zero on confirmed degradation",
    )
    bdiff.add_argument("ref_a", help="older entry: SHA prefix or @N "
                       "(@0 = newest)")
    bdiff.add_argument("ref_b", help="newer entry: SHA prefix or @N")
    bdiff.add_argument("--scenario", required=True)
    bdiff.add_argument("--history", default=DEFAULT_HISTORY_DIR,
                       help="history store root")
    bdiff.add_argument("--timing-tolerance", type=float, default=None)
    bdiff.add_argument("--fidelity-tolerance", type=float, default=None)
    bdiff.add_argument("--no-gate", action="store_true",
                       help="informational mode: report deltas but "
                       "always exit 0 (for cross-host CI views)")
    bdiff.add_argument("--json", default=None, metavar="PATH",
                       help="also write the structured diff as JSON")
    bdiff.set_defaults(func=cmd_bench_diff)

    bbisect = bench_sub.add_parser(
        "bisect",
        help="drive `git bisect` with the degradation detector as "
        "oracle to find the first bad commit",
    )
    bbisect.add_argument("--scenario", required=True)
    bbisect.add_argument("--good", required=True,
                         help="known-good rev (baseline side)")
    bbisect.add_argument("--bad", required=True,
                         help="known-bad rev (usually HEAD)")
    bbisect.add_argument("--repo", default=".",
                         help="git checkout to bisect in (must be clean)")
    bbisect.add_argument("--history", nargs="?", default=None,
                         const=DEFAULT_HISTORY_DIR, metavar="DIR",
                         help="reuse/store per-commit profiles in this "
                         "history store "
                         f"(default dir: {DEFAULT_HISTORY_DIR})")
    bbisect.add_argument("--timing-tolerance", type=float, default=0.5)
    bbisect.add_argument("--fidelity-tolerance", type=float, default=0.02)
    bbisect.add_argument("--min-repeats", type=int, default=3)
    bbisect.add_argument("--max-repeats", type=int, default=12,
                         help="ceiling for adaptive repeat escalation")
    bbisect.add_argument("--timeout", type=float, default=1800.0,
                         help="per-capture wall-clock timeout in seconds")
    bbisect.add_argument("--json", default=None, metavar="PATH",
                         help="also write the bisect transcript as JSON")
    bbisect.set_defaults(func=cmd_bench_bisect)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
