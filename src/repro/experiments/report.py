"""One-command replication report.

``generate_report(path)`` runs the core comparison and knob sweeps and
writes a self-contained Markdown report: headline scheduler comparison,
per-job improvement distribution, the fairness-knob trade-off, wastage
from over-allocation, and the §2.3 upper bound.  Exposed on the command
line as ``python -m repro report -o report.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.wastage import excess_holding
from repro.cluster.cluster import Cluster
from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import (
    improvement_distribution,
    improvement_percent,
)
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.schedulers.upper_bound import aggregate_upper_bound
from repro.sim.engine import Engine
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite

__all__ = ["generate_report"]

KNOBS = (0.0, 0.25, 0.5, 0.99)


def _md_table(header: List[str], rows: List[List]) -> List[str]:
    out = ["| " + " | ".join(header) + " |"]
    out.append("|" + "---|" * len(header))
    for row in rows:
        cells = [
            f"{c:.1f}" if isinstance(c, float) else str(c) for c in row
        ]
        out.append("| " + " | ".join(cells) + " |")
    out.append("")
    return out


def generate_report(
    output_path,
    quick: bool = True,
    seed: int = 1,
) -> Path:
    """Run the experiments and write the Markdown report."""
    if quick:
        workload = WorkloadSuiteConfig(
            num_jobs=20, task_scale=0.04, arrival_horizon=600, seed=seed
        )
        machines = 12
    else:
        workload = WorkloadSuiteConfig(
            num_jobs=40, task_scale=0.05, arrival_horizon=1000, seed=seed
        )
        machines = 20
    trace = generate_workload_suite(workload)
    config = ExperimentConfig(num_machines=machines, seed=seed,
                              use_tracker=True)

    lines: List[str] = [
        "# Tetris reproduction report",
        "",
        f"Workload: {workload.num_jobs} jobs "
        f"({sum(s.num_tasks for j in trace for s in j.stages)} tasks), "
        f"{machines} machines, seed {seed}.",
        "",
        "## Scheduler comparison",
        "",
    ]

    results = run_comparison(
        trace,
        {
            "tetris": TetrisScheduler,
            "slot-fair": SlotFairScheduler,
            "capacity": CapacityScheduler,
            "drf": DRFScheduler,
        },
        config,
    )
    rows = []
    for name, result in results.items():
        jcts = list(result.collector.completion_times().values())
        rows.append([
            name,
            result.mean_jct,
            float(np.median(jcts)),
            result.makespan,
            result.collector.mean_task_duration(),
        ])
    lines += _md_table(
        ["scheduler", "mean JCT (s)", "median JCT (s)", "makespan (s)",
         "task duration (s)"],
        rows,
    )

    lines += ["## Tetris improvement per job", ""]
    tetris_jcts = results["tetris"].completion_by_name()
    rows = []
    for baseline in ("slot-fair", "capacity", "drf"):
        dist = improvement_distribution(
            results[baseline].completion_by_name(), tetris_jcts
        )
        rows.append([
            f"vs {baseline}",
            float(np.median(dist)),
            float(np.percentile(dist, 90)),
            100.0 * float(np.mean(np.array(dist) < 0)),
        ])
    lines += _md_table(
        ["baseline", "median gain (%)", "p90 gain (%)", "jobs slowed (%)"],
        rows,
    )

    lines += ["## Fairness knob", ""]
    fair = results["slot-fair"]
    rows = []
    for f in KNOBS:
        result = run_comparison(
            trace,
            {"t": lambda knob=f: TetrisScheduler(
                TetrisConfig(fairness_knob=knob))},
            config,
        )["t"]
        rows.append([
            f"{f:.2f}",
            improvement_percent(fair.mean_jct, result.mean_jct),
            improvement_percent(fair.makespan, result.makespan),
        ])
    lines += _md_table(
        ["knob f", "JCT gain (%)", "makespan gain (%)"], rows
    )

    lines += ["## Wastage from over-allocation", ""]
    rows = []
    for name, factory in (
        ("tetris", TetrisScheduler),
        ("slot-fair", SlotFairScheduler),
    ):
        cluster = Cluster(machines, seed=seed)
        jobs = materialize_trace(trace, cluster, seed=seed)
        engine = Engine(cluster, factory(), jobs,
                        config=config.make_engine_config())
        engine.run()
        rows.append([
            name,
            excess_holding(engine.placement_log, "mem"),
            excess_holding(engine.placement_log, "cpu"),
        ])
    lines += _md_table(
        ["scheduler", "excess GB-seconds of memory held",
         "excess core-seconds held"],
        rows,
    )

    lines += ["## Upper bound (Section 2.3)", ""]
    cluster = Cluster(machines, seed=seed)
    jobs = materialize_trace(trace, cluster, seed=seed)
    ub = aggregate_upper_bound(
        jobs, cluster.total_capacity(), cluster.machine_capacity()
    )
    rows = [[
        "aggregated-bin relaxation", ub.mean_jct, ub.makespan,
    ]]
    rows.append([
        "tetris (achieved)",
        results["tetris"].mean_jct,
        results["tetris"].makespan,
    ])
    lines += _md_table(["schedule", "mean JCT (s)", "makespan (s)"], rows)

    path = Path(output_path)
    path.write_text("\n".join(lines))
    return path
