"""Render the paper's figures as SVG files.

``render_all(output_dir)`` regenerates the line/bar figures of the
evaluation from fresh simulation runs and writes standalone SVGs (the
benchmark suite prints the same data as tables; this module draws it).
Exposed on the command line as ``python -m repro figures -o figs/``.

The ``quick`` profile (default) runs a reduced workload so a full
render finishes in about a minute of pure Python; ``quick=False`` uses
the benchmark-scale configuration.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.experiments.motivating import drf_schedule, packing_schedule
from repro.metrics.comparison import (
    cdf_points,
    improvement_distribution,
    improvement_percent,
)
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.viz.charts import BarChart, LineChart
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite

__all__ = ["render_all"]

FAIRNESS_KNOBS = (0.0, 0.25, 0.5, 0.75, 0.99)
BARRIER_KNOBS = (0.0, 0.5, 0.75, 0.9, 0.95)


def _workload(quick: bool):
    if quick:
        cfg = WorkloadSuiteConfig(num_jobs=20, task_scale=0.04,
                                  arrival_horizon=600, seed=1)
        machines = 12
    else:
        cfg = WorkloadSuiteConfig(num_jobs=40, task_scale=0.05,
                                  arrival_horizon=1000, seed=1)
        machines = 20
    return generate_workload_suite(cfg), machines


def _config(machines: int) -> ExperimentConfig:
    return ExperimentConfig(num_machines=machines, seed=1,
                            use_tracker=True)


def fig1_completion_times(path: Path) -> Path:
    """Figure 1: the motivating example's completion times."""
    drf = drf_schedule()
    packing = packing_schedule()
    chart = BarChart(
        categories=sorted(drf.completion),
        title="Figure 1: DRF vs packing on the 3-job example",
        x_label="job",
        y_label="completion time (units of t)",
    )
    chart.add_group("DRF", [drf.completion[j] for j in sorted(drf.completion)])
    chart.add_group(
        "packing", [packing.completion[j] for j in sorted(drf.completion)]
    )
    chart.save(path)
    return path


def fig4a_jct_cdf(results, path: Path) -> Path:
    """Figure 4a: CDF of per-job completion-time improvement."""
    chart = LineChart(
        title="Figure 4a: JCT improvement CDF",
        x_label="reduction in job duration (%)",
        y_label="fraction of jobs",
    )
    tetris = results["tetris"].completion_by_name()
    for baseline in ("capacity", "drf"):
        dist = improvement_distribution(
            results[baseline].completion_by_name(), tetris
        )
        chart.add_series(
            f"vs {baseline}",
            [(v, f) for v, f in cdf_points(dist, num_points=41)],
        )
    chart.save(path)
    return path


def fig5_running_tasks(results, path: Path) -> Path:
    """Figure 5a: running tasks over time per scheduler."""
    chart = LineChart(
        title="Figure 5a: running tasks",
        x_label="time (s)",
        y_label="running tasks",
    )
    for name, result in results.items():
        series = result.collector.running_tasks_series()
        if len(series) >= 2:
            chart.add_series(name, series)
    chart.save(path)
    return path


def fig5_utilization(results, path: Path) -> Path:
    """Figure 5b-style: disk-read demand utilization over time."""
    chart = LineChart(
        title="Figure 5b: disk-read demand utilization "
              "(>1 means over-allocation)",
        x_label="time (s)",
        y_label="fraction of capacity",
    )
    for name, result in results.items():
        series = result.collector.utilization_series("diskr")
        if len(series) >= 2:
            chart.add_series(name, series)
    chart.save(path)
    return path


def fig8_fairness_knob(trace, machines: int, path: Path) -> Path:
    """Figure 8: efficiency vs the fairness knob."""
    schedulers = {"slot-fair": SlotFairScheduler}
    for f in FAIRNESS_KNOBS:
        schedulers[f"f={f}"] = (
            lambda knob=f: TetrisScheduler(TetrisConfig(fairness_knob=knob))
        )
    results = run_comparison(trace, schedulers, _config(machines))
    fair = results["slot-fair"]
    jct, makespan = [], []
    for f in FAIRNESS_KNOBS:
        r = results[f"f={f}"]
        jct.append((f, improvement_percent(fair.mean_jct, r.mean_jct)))
        makespan.append(
            (f, improvement_percent(fair.makespan, r.makespan))
        )
    chart = LineChart(
        title="Figure 8: gains vs fairness knob",
        x_label="fairness knob f",
        y_label="gain over slot-fair (%)",
    )
    chart.add_series("mean JCT", jct)
    chart.add_series("makespan", makespan)
    chart.save(path)
    return path


def fig10_barrier_knob(trace, machines: int, path: Path) -> Path:
    """Figure 10: efficiency vs the barrier knob."""
    schedulers = {"drf": DRFScheduler}
    for b in BARRIER_KNOBS:
        schedulers[f"b={b}"] = (
            lambda knob=b: TetrisScheduler(TetrisConfig(barrier_knob=knob))
        )
    results = run_comparison(trace, schedulers, _config(machines))
    drf = results["drf"]
    jct, makespan = [], []
    for b in BARRIER_KNOBS:
        r = results[f"b={b}"]
        jct.append((b, improvement_percent(drf.mean_jct, r.mean_jct)))
        makespan.append((b, improvement_percent(drf.makespan, r.makespan)))
    chart = LineChart(
        title="Figure 10: gains vs barrier knob",
        x_label="barrier knob b",
        y_label="gain over DRF (%)",
    )
    chart.add_series("mean JCT", jct)
    chart.add_series("makespan", makespan)
    chart.save(path)
    return path


def fig11_cluster_load(trace, machines: int, path: Path) -> Path:
    """Figure 11: gains vs cluster load (fewer machines = more load)."""
    jct, makespan = [], []
    for divisor in (1, 2, 4):
        count = max(2, machines // divisor)
        results = run_comparison(
            trace,
            {"tetris": TetrisScheduler, "slot-fair": SlotFairScheduler},
            _config(count),
        )
        load = machines / count
        jct.append(
            (load, improvement_percent(
                results["slot-fair"].mean_jct, results["tetris"].mean_jct
            ))
        )
        makespan.append(
            (load, improvement_percent(
                results["slot-fair"].makespan, results["tetris"].makespan
            ))
        )
    chart = LineChart(
        title="Figure 11: gains vs cluster load",
        x_label="load multiplier",
        y_label="gain over slot-fair (%)",
    )
    chart.add_series("mean JCT", jct)
    chart.add_series("makespan", makespan)
    chart.save(path)
    return path


def render_all(
    output_dir, quick: bool = True
) -> List[Path]:
    """Render every figure; returns the written paths."""
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace, machines = _workload(quick)
    written = [fig1_completion_times(out / "fig1_motivating.svg")]
    results = run_comparison(
        trace,
        {
            "tetris": TetrisScheduler,
            "capacity": CapacityScheduler,
            "slot-fair": SlotFairScheduler,
            "drf": DRFScheduler,
        },
        _config(machines),
    )
    written.append(fig4a_jct_cdf(results, out / "fig4a_jct_cdf.svg"))
    written.append(
        fig5_running_tasks(results, out / "fig5a_running_tasks.svg")
    )
    written.append(
        fig5_utilization(results, out / "fig5b_disk_utilization.svg")
    )
    written.append(
        fig8_fairness_knob(trace, machines, out / "fig8_fairness_knob.svg")
    )
    written.append(
        fig10_barrier_knob(trace, machines, out / "fig10_barrier_knob.svg")
    )
    written.append(
        fig11_cluster_load(trace, machines, out / "fig11_cluster_load.svg")
    )
    return written
