"""Experiment harness and canned configurations for every table/figure."""

from repro.experiments.harness import (
    ExperimentConfig,
    RunResult,
    run_comparison,
    run_trace,
)
from repro.experiments.motivating import (
    MotivatingExample,
    RoundSchedule,
    drf_schedule,
    drf_schedule_fragmented,
    packing_schedule,
)
from repro.experiments.replication import (
    MetricSummary,
    ReplicatedComparison,
    replicate,
)

__all__ = [
    "ExperimentConfig",
    "RunResult",
    "run_trace",
    "run_comparison",
    "MotivatingExample",
    "RoundSchedule",
    "drf_schedule",
    "drf_schedule_fragmented",
    "packing_schedule",
    "MetricSummary",
    "ReplicatedComparison",
    "replicate",
]
