"""The motivating example of Section 2.1 / Figure 1.

Three map-reduce jobs on a cluster with 18 cores, 36 GB of memory and a
3 Gbps network:

- job A: 18 map tasks of (1 core, 2 GB); 3 reduce tasks of 1 Gbps;
- jobs B, C: 6 map tasks of (3 cores, 1 GB); 3 reduce tasks of 1 Gbps;
- every task runs for exactly ``t`` time units, and a strict barrier
  separates the phases.

DRF equalizes dominant shares at 1/3 (A on memory, B and C on cores), so
all map phases crawl along together and every job finishes at 6t.  A
packing scheduler runs one job's map phase at full tilt and overlaps its
network-bound reducers with the next job's CPU/memory-bound mappers:
jobs finish at 2t, 3t and 4t — average completion time drops by 50% and
makespan by 33%, and the result holds under any job permutation.

This module reproduces both schedules with small, faithful round-based
implementations of DRF progressive filling and dot-product packing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "MotivatingExample",
    "RoundSchedule",
    "drf_schedule",
    "packing_schedule",
    "drf_schedule_fragmented",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a job: ``count`` tasks of the given demand vector."""

    count: int
    demand: Tuple[float, ...]  # (cores, memory GB, network Gbps)


@dataclass(frozen=True)
class JobSpec:
    name: str
    phases: Tuple[PhaseSpec, ...]


@dataclass
class MotivatingExample:
    """The Figure 1 setup (capacities and job phase specs)."""

    capacity: Tuple[float, ...] = (18.0, 36.0, 3.0)
    jobs: Tuple[JobSpec, ...] = (
        JobSpec("A", (PhaseSpec(18, (1, 2, 0)), PhaseSpec(3, (0, 0, 1)))),
        JobSpec("B", (PhaseSpec(6, (3, 1, 0)), PhaseSpec(3, (0, 0, 1)))),
        JobSpec("C", (PhaseSpec(6, (3, 1, 0)), PhaseSpec(3, (0, 0, 1)))),
    )


@dataclass
class RoundSchedule:
    """Result of a round-based schedule of the example.

    ``rounds[r][job][phase]`` is the number of that job's phase tasks run
    during round r (each round is ``t`` long).  Completion times and
    makespan are in units of t.
    """

    rounds: List[Dict[str, List[int]]]
    completion: Dict[str, int]

    @property
    def makespan(self) -> int:
        return max(self.completion.values())

    @property
    def average_completion(self) -> float:
        return sum(self.completion.values()) / len(self.completion)


class _State:
    """Remaining tasks and barrier state during a round-based run."""

    def __init__(self, example: MotivatingExample):
        self.example = example
        self.remaining = {
            job.name: [phase.count for phase in job.phases]
            for job in example.jobs
        }
        self.phase_of = {job.name: 0 for job in example.jobs}
        self.completion: Dict[str, int] = {}

    def runnable_demand(self, name: str) -> Optional[Tuple[float, ...]]:
        """Demand of this job's currently-runnable phase, if any."""
        job = next(j for j in self.example.jobs if j.name == name)
        phase = self.phase_of[name]
        if phase >= len(job.phases):
            return None
        if self.remaining[name][phase] == 0:
            return None
        return job.phases[phase].demand

    def start_task(self, name: str) -> int:
        phase = self.phase_of[name]
        self.remaining[name][phase] -= 1
        return phase

    def end_round(self, round_index: int, ran: Dict[str, List[int]]) -> None:
        """Advance barriers after every running task finished the round."""
        for job in self.example.jobs:
            name = job.name
            phase = self.phase_of[name]
            while (
                phase < len(job.phases) and self.remaining[name][phase] == 0
            ):
                phase += 1
            self.phase_of[name] = phase
            if phase >= len(job.phases) and name not in self.completion:
                if any(ran[name]):
                    self.completion[name] = round_index + 1

    def done(self) -> bool:
        return all(
            self.phase_of[j.name] >= len(j.phases)
            for j in self.example.jobs
        )


def _run_rounds(example: MotivatingExample, pick) -> RoundSchedule:
    """Run rounds until completion; ``pick(state, free)`` chooses the next
    job to start a task for (or None when nothing should start)."""
    state = _State(example)
    rounds: List[Dict[str, List[int]]] = []
    for round_index in range(100):
        if state.done():
            break
        free = np.array(example.capacity, dtype=float)
        begin_round = getattr(pick, "begin_round", None)
        if begin_round is not None:
            begin_round()
        ran = {
            job.name: [0] * len(job.phases) for job in example.jobs
        }
        while True:
            name = pick(state, free)
            if name is None:
                break
            demand = np.array(state.runnable_demand(name))
            phase = state.start_task(name)
            ran[name][phase] += 1
            free -= demand
        if not any(any(counts) for counts in ran.values()):
            raise RuntimeError(
                "schedule is infeasible: no runnable task fits "
                "(a task's demand exceeds every bin)"
            )
        rounds.append(ran)
        state.end_round(round_index, ran)
    else:
        raise RuntimeError("example did not converge")
    return RoundSchedule(rounds=rounds, completion=state.completion)


def drf_schedule(
    example: Optional[MotivatingExample] = None,
) -> RoundSchedule:
    """DRF progressive filling: next task to the lowest dominant share."""
    example = example if example is not None else MotivatingExample()
    capacity = np.array(example.capacity, dtype=float)
    round_used: Dict[str, np.ndarray] = {}

    def begin_round() -> None:
        for job in example.jobs:
            round_used[job.name] = np.zeros(len(capacity))

    def pick(state: _State, free: np.ndarray) -> Optional[str]:
        best = None
        best_share = float("inf")
        for job in example.jobs:
            demand = state.runnable_demand(job.name)
            if demand is None:
                continue
            d = np.array(demand, dtype=float)
            if np.any(d > free + 1e-9):
                continue
            share = float(
                np.max(
                    np.where(capacity > 0, round_used[job.name] / capacity, 0)
                )
            )
            if share < best_share - 1e-12:
                best_share = share
                best = job.name
        if best is not None:
            round_used[best] += np.array(
                state.runnable_demand(best), dtype=float
            )
        return best

    pick.begin_round = begin_round
    return _run_rounds(example, pick)


def drf_schedule_fragmented(
    example: Optional[MotivatingExample] = None,
    num_machines: int = 3,
) -> RoundSchedule:
    """DRF on ``num_machines`` machines of 1/num_machines capacity each.

    The paper's footnote observes that treating the cluster as one big
    bag of resources hides fragmentation: split the same capacity into
    three machines and DRF's schedule gets *worse*, because tasks must
    fit within a single machine.  This variant repeats the progressive
    filling with per-machine admission.
    """
    example = example if example is not None else MotivatingExample()
    capacity = np.array(example.capacity, dtype=float)
    per_machine = capacity / num_machines
    round_used: Dict[str, np.ndarray] = {}
    machine_free: List[np.ndarray] = []

    def begin_round() -> None:
        for job in example.jobs:
            round_used[job.name] = np.zeros(len(capacity))
        machine_free.clear()
        machine_free.extend(per_machine.copy() for _ in range(num_machines))

    def fits_some_machine(d: np.ndarray) -> Optional[int]:
        for m, free in enumerate(machine_free):
            if np.all(d <= free + 1e-9):
                return m
        return None

    def pick(state: _State, free: np.ndarray) -> Optional[str]:
        best = None
        best_share = float("inf")
        best_machine = None
        for job in example.jobs:
            demand = state.runnable_demand(job.name)
            if demand is None:
                continue
            d = np.array(demand, dtype=float)
            machine = fits_some_machine(d)
            if machine is None:
                continue
            share = float(
                np.max(
                    np.where(capacity > 0, round_used[job.name] / capacity, 0)
                )
            )
            if share < best_share - 1e-12:
                best_share = share
                best = job.name
                best_machine = machine
        if best is not None:
            d = np.array(state.runnable_demand(best), dtype=float)
            round_used[best] += d
            machine_free[best_machine] -= d
        return best

    pick.begin_round = begin_round
    return _run_rounds(example, pick)


def packing_schedule(
    example: Optional[MotivatingExample] = None,
) -> RoundSchedule:
    """Dot-product packing with an SRTF tie-break (what Tetris does)."""
    example = example if example is not None else MotivatingExample()
    capacity = np.array(example.capacity, dtype=float)

    def remaining_work(state: _State, name: str) -> float:
        job = next(j for j in example.jobs if j.name == name)
        total = 0.0
        for phase_index, phase in enumerate(job.phases):
            d = np.array(phase.demand, dtype=float)
            normalized = float(
                np.sum(np.where(capacity > 0, d / capacity, 0))
            )
            total += normalized * state.remaining[name][phase_index]
        return total

    def pick(state: _State, free: np.ndarray) -> Optional[str]:
        free_norm = np.where(capacity > 0, free / capacity, 0)
        fitting: List[Tuple[str, float, float]] = []
        for job in example.jobs:
            demand = state.runnable_demand(job.name)
            if demand is None:
                continue
            d = np.array(demand, dtype=float)
            if np.any(d > free + 1e-9):
                continue
            d_norm = np.where(capacity > 0, d / capacity, 0)
            alignment = float(np.dot(d_norm, free_norm))
            fitting.append(
                (job.name, alignment, remaining_work(state, job.name))
            )
        if not fitting:
            return None
        # Tetris's combined score a - (a_bar/p_bar) * p  (Section 3.3.2)
        a_bar = sum(f[1] for f in fitting) / len(fitting)
        p_bar = sum(f[2] for f in fitting) / len(fitting)
        epsilon = a_bar / p_bar if p_bar > 0 else 0.0
        return max(fitting, key=lambda f: f[1] - epsilon * f[2])[0]

    return _run_rounds(example, pick)
