"""Run (workload, cluster, scheduler) combinations and compare them.

Each run materializes a *fresh* cluster and fresh jobs from the same
trace records (job and task objects are stateful), so comparisons across
schedulers are apples-to-apples.  Completion times are keyed by job
*name* — stable across materializations — for the per-job CDFs of
Figures 4a and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING

from repro.activity.ingestion import ClusterActivity
from repro.cluster.cluster import Cluster
from repro.estimation.estimator import DemandEstimator
from repro.estimation.tracker import ResourceTracker, TrackerConfig
from repro.metrics.collector import MetricsCollector
from repro.resources import ResourceVector
from repro.schedulers.base import Scheduler
from repro.sim.engine import Engine, EngineConfig
from repro.sim.fluid import FluidConfig
from repro.workload.job import Job
from repro.workload.trace import TraceJob, materialize_trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import Registry
    from repro.profiling import Profiler

__all__ = ["ExperimentConfig", "RunResult", "run_trace", "run_comparison"]


@dataclass
class ExperimentConfig:
    """Everything needed to repeat a run except the scheduler."""

    num_machines: int = 100
    machine_capacity: Optional[ResourceVector] = None
    machines_per_rack: int = 16
    seed: int = 0
    use_tracker: bool = False
    tracker_config: Optional[TrackerConfig] = None
    estimator_factory: Optional[Callable[[], DemandEstimator]] = None
    fluid_config: Optional[FluidConfig] = None
    engine_config: Optional[EngineConfig] = None
    track_fairness: bool = False
    track_machine_usage: bool = False
    #: scheduler federation (repro.federation): shards > 1 partitions the
    #: machine plane and wraps the scheduler in a FederatedScheduler
    shards: int = 1
    shard_backend: str = "inline"
    shard_partitioner: str = "rack"
    shard_spill_after: Optional[float] = 15.0

    def make_cluster(self) -> Cluster:
        return Cluster(
            self.num_machines,
            machine_capacity=self.machine_capacity,
            machines_per_rack=self.machines_per_rack,
            seed=self.seed,
        )

    def make_engine_config(self) -> EngineConfig:
        if self.engine_config is not None:
            return self.engine_config
        return EngineConfig(
            seed=self.seed,
            track_fairness=self.track_fairness,
            track_machine_usage=self.track_machine_usage,
        )


@dataclass
class RunResult:
    """Outcome of one run."""

    scheduler_name: str
    collector: MetricsCollector
    jobs: List[Job]
    activities: List[ClusterActivity] = field(default_factory=list)
    #: wall-clock seconds spent inside ``Engine.run`` and how many
    #: placements it made — the bench subsystem's throughput metrics
    wall_seconds: float = 0.0
    num_placements: int = 0

    @property
    def placements_per_sec(self) -> float:
        """Scheduler throughput (placements per wall-clock second)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.num_placements / self.wall_seconds

    @property
    def mean_jct(self) -> float:
        return self.collector.mean_jct()

    @property
    def makespan(self) -> float:
        return self.collector.makespan()

    def completion_by_name(self) -> Dict[str, float]:
        """Job-name keyed completion times (stable across runs)."""
        out = {}
        for job in self.jobs:
            if job.completion_time is not None:
                out[job.name] = job.completion_time
        return out

    def unfairness_by_name(self) -> Dict[str, float]:
        """Job-name keyed relative integral unfairness values."""
        out = {}
        by_id = {job.job_id: job for job in self.jobs}
        for job_id, integral in self.collector.unfairness_integral.items():
            job = by_id.get(job_id)
            if job is None or job.completion_time in (None, 0):
                continue
            out[job.name] = integral / job.completion_time
        return out

    def summary(self) -> Dict[str, float]:
        return dict(self.collector.summary())


def run_trace(
    trace: Sequence[TraceJob],
    scheduler: Scheduler,
    config: Optional[ExperimentConfig] = None,
    activities: Iterable[ClusterActivity] = (),
    profiler: Optional["Profiler"] = None,
    metrics: Optional["Registry"] = None,
) -> RunResult:
    """Materialize the trace on a fresh cluster and run one scheduler.

    ``profiler`` and ``metrics`` are handed straight to the
    :class:`Engine` (same opt-in ``Optional[...]`` contract), so a bench
    capture can collect phase timings and counters from an otherwise
    unmodified run.
    """
    cfg = config if config is not None else ExperimentConfig()
    if cfg.shards > 1:
        # lazy import: repro.federation wraps schedulers from this module's
        # consumers, so a top-level import would cycle
        from repro.federation import FederatedScheduler, FederationConfig

        scheduler = FederatedScheduler(
            scheduler,
            FederationConfig(
                num_shards=cfg.shards,
                backend=cfg.shard_backend,
                partitioner=cfg.shard_partitioner,
                spill_after=cfg.shard_spill_after,
                base_seed=cfg.seed,
            ),
        )
        if cfg.shard_backend == "process":
            scheduler.provide_workload(trace, cfg)
    cluster = cfg.make_cluster()
    jobs = materialize_trace(trace, cluster, seed=cfg.seed)
    tracker = None
    if cfg.use_tracker:
        tracker = ResourceTracker(cluster, cfg.tracker_config)
    estimator = (
        cfg.estimator_factory() if cfg.estimator_factory is not None else None
    )
    engine = Engine(
        cluster,
        scheduler,
        jobs,
        activities=activities,
        estimator=estimator,
        tracker=tracker,
        fluid_config=cfg.fluid_config,
        config=cfg.make_engine_config(),
        profiler=profiler,
        metrics=metrics,
    )
    start = perf_counter()
    try:
        collector = engine.run()
    finally:
        closer = getattr(scheduler, "close", None)
        if closer is not None:
            closer()
    wall = perf_counter() - start
    return RunResult(
        scheduler_name=scheduler.name,
        collector=collector,
        jobs=jobs,
        activities=list(activities),
        wall_seconds=wall,
        num_placements=len(engine.placement_log),
    )


def run_comparison(
    trace: Sequence[TraceJob],
    scheduler_factories: Dict[str, Callable[[], Scheduler]],
    config: Optional[ExperimentConfig] = None,
    workers: Optional[int] = None,
    backend=None,
    progress=None,
) -> Dict[str, RunResult]:
    """Run the same trace under several schedulers; returns per-name results.

    Each (name, factory) cell becomes a :class:`repro.exec.RunSpec` and
    the grid executes on an execution backend: the default resolves from
    ``workers`` (falling back to the ``REPRO_WORKERS`` env var, then
    serial), or pass ``backend`` explicitly.  Results are keyed and
    ordered by factory-dict insertion order regardless of which run
    finished first, and are bit-identical across backends.  If any cell
    fails, every other cell still runs and a single
    :class:`repro.exec.ExecutionError` naming the failed rows is raised
    at the end; callers that want per-row failure reporting should build
    specs and call :func:`repro.exec.run_specs` directly.
    """
    from repro.exec import RunSpec, get_backend, raise_on_failure, run_specs

    cfg = config if config is not None else ExperimentConfig()
    specs = [
        RunSpec(trace=tuple(trace), scheduler=factory, config=cfg, label=name)
        for name, factory in scheduler_factories.items()
    ]
    outcomes = run_specs(
        specs,
        backend if backend is not None else get_backend(workers),
        progress=progress,
    )
    raise_on_failure(outcomes)
    return {outcome.label: outcome.result for outcome in outcomes}
