"""Multi-seed replication: mean and spread across repeated runs.

Single-run comparisons are noisy at simulator scale; the paper itself
repeats each deployment experiment five times.  ``replicate`` reruns a
(workload-generator, scheduler set) combination across seeds and
aggregates the metrics, so claims can be made with error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exec.seeds import spawn_seeds
from repro.experiments.harness import ExperimentConfig
from repro.metrics.comparison import improvement_percent

__all__ = ["MetricSummary", "ReplicatedComparison", "replicate"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean and spread of one metric across seeds."""

    mean: float
    std: float
    values: tuple

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricSummary":
        arr = np.asarray(list(values), dtype=float)
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            values=tuple(float(v) for v in arr),
        )

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.std:.1f}"


@dataclass
class ReplicatedComparison:
    """Aggregated results of a multi-seed comparison."""

    seeds: tuple
    mean_jct: Dict[str, MetricSummary]
    makespan: Dict[str, MetricSummary]

    def improvement(
        self, baseline: str, treatment: str, metric: str = "mean_jct"
    ) -> MetricSummary:
        """Per-seed percentage improvements of treatment over baseline."""
        base = getattr(self, metric)[baseline].values
        treat = getattr(self, metric)[treatment].values
        return MetricSummary.of(
            [improvement_percent(b, t) for b, t in zip(base, treat)]
        )


def replicate(
    make_trace: Callable[[int], Sequence],
    scheduler_factories: Dict[str, Callable],
    seeds: Optional[Sequence[int]] = None,
    num_machines: int = 20,
    workers: Optional[int] = None,
    backend=None,
    num_seeds: Optional[int] = None,
    base_seed: int = 0,
    **config_kw,
) -> ReplicatedComparison:
    """Run the comparison once per seed and aggregate.

    ``make_trace(seed)`` builds the workload for a seed (regenerate it
    per seed so both the workload sample and the simulation randomness
    vary, as in repeated real experiments).

    Seeds come either explicitly (``seeds=...``) or derived: with
    ``num_seeds=n`` the seeds are ``SeedSequence``-spawned children of
    ``base_seed`` (:func:`repro.exec.spawn_seeds`), the repo-wide scheme
    for seed-only sweeps — sibling runs never share RNG state and
    growing ``num_seeds`` later keeps the earlier runs identical.

    The whole seeds × schedulers grid is independent cells, executed on
    an execution backend (``workers`` > 1 / ``REPRO_WORKERS`` selects
    the process pool); results are aggregated in seed order and are
    bit-identical across backends.
    """
    from repro.exec import RunSpec, get_backend, raise_on_failure, run_specs

    if seeds is None:
        if not num_seeds:
            raise ValueError("need at least one seed")
        seeds = spawn_seeds(base_seed, num_seeds)
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    names = list(scheduler_factories)
    specs = []
    for seed in seeds:
        trace = tuple(make_trace(seed))
        config = ExperimentConfig(num_machines=num_machines, seed=seed,
                                  **config_kw)
        specs.extend(
            RunSpec(trace=trace, scheduler=factory, config=config,
                    label=f"{name}@seed={seed}")
            for name, factory in scheduler_factories.items()
        )
    outcomes = run_specs(
        specs, backend if backend is not None else get_backend(workers)
    )
    raise_on_failure(outcomes)
    per_seed: List[Dict[str, object]] = [
        {
            name: outcomes[i * len(names) + j].result
            for j, name in enumerate(names)
        }
        for i in range(len(seeds))
    ]
    return ReplicatedComparison(
        seeds=tuple(seeds),
        mean_jct={
            name: MetricSummary.of(
                [results[name].mean_jct for results in per_seed]
            )
            for name in names
        },
        makespan={
            name: MetricSummary.of(
                [results[name].makespan for results in per_seed]
            )
            for name in names
        },
    )
