"""Multi-seed replication: mean and spread across repeated runs.

Single-run comparisons are noisy at simulator scale; the paper itself
repeats each deployment experiment five times.  ``replicate`` reruns a
(workload-generator, scheduler set) combination across seeds and
aggregates the metrics, so claims can be made with error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent

__all__ = ["MetricSummary", "ReplicatedComparison", "replicate"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean and spread of one metric across seeds."""

    mean: float
    std: float
    values: tuple

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricSummary":
        arr = np.asarray(list(values), dtype=float)
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            values=tuple(float(v) for v in arr),
        )

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.std:.1f}"


@dataclass
class ReplicatedComparison:
    """Aggregated results of a multi-seed comparison."""

    seeds: tuple
    mean_jct: Dict[str, MetricSummary]
    makespan: Dict[str, MetricSummary]

    def improvement(
        self, baseline: str, treatment: str, metric: str = "mean_jct"
    ) -> MetricSummary:
        """Per-seed percentage improvements of treatment over baseline."""
        base = getattr(self, metric)[baseline].values
        treat = getattr(self, metric)[treatment].values
        return MetricSummary.of(
            [improvement_percent(b, t) for b, t in zip(base, treat)]
        )


def replicate(
    make_trace: Callable[[int], Sequence],
    scheduler_factories: Dict[str, Callable],
    seeds: Sequence[int],
    num_machines: int = 20,
    **config_kw,
) -> ReplicatedComparison:
    """Run the comparison once per seed and aggregate.

    ``make_trace(seed)`` builds the workload for a seed (regenerate it
    per seed so both the workload sample and the simulation randomness
    vary, as in repeated real experiments).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    per_seed: List[Dict[str, object]] = []
    for seed in seeds:
        trace = make_trace(seed)
        results = run_comparison(
            trace,
            scheduler_factories,
            ExperimentConfig(num_machines=num_machines, seed=seed,
                             **config_kw),
        )
        per_seed.append(results)
    names = list(per_seed[0])
    return ReplicatedComparison(
        seeds=tuple(seeds),
        mean_jct={
            name: MetricSummary.of(
                [results[name].mean_jct for results in per_seed]
            )
            for name in names
        },
        makespan={
            name: MetricSummary.of(
                [results[name].makespan for results in per_seed]
            )
            for name in names
        },
    )
