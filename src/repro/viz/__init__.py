"""Dependency-free SVG charts for rendering the paper's figures."""

from repro.viz.charts import BarChart, LineChart

__all__ = ["LineChart", "BarChart"]
