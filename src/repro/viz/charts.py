"""Minimal SVG line and bar charts (no matplotlib required).

The benchmark environment is offline and has no plotting stack, so this
module implements just enough SVG to regenerate the paper's figures:
multi-series line/CDF charts and grouped bar charts, with axes, ticks,
legends and titles.  Output is a standalone ``.svg`` file any browser
renders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["LineChart", "BarChart"]

#: a small colorblind-friendly palette
PALETTE = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # magenta
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)

FONT = "font-family='Helvetica,Arial,sans-serif'"


def _nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Roughly ``target`` human-friendly tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(target, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = magnitude * mult
        if span / step <= target + 1:
            break
    first = math.floor(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        if value >= lo - step * 1e-9:
            ticks.append(round(value, 10))
        value += step
    return ticks or [lo, hi]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:g}"


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


@dataclass
class _Series:
    name: str
    points: List[Tuple[float, float]]
    color: str


class _ChartBase:
    def __init__(
        self,
        title: str = "",
        x_label: str = "",
        y_label: str = "",
        width: int = 640,
        height: int = 400,
    ):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.margin_left = 64
        self.margin_right = 16
        self.margin_top = 36 if title else 16
        self.margin_bottom = 52

    @property
    def plot_width(self) -> int:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_height(self) -> int:
        return self.height - self.margin_top - self.margin_bottom

    def _header(self) -> List[str]:
        parts = [
            f"<svg xmlns='http://www.w3.org/2000/svg' "
            f"width='{self.width}' height='{self.height}' "
            f"viewBox='0 0 {self.width} {self.height}'>",
            f"<rect width='{self.width}' height='{self.height}' "
            f"fill='white'/>",
        ]
        if self.title:
            parts.append(
                f"<text x='{self.width / 2}' y='20' {FONT} "
                f"font-size='14' text-anchor='middle' font-weight='bold'>"
                f"{_escape(self.title)}</text>"
            )
        return parts

    def _axis_labels(self) -> List[str]:
        parts = []
        if self.x_label:
            parts.append(
                f"<text x='{self.margin_left + self.plot_width / 2}' "
                f"y='{self.height - 8}' {FONT} font-size='12' "
                f"text-anchor='middle'>{_escape(self.x_label)}</text>"
            )
        if self.y_label:
            cy = self.margin_top + self.plot_height / 2
            parts.append(
                f"<text x='14' y='{cy}' {FONT} font-size='12' "
                f"text-anchor='middle' "
                f"transform='rotate(-90 14 {cy})'>"
                f"{_escape(self.y_label)}</text>"
            )
        return parts

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.render())

    def render(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class LineChart(_ChartBase):
    """Multi-series line chart (also used for CDFs and knob sweeps)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.series: List[_Series] = []

    def add_series(
        self,
        name: str,
        points: Sequence[Tuple[float, float]],
        color: Optional[str] = None,
    ) -> None:
        if len(points) < 2:
            raise ValueError(f"series {name!r} needs at least two points")
        chosen = color or PALETTE[len(self.series) % len(PALETTE)]
        self.series.append(_Series(name, sorted(points), chosen))

    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [x for s in self.series for x, _ in s.points]
        ys = [y for s in self.series for _, y in s.points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if y_lo > 0 and y_lo / (y_hi or 1) < 0.4:
            y_lo = 0.0  # anchor at zero unless the data is far from it
        return x_lo, x_hi, y_lo, y_hi

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series added")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        x_ticks = _nice_ticks(x_lo, x_hi)
        y_ticks = _nice_ticks(y_lo, y_hi)
        x_lo, x_hi = min(x_lo, x_ticks[0]), max(x_hi, x_ticks[-1])
        y_lo, y_hi = min(y_lo, y_ticks[0]), max(y_hi, y_ticks[-1])

        def sx(x: float) -> float:
            return self.margin_left + (
                (x - x_lo) / (x_hi - x_lo or 1) * self.plot_width
            )

        def sy(y: float) -> float:
            return self.margin_top + self.plot_height - (
                (y - y_lo) / (y_hi - y_lo or 1) * self.plot_height
            )

        parts = self._header()
        # gridlines + ticks
        for t in y_ticks:
            y = sy(t)
            parts.append(
                f"<line x1='{self.margin_left}' y1='{y:.1f}' "
                f"x2='{self.margin_left + self.plot_width}' y2='{y:.1f}' "
                f"stroke='#dddddd' stroke-width='1'/>"
            )
            parts.append(
                f"<text x='{self.margin_left - 6}' y='{y + 4:.1f}' {FONT} "
                f"font-size='10' text-anchor='end'>{_fmt(t)}</text>"
            )
        for t in x_ticks:
            x = sx(t)
            parts.append(
                f"<line x1='{x:.1f}' y1='{self.margin_top}' x2='{x:.1f}' "
                f"y2='{self.margin_top + self.plot_height}' "
                f"stroke='#eeeeee' stroke-width='1'/>"
            )
            parts.append(
                f"<text x='{x:.1f}' "
                f"y='{self.margin_top + self.plot_height + 14}' {FONT} "
                f"font-size='10' text-anchor='middle'>{_fmt(t)}</text>"
            )
        # axes
        parts.append(
            f"<rect x='{self.margin_left}' y='{self.margin_top}' "
            f"width='{self.plot_width}' height='{self.plot_height}' "
            f"fill='none' stroke='#333333'/>"
        )
        # series
        for s in self.series:
            coords = " ".join(
                f"{sx(x):.1f},{sy(y):.1f}" for x, y in s.points
            )
            parts.append(
                f"<polyline points='{coords}' fill='none' "
                f"stroke='{s.color}' stroke-width='2'/>"
            )
        # legend
        ly = self.margin_top + 8
        for s in self.series:
            lx = self.margin_left + self.plot_width - 150
            parts.append(
                f"<line x1='{lx}' y1='{ly}' x2='{lx + 18}' y2='{ly}' "
                f"stroke='{s.color}' stroke-width='3'/>"
            )
            parts.append(
                f"<text x='{lx + 24}' y='{ly + 4}' {FONT} "
                f"font-size='11'>{_escape(s.name)}</text>"
            )
            ly += 16
        parts.extend(self._axis_labels())
        parts.append("</svg>")
        return "\n".join(parts)


class BarChart(_ChartBase):
    """Grouped bar chart: categories on x, one bar per group member."""

    def __init__(self, categories: Sequence[str], **kwargs):
        super().__init__(**kwargs)
        if not categories:
            raise ValueError("need at least one category")
        self.categories = list(categories)
        self.groups: List[Tuple[str, List[float], str]] = []

    def add_group(
        self,
        name: str,
        values: Sequence[float],
        color: Optional[str] = None,
    ) -> None:
        if len(values) != len(self.categories):
            raise ValueError(
                f"group {name!r} has {len(values)} values for "
                f"{len(self.categories)} categories"
            )
        chosen = color or PALETTE[len(self.groups) % len(PALETTE)]
        self.groups.append((name, list(values), chosen))

    def render(self) -> str:
        if not self.groups:
            raise ValueError("no groups added")
        y_hi = max(max(values) for _, values, _ in self.groups)
        y_ticks = _nice_ticks(0.0, y_hi)
        y_hi = max(y_hi, y_ticks[-1])

        def sy(y: float) -> float:
            return self.margin_top + self.plot_height - (
                y / (y_hi or 1) * self.plot_height
            )

        parts = self._header()
        for t in y_ticks:
            y = sy(t)
            parts.append(
                f"<line x1='{self.margin_left}' y1='{y:.1f}' "
                f"x2='{self.margin_left + self.plot_width}' y2='{y:.1f}' "
                f"stroke='#dddddd'/>"
            )
            parts.append(
                f"<text x='{self.margin_left - 6}' y='{y + 4:.1f}' {FONT} "
                f"font-size='10' text-anchor='end'>{_fmt(t)}</text>"
            )
        slot = self.plot_width / len(self.categories)
        bar_width = slot * 0.8 / len(self.groups)
        for c_idx, category in enumerate(self.categories):
            x0 = self.margin_left + c_idx * slot + slot * 0.1
            for g_idx, (name, values, color) in enumerate(self.groups):
                x = x0 + g_idx * bar_width
                top = sy(values[c_idx])
                height = self.margin_top + self.plot_height - top
                parts.append(
                    f"<rect x='{x:.1f}' y='{top:.1f}' "
                    f"width='{bar_width:.1f}' height='{height:.1f}' "
                    f"fill='{color}'/>"
                )
            parts.append(
                f"<text x='{x0 + slot * 0.4:.1f}' "
                f"y='{self.margin_top + self.plot_height + 14}' {FONT} "
                f"font-size='11' text-anchor='middle'>"
                f"{_escape(category)}</text>"
            )
        parts.append(
            f"<rect x='{self.margin_left}' y='{self.margin_top}' "
            f"width='{self.plot_width}' height='{self.plot_height}' "
            f"fill='none' stroke='#333333'/>"
        )
        ly = self.margin_top + 8
        for name, _, color in self.groups:
            lx = self.margin_left + self.plot_width - 150
            parts.append(
                f"<rect x='{lx}' y='{ly - 8}' width='12' height='12' "
                f"fill='{color}'/>"
            )
            parts.append(
                f"<text x='{lx + 18}' y='{ly + 2}' {FONT} "
                f"font-size='11'>{_escape(name)}</text>"
            )
            ly += 16
        parts.extend(self._axis_labels())
        parts.append("</svg>")
        return "\n".join(parts)
