"""Ingestion and evacuation activities.

Clusters ingest tens of terabytes per hour of new data and evacuate
machines before maintenance (Section 4.3).  Neither goes through the
scheduler, so only the resource tracker can make the scheduler aware of
the load — that is the Figure 6 microbenchmark.

An activity is a set of fluid flows pinned to a machine:

- **ingestion**: data arrives over the network and is written to disk
  (``netin`` + ``diskw``);
- **evacuation**: data is read from disk and re-replicated elsewhere
  (``diskr`` + ``netout``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.fluid import FlowSpec

__all__ = ["ClusterActivity", "ingestion", "evacuation"]

_activity_ids = itertools.count()


@dataclass
class ClusterActivity:
    """One background activity on one machine.

    ``size_mb`` bytes move at up to ``rate_mbps`` starting at
    ``start_time``; the fluid simulator stretches the duration under
    contention exactly as it does for tasks.
    """

    machine_id: int
    start_time: float
    size_mb: float
    rate_mbps: float
    kind: str  # "ingest" or "evacuate"
    activity_id: int = field(default_factory=lambda: next(_activity_ids))
    finish_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("ingest", "evacuate"):
            raise ValueError(f"unknown activity kind {self.kind!r}")
        if self.size_mb <= 0 or self.rate_mbps <= 0:
            raise ValueError("activity size and rate must be positive")

    def flow_specs(self) -> List[FlowSpec]:
        tag = ("activity", self.activity_id)
        if self.kind == "ingest":
            dims: Tuple[Tuple[int, str], ...] = (
                (self.machine_id, "netin"),
                (self.machine_id, "diskw"),
            )
        else:
            dims = (
                (self.machine_id, "diskr"),
                (self.machine_id, "netout"),
            )
        return [
            FlowSpec(
                work=self.size_mb,
                nominal_rate=self.rate_mbps,
                slots=dims,
                tag=tag,
            )
        ]

    @property
    def nominal_duration(self) -> float:
        return self.size_mb / self.rate_mbps


def ingestion(
    machine_id: int, start_time: float, size_mb: float, rate_mbps: float
) -> ClusterActivity:
    """New data streaming onto a machine's disk."""
    return ClusterActivity(machine_id, start_time, size_mb, rate_mbps, "ingest")


def evacuation(
    machine_id: int, start_time: float, size_mb: float, rate_mbps: float
) -> ClusterActivity:
    """Data being drained off a machine ahead of maintenance."""
    return ClusterActivity(
        machine_id, start_time, size_mb, rate_mbps, "evacuate"
    )
