"""Non-job cluster activity: data ingestion and evacuation (Section 4.3)."""

from repro.activity.ingestion import ClusterActivity, evacuation, ingestion

__all__ = ["ClusterActivity", "ingestion", "evacuation"]
