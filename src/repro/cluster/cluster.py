"""The cluster: machines + topology + block store."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.blockstore import BlockStore
from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.topology import Topology
from repro.resources import (
    DEFAULT_MODEL,
    EPSILON,
    FB_MACHINE_CAPACITY,
    ResourceModel,
    ResourceVector,
)

__all__ = ["Cluster"]


class Cluster:
    """A homogeneous cluster of machines.

    Parameters
    ----------
    num_machines:
        Machine count (the paper deploys on 250; simulations replay a
        thousands-machine Facebook cluster).
    machine_capacity:
        Per-machine capacity vector; defaults to the Facebook profile.
    machines_per_rack / oversubscription:
        Topology parameters.
    seed:
        Seeds the block store's replica placement.
    """

    def __init__(
        self,
        num_machines: int,
        machine_capacity: Optional[ResourceVector] = None,
        machines_per_rack: int = 16,
        oversubscription: float = 1.33,
        replication: int = 3,
        seed: int = 0,
        machine_capacities: Optional[Sequence[ResourceVector]] = None,
    ):
        if machine_capacities is not None:
            capacities = list(machine_capacities)
            if len(capacities) != num_machines:
                raise ValueError(
                    f"got {len(capacities)} capacities for "
                    f"{num_machines} machines"
                )
        else:
            if machine_capacity is None:
                machine_capacity = FB_MACHINE_CAPACITY
            capacities = [machine_capacity] * num_machines
        self.model: ResourceModel = capacities[0].model
        self.topology = Topology(
            num_machines,
            machines_per_rack=machines_per_rack,
            oversubscription=oversubscription,
        )
        #: the structure-of-arrays state plane; machines are row views
        self.state = ClusterState.from_capacities(capacities)
        self.machines: List[Machine] = [
            Machine(i, cap, state=self.state, row=i)
            for i, cap in enumerate(capacities)
        ]
        self.blockstore = BlockStore(
            self.topology,
            replication=replication,
            rng=np.random.default_rng(seed),
        )
        self._total_capacity: Optional[ResourceVector] = None

    # -- aggregate views -------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return len(self.machines)

    def machine(self, machine_id: int) -> Machine:
        return self.machines[machine_id]

    def total_capacity(self) -> ResourceVector:
        """Sum of all machine capacities.

        Capacities are fixed at construction, so the sum is computed once
        and cached; a fresh vector is returned each call so callers may
        mutate their copy freely.
        """
        if self._total_capacity is None:
            total = ResourceVector.zeros_like(self.machines[0].capacity)
            for m in self.machines:
                total.add_inplace(m.capacity)
            self._total_capacity = total
        return self._total_capacity.copy()

    def total_allocated(self) -> ResourceVector:
        total = self.model.zeros()
        for m in self.machines:
            total.add_inplace(m.allocated)
        return total

    def free_clamped_matrix(self) -> np.ndarray:
        """The ``(machines, dims)`` clamped free matrix (shared storage,
        read-only for callers) — the packing hot path's view."""
        return self.state.free_clamped_matrix()

    def machine_capacity(self) -> ResourceVector:
        """Reference machine capacity — the first machine's.

        Used as a normalization scale; with heterogeneous machines,
        per-machine calculations should use
        ``cluster.machine(i).capacity`` instead.
        """
        return self.machines[0].capacity

    @property
    def is_homogeneous(self) -> bool:
        reference = self.machines[0].capacity
        return all(m.capacity == reference for m in self.machines)

    def total_running_tasks(self) -> int:
        return int(self.state.num_running.sum())

    def machines_with_free(
        self, demands: ResourceVector
    ) -> List[Machine]:
        """Machines that can fit ``demands`` on every dimension."""
        state = self.state
        fits = np.all(
            state.allocated + demands.data <= state.capacity + EPSILON,
            axis=1,
        )
        return [self.machines[i] for i in np.flatnonzero(fits)]

    def __repr__(self) -> str:
        return (
            f"Cluster(machines={self.num_machines}, "
            f"racks={self.topology.num_racks})"
        )
