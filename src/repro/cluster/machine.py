"""Machines: capacity, placed tasks, and allocation bookkeeping.

A machine records the *peak demands* of the tasks placed on it (its
``allocated`` vector).  Whether a scheduler respects the full vector when
placing is the scheduler's business: slot and DRF schedulers only check a
subset of dimensions, so ``allocated`` can exceed capacity in the fluid
dimensions — that is exactly the over-allocation pathology the paper
describes, and the fluid simulator turns it into contention and slowdown.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.resources import ResourceVector
from repro.workload.task import Task

__all__ = ["Machine"]


class Machine:
    """One machine in the cluster."""

    __slots__ = (
        "machine_id",
        "capacity",
        "allocated",
        "running",
        "observed_usage",
        "_placed_demands",
        "_free_clamped",
    )

    def __init__(self, machine_id: int, capacity: ResourceVector):
        self.machine_id = machine_id
        self.capacity = capacity.copy()
        self.allocated = ResourceVector.zeros_like(capacity)
        self.running: Set[Task] = set()
        #: last usage sample reported by the resource tracker (includes
        #: non-task activity such as ingestion); starts at zero
        self.observed_usage = ResourceVector.zeros_like(capacity)
        self._placed_demands: Dict[int, ResourceVector] = {}
        #: memoized clamped free vector; dropped whenever ``allocated``
        #: moves (place/remove are the only mutation points)
        self._free_clamped: Optional[ResourceVector] = None

    # -- placement ------------------------------------------------------------
    def place(self, task: Task, demands: Optional[ResourceVector] = None) -> None:
        """Record a task's placement with its placement-adjusted demands."""
        if task in self.running:
            raise RuntimeError(f"{task!r} already running on {self!r}")
        if demands is None:
            demands = task.demands_on(self.machine_id)
        self.running.add(task)
        self._placed_demands[task.task_id] = demands
        self.allocated.add_inplace(demands)
        self._free_clamped = None

    def remove(self, task: Task) -> None:
        if task not in self.running:
            raise RuntimeError(f"{task!r} not running on {self!r}")
        self.running.discard(task)
        demands = self._placed_demands.pop(task.task_id)
        self.allocated.sub_inplace(demands)
        self._free_clamped = None

    def placed_demands(self, task: Task) -> ResourceVector:
        return self._placed_demands[task.task_id]

    # -- capacity queries -------------------------------------------------------
    def free(self) -> ResourceVector:
        """Capacity minus booked peak demands (may be negative when
        a scheduler over-allocated a fluid dimension)."""
        return self.capacity - self.allocated

    def free_clamped(self) -> ResourceVector:
        """A caller-owned copy of the clamped free vector (some callers
        subtract bookings from it in place)."""
        return self._free_clamped_cached().copy()

    def free_clamped_view(self) -> ResourceVector:
        """The memoized clamped free vector itself — shared and
        read-only.  For hot paths that only *read* headroom; callers
        must never mutate it."""
        return self._free_clamped_cached()

    def _free_clamped_cached(self) -> ResourceVector:
        cached = self._free_clamped
        if cached is None:
            cached = self._free_clamped = self.free().clamp_nonnegative()
        return cached

    def can_fit(self, demands: ResourceVector) -> bool:
        """Full-vector admission check (what Tetris enforces)."""
        return (self.allocated + demands).fits_in(self.capacity)

    def utilization(self) -> ResourceVector:
        """Booked peak demands as a fraction of capacity, per dimension."""
        return self.allocated.normalized_by(self.capacity)

    @property
    def num_running(self) -> int:
        return len(self.running)

    def __repr__(self) -> str:
        return f"Machine(id={self.machine_id}, running={len(self.running)})"
