"""Machines: capacity, placed tasks, and allocation bookkeeping.

A machine records the *peak demands* of the tasks placed on it (its
``allocated`` vector).  Whether a scheduler respects the full vector when
placing is the scheduler's business: slot and DRF schedulers only check a
subset of dimensions, so ``allocated`` can exceed capacity in the fluid
dimensions — that is exactly the over-allocation pathology the paper
describes, and the fluid simulator turns it into contention and slowdown.

Since the structure-of-arrays refactor a machine is a thin view over one
row of a :class:`~repro.cluster.state.ClusterState`: ``capacity``,
``allocated`` and ``observed_usage`` are ``ResourceVector`` wrappers
around matrix rows, so ``add_inplace``/``sub_inplace`` through the object
API write directly into the shared matrices.  A machine constructed
standalone (tests, examples) gets its own single-row state.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cluster.state import ClusterState
from repro.resources import ResourceVector
from repro.workload.task import Task

__all__ = ["Machine"]


class Machine:
    """One machine in the cluster — a view over a ``ClusterState`` row."""

    __slots__ = (
        "machine_id",
        "state",
        "row",
        "capacity",
        "allocated",
        "observed_usage",
        "running",
        "_placed_demands",
        "_free_clamped",
    )

    def __init__(
        self,
        machine_id: int,
        capacity: ResourceVector,
        state: Optional[ClusterState] = None,
        row: Optional[int] = None,
    ):
        if state is None:
            state = ClusterState(capacity.model, capacity.data[None, :].copy())
            row = 0
        self.machine_id = machine_id
        self.state = state
        self.row = int(row)
        # row views: no copy — in-place vector ops write through to the
        # state matrices
        self.capacity = ResourceVector(state.model, state.capacity[self.row])
        self.allocated = ResourceVector(state.model, state.allocated[self.row])
        #: last usage sample reported by the resource tracker (includes
        #: non-task activity such as ingestion); starts at zero
        self.observed_usage = ResourceVector(
            state.model, state.observed[self.row]
        )
        self.running: Set[Task] = set()
        self._placed_demands: Dict[int, ResourceVector] = {}
        #: persistent wrapper over the state's clamped-free row; the row
        #: is refreshed in place so the wrapper never goes stale
        self._free_clamped = ResourceVector(
            state.model, state._free_clamped[self.row]
        )

    # -- placement ------------------------------------------------------------
    def place(self, task: Task, demands: Optional[ResourceVector] = None) -> None:
        """Record a task's placement with its placement-adjusted demands."""
        if task in self.running:
            raise RuntimeError(f"{task!r} already running on {self!r}")
        if demands is None:
            demands = task.demands_on(self.machine_id)
        self.running.add(task)
        self._placed_demands[task.task_id] = demands
        self.allocated.add_inplace(demands)
        self.state.num_running[self.row] += 1
        self.state.mark_dirty(self.row)

    def remove(self, task: Task) -> None:
        if task not in self.running:
            raise RuntimeError(f"{task!r} not running on {self!r}")
        self.running.discard(task)
        demands = self._placed_demands.pop(task.task_id)
        self.allocated.sub_inplace(demands)
        self.state.num_running[self.row] -= 1
        self.state.mark_dirty(self.row)

    def placed_demands(self, task: Task) -> ResourceVector:
        return self._placed_demands[task.task_id]

    # -- capacity queries -------------------------------------------------------
    def free(self) -> ResourceVector:
        """Capacity minus booked peak demands (may be negative when
        a scheduler over-allocated a fluid dimension)."""
        return self.capacity - self.allocated

    def free_clamped(self) -> ResourceVector:
        """A caller-owned copy of the clamped free vector (some callers
        subtract bookings from it in place)."""
        self.state.free_clamped_row(self.row)
        return self._free_clamped.copy()

    def free_clamped_view(self) -> ResourceVector:
        """The maintained clamped free vector itself — shared and
        read-only.  For hot paths that only *read* headroom; callers
        must never mutate it."""
        self.state.free_clamped_row(self.row)
        return self._free_clamped

    def can_fit(self, demands: ResourceVector) -> bool:
        """Full-vector admission check (what Tetris enforces)."""
        return (self.allocated + demands).fits_in(self.capacity)

    def utilization(self) -> ResourceVector:
        """Booked peak demands as a fraction of capacity, per dimension."""
        return self.allocated.normalized_by(self.capacity)

    @property
    def num_running(self) -> int:
        return len(self.running)

    def __repr__(self) -> str:
        return f"Machine(id={self.machine_id}, running={len(self.running)})"
