"""The structure-of-arrays cluster state plane.

Hot per-machine state lives here as contiguous ``(machines, dims)``
numpy matrices — capacity, booked allocations, observed usage — plus a
per-machine occupancy counter.  :class:`~repro.cluster.machine.Machine`
objects are thin views over the rows: their ``capacity`` /
``allocated`` / ``observed_usage`` vectors wrap matrix rows without
copying (``ResourceVector`` preserves array views), so every in-place
mutation made through the object API writes straight into the matrices
and every matrix-level kernel sees it immediately.

The clamped free matrix — what the packing hot path reads — is
maintained lazily: ``place``/``remove`` only flag the touched row
dirty, and :meth:`ClusterState.free_clamped_matrix` refreshes all dirty
rows in one vectorized pass.  The refresh computes exactly
``max(capacity - allocated, 0)`` elementwise, the same float operations
as the scalar ``Machine.free().clamp_nonnegative()`` path, so both
views of the free vector are bit-identical.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

import numpy as np

from repro.resources import EPSILON, ResourceModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.resources import ResourceVector

__all__ = ["ClusterState"]


class ClusterState:
    """Flat array state for a set of machines.

    Attributes
    ----------
    capacity, allocated, observed:
        ``(num_machines, dims)`` float64 matrices.  ``capacity`` is
        fixed after construction; ``allocated`` and ``observed`` are
        mutated in place through the :class:`Machine` row views.
    num_running:
        ``(num_machines,)`` int64 occupancy counters, maintained by
        ``Machine.place``/``Machine.remove``.
    """

    __slots__ = (
        "model",
        "capacity",
        "allocated",
        "observed",
        "num_running",
        "_free_clamped",
        "_free_dirty",
        "_any_dirty",
        "alloc_gen",
    )

    def __init__(self, model: ResourceModel, capacities: np.ndarray):
        capacities = np.ascontiguousarray(capacities, dtype=float)
        if capacities.ndim != 2 or capacities.shape[1] != model.dims:
            raise ValueError(
                f"expected (machines, {model.dims}) capacities, "
                f"got shape {capacities.shape}"
            )
        self.model = model
        self.capacity = capacities
        num = capacities.shape[0]
        self.allocated = np.zeros_like(capacities)
        self.observed = np.zeros_like(capacities)
        self.num_running = np.zeros(num, dtype=np.int64)
        # allocated starts at zero, so free == capacity (clamped is a
        # no-op on non-negative capacities but applied for identity
        # with the scalar path)
        self._free_clamped = np.maximum(capacities - self.allocated, 0.0)
        self._free_dirty = np.zeros(num, dtype=bool)
        self._any_dirty = False
        #: monotone allocation version: bumped on every allocation
        #: change (all mutations funnel through ``mark_dirty``), so
        #: derived caches can validate with one integer compare instead
        #: of re-reading free rows
        self.alloc_gen = 0

    @classmethod
    def from_capacities(
        cls, capacities: Sequence["ResourceVector"]
    ) -> "ClusterState":
        model = capacities[0].model
        return cls(model, np.stack([c.data for c in capacities]))

    @property
    def num_machines(self) -> int:
        return self.capacity.shape[0]

    # -- dirty-row maintenance --------------------------------------------
    def mark_dirty(self, row: int) -> None:
        """Flag a machine's free row stale after an allocation change."""
        self._free_dirty[row] = True
        self._any_dirty = True
        self.alloc_gen += 1

    def _refresh(self) -> None:
        rows = np.flatnonzero(self._free_dirty)
        # max(capacity - allocated, 0) per element: identical float ops
        # to Machine.free().clamp_nonnegative()
        fresh = self.capacity[rows] - self.allocated[rows]
        np.maximum(fresh, 0.0, out=fresh)
        self._free_clamped[rows] = fresh
        self._free_dirty[rows] = False
        self._any_dirty = False

    # -- matrix views ------------------------------------------------------
    def free_clamped_matrix(self) -> np.ndarray:
        """The ``(machines, dims)`` clamped free matrix, freshly
        reconciled.  Shared storage — callers must not mutate it."""
        if self._any_dirty:
            self._refresh()
        return self._free_clamped

    def free_clamped_row(self, row: int) -> np.ndarray:
        """One machine's clamped free vector (shared row view)."""
        if self._any_dirty and self._free_dirty[row]:
            fresh = self.capacity[row] - self.allocated[row]
            np.maximum(fresh, 0.0, out=fresh)
            self._free_clamped[row] = fresh
            self._free_dirty[row] = False
            # _any_dirty stays conservatively True; the next full-matrix
            # refresh clears it
        return self._free_clamped[row]

    def fit_mask(self, demands: np.ndarray) -> np.ndarray:
        """Boolean mask of machines where ``allocated + demands`` fits
        capacity on every dimension (the ``Machine.can_fit`` check,
        vectorized across all machines)."""
        return np.all(
            self.allocated + demands <= self.capacity + EPSILON, axis=1
        )

    def __repr__(self) -> str:
        return (
            f"ClusterState(machines={self.num_machines}, "
            f"dims={self.model.dims})"
        )
