"""An HDFS-like block store: replicated blocks placed across machines.

Map tasks read replicated input blocks; their preferred machines are the
replica holders.  The store also records where task outputs land so that
downstream (shuffle) reads know their sources.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.topology import Topology

__all__ = ["Block", "BlockStore"]

_block_ids = itertools.count()


@dataclass(frozen=True)
class Block:
    """One replicated block of data."""

    block_id: int
    size_mb: float
    replicas: Tuple[int, ...]


class BlockStore:
    """Places blocks on machines with rack-aware replication.

    The default policy mimics HDFS: first replica on a uniformly random
    machine, second on a different machine in the same rack, third in a
    different rack.
    """

    def __init__(
        self,
        topology: Topology,
        replication: int = 3,
        rng: Optional[np.random.Generator] = None,
    ):
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.topology = topology
        self.replication = min(replication, topology.num_machines)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.blocks: Dict[int, Block] = {}
        #: megabytes stored per machine, for evacuation/ingestion accounting
        self.stored_mb: List[float] = [0.0] * topology.num_machines

    # -- placement -------------------------------------------------------------
    def _pick_replicas(self, primary: Optional[int]) -> Tuple[int, ...]:
        topo = self.topology
        if primary is None:
            primary = int(self.rng.integers(topo.num_machines))
        replicas = [primary]
        # second replica: same rack, different machine (if the rack has one)
        rack_peers = [
            m for m in topo.rack_members(topo.rack_of(primary)) if m != primary
        ]
        if len(replicas) < self.replication and rack_peers:
            replicas.append(int(self.rng.choice(rack_peers)))
        # remaining replicas: off-rack machines
        while len(replicas) < self.replication:
            candidate = int(self.rng.integers(topo.num_machines))
            if candidate in replicas:
                continue
            replicas.append(candidate)
        return tuple(replicas)

    def add_block(
        self, size_mb: float, primary: Optional[int] = None
    ) -> Block:
        """Store a new block; returns it with its replica placement."""
        if size_mb < 0:
            raise ValueError("block size must be non-negative")
        block = Block(next(_block_ids), size_mb, self._pick_replicas(primary))
        self.blocks[block.block_id] = block
        for machine in block.replicas:
            self.stored_mb[machine] += size_mb
        return block

    def add_dataset(
        self, total_mb: float, block_mb: float = 256.0
    ) -> List[Block]:
        """Store a dataset as ~``total_mb/block_mb`` blocks; returns them."""
        if block_mb <= 0:
            raise ValueError("block size must be positive")
        blocks = []
        remaining = total_mb
        while remaining > 1e-9:
            size = min(block_mb, remaining)
            blocks.append(self.add_block(size))
            remaining -= size
        return blocks

    def remove_block(self, block_id: int) -> None:
        block = self.blocks.pop(block_id)
        for machine in block.replicas:
            self.stored_mb[machine] -= block.size_mb

    # -- queries ------------------------------------------------------------
    def locations(self, block_id: int) -> Tuple[int, ...]:
        return self.blocks[block_id].replicas

    def machine_blocks(self, machine_id: int) -> List[Block]:
        return [b for b in self.blocks.values() if machine_id in b.replicas]

    def total_stored_mb(self) -> float:
        return sum(b.size_mb * len(b.replicas) for b in self.blocks.values())
