"""Rack topology.

The clusters in the paper are folded-CLOS networks with small
over-subscription between racks (Table 1: <=2 for Bing, 5 for Facebook;
the testbed uses 1.33x).  The paper's scheduler only models the access
link (Section 4.1), but the topology still matters for locality: a map
task prefers a machine holding a replica of its input, then a machine in
the same rack, then anywhere.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["Topology"]


class Topology:
    """Machines grouped into racks.

    Parameters
    ----------
    num_machines:
        Total machine count.
    machines_per_rack:
        Rack width (the testbed used 16 per rack).
    oversubscription:
        Cross-rack over-subscription factor; exposed for experiments that
        scale the core bandwidth, and used to derive an aggregate
        cross-rack capacity if a core model is wanted.
    """

    def __init__(
        self,
        num_machines: int,
        machines_per_rack: int = 16,
        oversubscription: float = 1.33,
    ):
        if num_machines <= 0:
            raise ValueError("need at least one machine")
        if machines_per_rack <= 0:
            raise ValueError("machines_per_rack must be positive")
        self.num_machines = num_machines
        self.machines_per_rack = machines_per_rack
        self.oversubscription = oversubscription
        self._rack_of: List[int] = [
            m // machines_per_rack for m in range(num_machines)
        ]
        self.num_racks = self._rack_of[-1] + 1
        self._members: Dict[int, List[int]] = {}
        for machine, rack in enumerate(self._rack_of):
            self._members.setdefault(rack, []).append(machine)

    def rack_of(self, machine_id: int) -> int:
        return self._rack_of[machine_id]

    def rack_members(self, rack_id: int) -> List[int]:
        return list(self._members[rack_id])

    def same_rack(self, a: int, b: int) -> bool:
        return self._rack_of[a] == self._rack_of[b]

    def locality_level(self, machine_id: int, locations: Sequence[int]) -> str:
        """``"node"`` | ``"rack"`` | ``"off-rack"`` relative to data replicas."""
        if machine_id in locations:
            return "node"
        if any(self.same_rack(machine_id, loc) for loc in locations):
            return "rack"
        return "off-rack"

    def __repr__(self) -> str:
        return (
            f"Topology(machines={self.num_machines}, racks={self.num_racks}, "
            f"oversub={self.oversubscription})"
        )
