"""Cluster substrate: machines, racks, block store."""

from repro.cluster.machine import Machine
from repro.cluster.topology import Topology
from repro.cluster.blockstore import Block, BlockStore
from repro.cluster.cluster import Cluster

__all__ = ["Machine", "Topology", "Block", "BlockStore", "Cluster"]
