"""Lightweight timing hooks for the scheduler/simulator hot paths.

A :class:`Profiler` is an opt-in sink for wall-clock samples.  The engine
and the Tetris scheduler accept one and record how long each scheduling
round (and its phases) took; benchmarks use the same object to measure
before/after speedups instead of asserting them.

The hooks are designed to cost nothing when disabled: callers hold an
``Optional[Profiler]`` and skip the ``perf_counter`` calls entirely when
it is ``None``.

>>> prof = Profiler()
>>> with prof.time("round"):
...     pass
>>> prof.stats("round").count
1
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from math import sqrt
from time import perf_counter
from typing import Dict, Iterator, List, Optional

__all__ = ["PhaseStats", "Profiler"]


@dataclass
class PhaseStats:
    """Accumulated samples for one labelled phase.

    Dispersion is tracked with Welford's online algorithm (numerically
    stable single-pass mean/M2), so downstream consumers — the bench
    degradation detector's tolerance bands in particular — get
    ``variance``/``stddev`` without the profiler keeping every sample.
    """

    count: int = 0
    total: float = 0.0
    max: float = 0.0
    _min: float = field(default=float("inf"), repr=False)
    _mean: float = field(default=0.0, repr=False)
    _m2: float = field(default=0.0, repr=False)

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self._min:
            self._min = duration
        if duration > self.max:
            self.max = duration
        delta = duration - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (duration - self._mean)

    def merge(self, other: "PhaseStats") -> "PhaseStats":
        """Fold another phase's samples into this one and return self.

        Combines the Welford accumulators with the parallel-variance
        formula (Chan et al.), so merged ``mean``/``variance``/``stddev``
        equal what a single pass over the union of samples would give.
        Used to aggregate per-run profilers across process boundaries;
        ``other`` is never modified.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.max = other.max
            self._min = other._min
            self._mean = other._mean
            self._m2 = other._m2
            return self
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean += delta * other.count / combined
        self.count = combined
        self.total += other.total
        if other.max > self.max:
            self.max = other.max
        if other._min < self._min:
            self._min = other._min
        return self

    @property
    def min(self) -> float:
        """Smallest sample, or ``0.0`` when no samples were recorded
        (an empty phase must not report ``inf``)."""
        return self._min if self.count else 0.0

    @property
    def mean(self) -> float:
        # total/count, not the Welford running mean: bit-exact with the
        # pre-Welford behavior (the running mean only feeds ``_m2``)
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (Bessel-corrected); ``0.0`` below 2 samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return sqrt(self.variance)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict export (the shape bench profiles embed)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "stddev": self.stddev,
        }


class Profiler:
    """Accumulates wall-clock samples per label.

    :meth:`time` additionally tracks phase *nesting*: entering a phase
    inside another phase attributes the inner wall time to the outer
    phase's cumulative total but not to its **self time** (cumulative
    minus time spent in nested phases), and re-entering the *same* phase
    while it is already open records nothing — the outer frame already
    owns that wall time, so recursion cannot double-count it.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, PhaseStats] = {}
        #: per-label self time (seconds); equals the cumulative total
        #: for phases never observed with nested children
        self._self_totals: Dict[str, float] = {}
        #: open :meth:`time` frames: [label, accumulated child seconds]
        self._frames: List[list] = []
        #: labels currently open via :meth:`time`, with nesting depth
        self._open: Dict[str, int] = {}

    def record(
        self, label: str, duration: float, self_seconds: Optional[float] = None
    ) -> None:
        """Add one duration sample (seconds) under ``label``.

        ``self_seconds`` is the portion not spent in nested phases;
        direct callers (no nesting information) leave it ``None`` and
        the whole duration counts as self time.
        """
        stats = self._stats.get(label)
        if stats is None:
            stats = self._stats[label] = PhaseStats()
        stats.add(duration)
        self._self_totals[label] = self._self_totals.get(label, 0.0) + (
            duration if self_seconds is None else self_seconds
        )

    @contextmanager
    def time(self, label: str) -> Iterator[None]:
        """Context manager timing its body into ``label``."""
        depth = self._open.get(label, 0)
        self._open[label] = depth + 1
        if depth:
            # re-entrant: the outer frame of this label is already on
            # the clock; recording here would double-count wall time
            try:
                yield
            finally:
                self._open[label] = depth
            return
        frame = [label, 0.0]
        self._frames.append(frame)
        start = perf_counter()
        try:
            yield
        finally:
            duration = perf_counter() - start
            self._frames.pop()
            del self._open[label]
            if self._frames:
                self._frames[-1][1] += duration
            self.record(label, duration, self_seconds=duration - frame[1])

    def stats(self, label: str) -> PhaseStats:
        """Samples recorded under ``label``.

        Unknown labels return a *detached* empty :class:`PhaseStats` —
        the label is **not** registered, so probing never pollutes
        :meth:`labels` or :meth:`summary`, and ``add()`` on the returned
        object does not feed back into this profiler.
        """
        return self._stats.get(label, PhaseStats())

    def merge(self, other: "Profiler") -> "Profiler":
        """Fold another profiler's phases into this one and return self.

        Per-run profilers are picklable, so ``repro.exec`` workers ship
        theirs back whole and the parent merges them label by label
        (:meth:`PhaseStats.merge`); ``other`` is never modified.
        """
        for label in other.labels():
            stats = self._stats.get(label)
            if stats is None:
                stats = self._stats[label] = PhaseStats()
            stats.merge(other._stats[label])
            self._self_totals[label] = (
                self._self_totals.get(label, 0.0) + other.self_total(label)
            )
        return self

    def labels(self) -> List[str]:
        return sorted(self._stats)

    def self_total(self, label: str) -> float:
        """Self time (seconds) accumulated under ``label``: cumulative
        total minus time spent in phases nested within it."""
        stats = self._stats.get(label)
        if stats is None:
            return 0.0
        return self._self_totals.get(label, stats.total)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-label plain-dict export of every recorded phase, each
        with a ``self_total`` entry alongside the PhaseStats fields."""
        out: Dict[str, Dict[str, float]] = {}
        for label in self.labels():
            d = self._stats[label].as_dict()
            d["self_total"] = self.self_total(label)
            out[label] = d
        return out

    def reset(self) -> None:
        self._stats.clear()
        self._self_totals.clear()
        self._frames.clear()
        self._open.clear()

    def summary(self) -> str:
        """A human-readable table of all phases."""
        lines = []
        for label in self.labels():
            s = self._stats[label]
            lines.append(
                f"{label}: n={s.count} total={s.total * 1e3:.2f}ms "
                f"mean={s.mean * 1e3:.3f}ms min={s.min * 1e3:.3f}ms "
                f"max={s.max * 1e3:.3f}ms"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Profiler(labels={self.labels()})"
