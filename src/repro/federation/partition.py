"""Machine-plane partitioners for the scheduler federation.

A partitioner splits a cluster's machine ids across ``num_shards``
scheduler shards.  Two invariants every partitioner must keep (both
hypothesis-tested in ``tests/test_federation_partition.py``):

- **coverage**: every machine lands in exactly one shard;
- **determinism across processes**: the assignment is a pure function
  of ``(machine ids, topology, num_shards)`` — no ``hash()`` (randomized
  per process via ``PYTHONHASHSEED``), no wall clock, no RNG — so the
  in-process shards, the sequencer, and distributed shard workers all
  derive the identical machine→shard map independently.

Two families ship:

- ``contiguous`` — balanced contiguous id-slices.  The simplest layout;
  ignores the network topology.
- ``rack`` — rack-aligned (the default): whole racks are dealt to
  shards round-robin, so a shard owns complete racks and rack-local
  placement decisions never straddle a shard boundary.  This is the
  locality-group-preserving decomposition of Shafiee & Ghaderi: tasks
  whose inputs share a rack stay schedulable by one shard without
  cross-shard coordination.  Racks wider than ``ceil(machines/shards)``
  are still kept whole — balance is best-effort, locality is not.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from repro.cluster.cluster import Cluster

__all__ = [
    "partition_machines",
    "partitioner_names",
    "machine_to_shard",
    "route_stage",
    "stable_stage_hash",
    "DEFAULT_PARTITIONER",
]

DEFAULT_PARTITIONER = "rack"


def _contiguous(cluster: Cluster, num_shards: int) -> List[List[int]]:
    """Balanced contiguous slices of the machine-id range."""
    ids = list(range(cluster.num_machines))
    n = len(ids)
    base, extra = divmod(n, num_shards)
    shards: List[List[int]] = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        shards.append(ids[start:start + size])
        start += size
    return shards


def _rack_aligned(cluster: Cluster, num_shards: int) -> List[List[int]]:
    """Whole racks dealt round-robin to shards, smallest-load first.

    Racks are visited in rack-id order and each goes to the shard with
    the fewest machines so far (ties broken by shard id) — a
    deterministic longest-processing-time-style balance that never
    splits a rack.  With fewer racks than shards the trailing shards
    own no machines, which the federation treats as empty-but-valid.
    """
    topo = cluster.topology
    shards: List[List[int]] = [[] for _ in range(num_shards)]
    for rack_id in range(topo.num_racks):
        members = sorted(topo.rack_members(rack_id))
        target = min(range(num_shards), key=lambda s: (len(shards[s]), s))
        shards[target].extend(members)
    return [sorted(shard) for shard in shards]


_PARTITIONERS = {
    "contiguous": _contiguous,
    "rack": _rack_aligned,
}


def partitioner_names() -> List[str]:
    return sorted(_PARTITIONERS)


def partition_machines(
    cluster: Cluster, num_shards: int, partitioner: str = DEFAULT_PARTITIONER
) -> List[List[int]]:
    """Split the cluster's machines into ``num_shards`` disjoint,
    exhaustive, sorted shard slices."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    try:
        fn = _PARTITIONERS[partitioner]
    except KeyError:
        raise KeyError(
            f"unknown partitioner {partitioner!r}; "
            f"choose from {partitioner_names()}"
        ) from None
    shards = fn(cluster, num_shards)
    return [sorted(shard) for shard in shards]


def machine_to_shard(shards: Sequence[Sequence[int]]) -> Dict[int, int]:
    """Invert a shard assignment into a machine_id -> shard_id map."""
    out: Dict[int, int] = {}
    for shard_id, members in enumerate(shards):
        for machine_id in members:
            out[machine_id] = shard_id
    return out


def route_stage(
    stage, machine_shard: Dict[int, int], num_shards: int
) -> int:
    """The home shard of one stage — a pure function of the stage's
    identity and input locations, shared by the in-process federation
    and the distributed shard workers so both sides route identically.

    Stages with input replicas go to the shard owning the most replica
    machines (ties to the smallest shard id), so the home shard can
    honour input locality without cross-shard reads.  Stages with no
    locality preference (first-wave maps on empty clusters don't exist
    here, but unresolved/unpinned inputs do) spread by
    :func:`stable_stage_hash` — never ``hash()``, which Python
    randomizes per process.
    """
    counts: Dict[int, int] = {}
    for task in stage.tasks:
        for inp in task.inputs:
            for machine_id in inp.locations:
                shard = machine_shard.get(machine_id)
                if shard is not None:
                    counts[shard] = counts.get(shard, 0) + 1
    if counts:
        return max(counts, key=lambda s: (counts[s], -s))
    return stable_stage_hash(stage.job.name, stage.name) % num_shards


def stable_stage_hash(job_name: str, stage_name: str) -> int:
    """A process-stable 64-bit hash of a stage's identity.

    Used to route stages with no input locality to a shard.  Built on
    sha256, **not** ``hash()``: Python randomizes string hashing per
    process, which would route the same stage to different shards in
    the sequencer and in a distributed shard worker.
    """
    digest = hashlib.sha256(
        f"{job_name}/{stage_name}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")
