"""Sharded scheduler federation with optimistic conflict resolution.

Partitions the machine plane across N scheduler shards, each running
the full Tetris scorer over its slice of the cluster, with Omega-style
optimistic concurrency: shards propose placement transactions, a round
sequencer validates and commits them against the authoritative cluster
state, and conflicting proposals are retried with bounded backoff.

See ``docs/federation.md`` for the design and the standing invariants
(``--shards 1`` is bit-identical to the centralized scheduler; N-shard
runs are deterministic for a fixed seed/shard-count/partitioner).
"""

from repro.federation.federated import (
    SHARD_BACKENDS,
    FederatedScheduler,
    FederationConfig,
)
from repro.federation.partition import (
    DEFAULT_PARTITIONER,
    machine_to_shard,
    partition_machines,
    partitioner_names,
    route_stage,
    stable_stage_hash,
)
from repro.federation.sequencer import CONFLICT_KINDS, RoundSequencer

__all__ = [
    "FederationConfig",
    "FederatedScheduler",
    "SHARD_BACKENDS",
    "RoundSequencer",
    "CONFLICT_KINDS",
    "partition_machines",
    "partitioner_names",
    "machine_to_shard",
    "route_stage",
    "stable_stage_hash",
    "DEFAULT_PARTITIONER",
]
