"""Distributed shard worker: a delta-synced mirror of the parent run.

Each worker process hosts one scheduler shard for the ``process``
federation backend.  Rather than shipping the whole cluster/workload
state every round, the parent sends an *init* payload once (the trace,
the experiment config, the machine partition) and then only the
delta-encoded event log tail each round.  The worker materializes its
own private copy of the run — cluster, jobs, estimator, a
:class:`~repro.schedulers.tetris.TetrisScheduler` with a shard-filtered
:class:`~repro.schedulers.stage_index.StageIndex` — and replays the
deltas to keep that mirror bit-for-bit in step with the authoritative
engine state (the apply orders below copy ``repro.sim.engine``'s event
handlers exactly).

Deltas are keyed by **stable names** ``(job.name, stage.name,
task.index)``; the in-process ``task_id``/``stage_id``/``job_id``
counters are process-global and differ between parent and worker.

Sequencing: every request carries ``(epoch, from_seq)``.  A mismatch —
a fresh worker process behind a sticky pool slot, or a stale mirror
from an earlier run — answers ``("resync", shard)`` and the parent
re-sends the full history with the init payload.  Mirrors are pure
functions of ``(init payload, delta history)``, so a resynced worker
reconverges to the identical state.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.federation.partition import machine_to_shard, route_stage
from repro.resources import ResourceVector
from repro.schedulers.stage_index import StageIndex
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.task import TaskInput
from repro.workload.trace import materialize_trace

__all__ = ["federation_shard_round"]

#: shard_id -> live mirror in this worker process (one per sticky slot,
#: but a worker keeps whatever shards it has been asked to host)
_MIRRORS: Dict[int, "_ShardMirror"] = {}


class _ShardMirror:
    """One shard's private replica of the run, fed by the delta log."""

    def __init__(self, epoch: str, shard: int, init: dict) -> None:
        self.epoch = epoch
        self.shard = shard
        self.seq = 0
        run_cfg = init["config"]
        self.cluster = run_cfg.make_cluster()
        jobs = materialize_trace(
            init["trace"], self.cluster, seed=run_cfg.seed
        )
        self.jobs = {job.name: job for job in jobs}
        self.stages = {
            (job.name, stage.name): stage
            for job in jobs
            for stage in job.dag
        }
        self.tasks = {
            (job.name, stage.name, task.index): task
            for job in jobs
            for stage in job.dag
            for task in stage.tasks
        }
        shards = init["shards"]
        self.machine_shard = machine_to_shard(shards)
        self.num_shards = len(shards)
        self.floating: Set[int] = set()
        self._routes: Dict[int, int] = {}
        scheduler = TetrisScheduler(config=init["tetris"])
        scheduler.index = StageIndex(stage_filter=self._allow)
        estimator = (
            run_cfg.estimator_factory()
            if run_cfg.estimator_factory is not None
            else None
        )
        scheduler.bind(self.cluster, estimator=estimator)
        self.scheduler = scheduler
        self.estimator = scheduler.estimator

    def _allow(self, stage) -> bool:
        stage_id = stage.stage_id
        if stage_id in self.floating:
            return True
        shard = self._routes.get(stage_id)
        if shard is None:
            shard = route_stage(stage, self.machine_shard, self.num_shards)
            self._routes[stage_id] = shard
        return shard == self.shard

    def _vector(self, raw: bytes) -> ResourceVector:
        return ResourceVector(
            self.cluster.model,
            np.frombuffer(raw, dtype=np.float64).copy(),
        )

    # -- delta replay (orders copied from repro.sim.engine) -----------------
    def apply(self, deltas) -> None:
        scheduler = self.scheduler
        for delta in deltas:
            kind = delta[0]
            if kind == "start":
                _, key, machine_id, booked_bytes, time = delta
                task = self.tasks[tuple(key)]
                booked = self._vector(booked_bytes)
                self.cluster.machine(machine_id).place(task, booked)
                task.mark_running(machine_id, time)
                scheduler.on_task_started(task, machine_id, booked)
            elif kind == "finish":
                _, key, time = delta
                task = self.tasks[tuple(key)]
                self.cluster.machine(task.machine_id).remove(task)
                task.mark_finished(time)
                self.estimator.record_completion(task)
                # barrier bookkeeping only: newly released stages arrive
                # as their own "release" deltas, inputs pre-resolved
                task.job.note_task_finished()
                scheduler.on_task_finished(task, time)
                if task.job.is_finished and task.job.finish_time is None:
                    task.job.mark_finished(time)
            elif kind == "fail":
                _, key, time = delta
                task = self.tasks[tuple(key)]
                self.cluster.machine(task.machine_id).remove(task)
                # engine order: the scheduler sees the task still RUNNING
                scheduler.on_task_failed(task, time)
                task.mark_failed(time)
            elif kind == "release":
                _, job_name, stage_name, payload, time = delta
                stage = self.stages[(job_name, stage_name)]
                for task, inputs in zip(stage.tasks, payload):
                    task.inputs = [
                        TaskInput(size_mb, tuple(locations))
                        for size_mb, locations in inputs
                    ]
                scheduler.on_stage_released(stage, time)
            elif kind == "arrive":
                _, job_name, time = delta
                job = self.jobs[job_name]
                job.arrive()
                job.note_task_finished()
                if job.is_finished:
                    job.mark_finished(time)
                else:
                    scheduler.on_job_arrival(job, time)
            elif kind == "float":
                _, job_name, stage_name = delta
                stage = self.stages[(job_name, stage_name)]
                self.floating.add(stage.stage_id)
                scheduler.index.add_stage(stage)
            elif kind == "reject":
                _, key = delta
                task = self.tasks[tuple(key)]
                scheduler._release_remote_grants(task.task_id)
                scheduler.index.requeue(task)
            else:  # pragma: no cover - protocol versioning guard
                raise ValueError(f"unknown delta kind {kind!r}")
        self.seq += len(deltas)

    # -- one propose step ---------------------------------------------------
    def propose(self, time: float, machine_ids) -> list:
        if not machine_ids:
            return []
        placements = self.scheduler.schedule(time, list(machine_ids))
        out = []
        for p in placements:
            task = p.task
            key = (task.job.name, task.stage.name, task.index)
            grants = [
                (int(source_id), float(rate))
                for source_id, rate in self.scheduler._remote_by_task.get(
                    task.task_id, ()
                )
            ]
            out.append(
                (key, int(p.machine_id), p.booked.data.tobytes(), grants)
            )
        return out


def federation_shard_round(request: dict) -> tuple:
    """Serve one parent round-trip (runs inside a pool worker).

    Returns ``("ok", shard, proposals, seq)`` or ``("resync", shard)``
    when the mirror cannot apply the request's delta tail (wrong epoch
    or a sequence gap — e.g. this process replaced a crashed worker).
    """
    shard = request["shard"]
    if request.get("noop"):
        return ("ok", shard, [], None)
    epoch = request["epoch"]
    mirror = _MIRRORS.get(shard)
    init = request.get("init")
    if init is not None and request["from_seq"] == 0:
        mirror = _ShardMirror(epoch, shard, init)
        _MIRRORS[shard] = mirror
    if (
        mirror is None
        or mirror.epoch != epoch
        or mirror.seq != request["from_seq"]
    ):
        return ("resync", shard)
    mirror.apply(request["deltas"])
    proposals = mirror.propose(request["time"], request["machines"])
    return ("ok", shard, proposals, mirror.seq)
