"""Sharded scheduler federation with optimistic conflict resolution.

The machine plane is partitioned across ``num_shards`` scheduler shards
(:mod:`repro.federation.partition`), each running the full Tetris scorer
over its row-slice of the :class:`~repro.cluster.state.ClusterState`.
Stages are routed to the shard owning most of their input replicas
(:func:`repro.federation.partition.route_stage`), so a shard's fill
loops scan a fraction of the cluster-wide stage set — the source of the
federation's round-throughput win on large clusters.

Concurrency is Omega-style optimistic (Schwarzkopf et al., EuroSys'13):
shards propose placement transactions computed against a shared-state
snapshot, and a :class:`~repro.federation.sequencer.RoundSequencer`
validates each against the authoritative state in deterministic shard
order before committing.  Conflicting proposals are rolled back and
retried in a bounded number of passes; still-conflicting proposals abort
for the round (the task is simply a candidate again next round).
Conflict, retry and abort counts are exported through ``repro.obs``.

Two execution modes, selected by ``FederationConfig.backend``:

- ``inline`` — all shards in this process, planning against the live
  cluster state.  Machines are disjoint per shard, so capacity replay is
  unnecessary; only ``duplicate`` (floating stages) and ``remote``
  (cross-shard remote-read bandwidth) conflicts can occur.
- ``process`` — each shard is a long-lived worker process holding a
  *mirror* of the run (:mod:`repro.federation.worker`), kept in sync by
  a delta-encoded event log.  Workers propose against their mirror (a
  snapshot that trails the authoritative state only by this round's own
  commits), and the parent validates with full capacity replay.  The
  worker pool is a sticky :class:`repro.exec.ProcessPoolBackend`
  (shard *i* always lands on slot *i*); a respawned worker is detected
  by a sequence mismatch and re-synced from the full delta history.

Starvation safety: a stage with runnable tasks that places nothing for
``spill_after`` simulated seconds is *promoted to floating* — indexed by
every shard — so work that cannot fit its home shard spills to the rest
of the cluster (at the price of possible duplicate conflicts).

Standing invariant: ``num_shards == 1`` delegates straight to the inner
scheduler — placements and decision traces are bit-identical to the
centralized run (property-tested in ``tests/test_federation.py``), and
N-shard runs are deterministic for a fixed (seed, N, partitioner).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

import numpy as np

from repro.federation.partition import (
    DEFAULT_PARTITIONER,
    machine_to_shard,
    partition_machines,
    route_stage,
)
from repro.federation.sequencer import CONFLICT_KINDS, RoundSequencer
from repro.resources import EPSILON, ResourceVector
from repro.schedulers.base import Placement, Scheduler
from repro.schedulers.fairness_policy import DRFFairnessPolicy
from repro.schedulers.stage_index import StageIndex
from repro.schedulers.tetris import GrantLedger, TetrisScheduler
from repro.workload.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import Registry
    from repro.workload.stage import Stage

__all__ = ["FederationConfig", "FederatedScheduler", "SHARD_BACKENDS"]

SHARD_BACKENDS = ("inline", "process")

#: distinguishes runs sharing a worker pool slot: a mirror built for an
#: earlier run must never answer for a later one
_epochs = itertools.count()


@dataclass(frozen=True)
class FederationConfig:
    """Knobs of the sharded federation.

    - ``num_shards``: scheduler shards the machine plane splits into
      (1 = centralized pass-through);
    - ``partitioner``: machine partitioner name
      (:func:`repro.federation.partition.partitioner_names`);
    - ``backend``: ``inline`` (in-process shards) or ``process``
      (distributed shards over a persistent worker pool);
    - ``max_retry_passes``: bounded backoff — how many extra validation
      passes a rejected proposal may get before aborting for the round;
    - ``spill_after``: simulated seconds a stage may sit with runnable
      tasks and no placement before it is promoted to floating (indexed
      by every shard); ``None`` disables spilling;
    - ``base_seed``: seed for the (non-decision) resync backoff jitter.
    """

    num_shards: int = 1
    partitioner: str = DEFAULT_PARTITIONER
    backend: str = "inline"
    max_retry_passes: int = 2
    spill_after: Optional[float] = 15.0
    base_seed: int = 0
    resync_retries: int = 3

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1: {self.num_shards}")
        if self.backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard backend {self.backend!r}; "
                f"choose from {list(SHARD_BACKENDS)}"
            )
        if self.max_retry_passes < 0:
            raise ValueError("max_retry_passes must be non-negative")
        if self.spill_after is not None and self.spill_after <= 0:
            raise ValueError("spill_after must be positive or None")


class FederatedScheduler(Scheduler):
    """Facade presenting N scheduler shards as one engine-facing scheduler.

    Wraps a :class:`TetrisScheduler` template.  With one shard it is a
    pure pass-through; with more it partitions machines, routes stages,
    gathers shard proposals and sequences them through a
    :class:`RoundSequencer` each round.
    """

    name = "tetris"

    def __init__(
        self,
        inner: Scheduler,
        config: Optional[FederationConfig] = None,
    ) -> None:
        super().__init__()
        if not isinstance(inner, TetrisScheduler):
            raise ValueError(
                "the federation shards the Tetris scorer; got "
                f"{type(inner).__name__} (run without --shards or switch "
                "to the tetris scheduler)"
            )
        self.fed_config = config if config is not None else FederationConfig()
        self.name = inner.name
        self.template = inner
        n = self.fed_config.num_shards
        self.process_mode = self.fed_config.backend == "process" and n > 1
        if self.process_mode:
            if type(inner) is not TetrisScheduler:
                raise ValueError(
                    "distributed shards rebuild a plain TetrisScheduler "
                    f"inside each worker; got {type(inner).__name__} "
                    "(use --shard-backend inline)"
                )
            if inner.group_of is not None or type(
                inner.fairness_policy
            ) is not DRFFairnessPolicy:
                raise ValueError(
                    "distributed shards support only the default DRF "
                    "fairness policy without job groups (the policy must "
                    "be reconstructible inside a worker process)"
                )
        #: machine plane partition (filled at bind)
        self.shards: List[List[int]] = []
        self._machine_shard: Dict[int, int] = {}
        #: stage routing cache + floating (all-shard) promotions
        self._stage_route: Dict[int, int] = {}
        self._floating: Set[int] = set()
        #: per-stage [stage, last-progress-time] feeding spill promotion
        self._stage_progress: Dict[int, list] = {}
        #: in-process shard schedulers (empty in process mode)
        self.inners: List[TetrisScheduler] = []
        if not self.process_mode:
            if n == 1:
                self.inners = [inner]
            else:
                for shard in range(n):
                    # type(inner), not TetrisScheduler: the srtf-only /
                    # packing-only ablations shard with their own scoring
                    kwargs = dict(
                        config=inner.config,
                        fairness_policy=inner.fairness_policy,
                    )
                    if inner.group_of is not None:
                        kwargs["group_of"] = inner.group_of
                    clone = type(inner)(**kwargs)
                    clone.index = StageIndex(
                        stage_filter=self._shard_filter(shard)
                    )
                    self.inners.append(clone)
                # one shared remote-grant ledger: inline shards run
                # sequentially in this process, so letting shard k+1
                # plan against the grants shard k just made mirrors the
                # centralized serialized fill instead of optimistically
                # thrashing on source-machine headroom (the sequencer's
                # global check remains the safety net, and stays
                # authoritative for process shards, whose mirrors
                # genuinely race).  _remote_by_task stays per-shard, so
                # each inner releases exactly the grants it recorded.
                self._shared_remote = GrantLedger()
                for clone in self.inners:
                    clone._remote_granted = self._shared_remote
        #: process-mode state -------------------------------------------------
        self._workload: Optional[tuple] = None  # (trace, ExperimentConfig)
        self._pool = None
        self._epoch: Optional[str] = None
        #: append-only event log mirrored into the workers, and the
        #: per-shard cursor of how much each has confirmed applying
        self._delta_log: List[tuple] = []
        self._sent_upto: List[int] = [0] * n
        #: stable-name lookup for worker proposals / deltas
        self._task_by_key: Dict[tuple, Task] = {}
        self._stage_by_key: Dict[tuple, "Stage"] = {}
        #: parent-side global remote-grant ledger (the workers each hold
        #: only their own shard's slice)
        self._proc_remote: Dict[int, float] = {}
        self._proc_remote_by_task: Dict[int, List[Tuple[int, float]]] = {}
        #: optional timing sink, forwarded to every in-process shard
        self._profiler = None
        #: optional metric instruments (None keeps hot paths cheap)
        self._m_shards = self._m_proposals = self._m_commits = None
        self._m_retries = self._m_aborts = self._m_spills = None
        self._m_commit_seconds = None
        self._m_conflicts: Dict[str, object] = {}

    # -- observability ---------------------------------------------------------
    @property
    def profiler(self):
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self._profiler = value
        for inner in self.inners:
            inner.profiler = value

    @property
    def prefilter_machines(self) -> bool:
        return all(inner.prefilter_machines for inner in self.inners)

    @prefilter_machines.setter
    def prefilter_machines(self, value: bool) -> None:
        for inner in self.inners:
            inner.prefilter_machines = value

    def use_observability(self, trace=None, metrics=None) -> None:
        super().use_observability(trace=trace, metrics=metrics)
        for inner in self.inners:
            inner.use_observability(trace=trace, metrics=metrics)

    def _register_metrics(self, registry: "Registry") -> None:
        self._m_shards = registry.gauge(
            "repro_federation_shards",
            "Scheduler shards the machine plane is partitioned across",
        )
        self._m_shards.set(self.fed_config.num_shards)
        self._m_proposals = registry.counter(
            "repro_federation_proposals_total",
            "Placement transactions offered to the sequencer",
        )
        self._m_commits = registry.counter(
            "repro_federation_commits_total",
            "Proposals validated and committed by the sequencer",
        )
        conflicts = registry.counter(
            "repro_federation_conflicts_total",
            "Proposals rejected by the sequencer, by conflict kind",
            labelnames=("kind",),
        )
        self._m_conflicts = {
            kind: conflicts.labels(kind=kind) for kind in CONFLICT_KINDS
        }
        self._m_retries = registry.counter(
            "repro_federation_retries_total",
            "Rejected proposals granted another validation pass",
        )
        self._m_aborts = registry.counter(
            "repro_federation_aborts_total",
            "Proposals still conflicting when the retry passes ran out",
        )
        self._m_spills = registry.counter(
            "repro_federation_spills_total",
            "Starved stages promoted to floating (indexed by every shard)",
        )
        from repro.obs.registry import LATENCY_BUCKETS

        self._m_commit_seconds = registry.histogram(
            "repro_federation_commit_seconds",
            "Wall-clock seconds validating and committing one round's "
            "shard proposals",
            buckets=LATENCY_BUCKETS,
        )

    # -- stage routing ---------------------------------------------------------
    def _route(self, stage: "Stage") -> int:
        """The stage's home shard (cached; computed post input
        resolution, i.e. at first index admission)."""
        shard = self._stage_route.get(stage.stage_id)
        if shard is None:
            shard = route_stage(
                stage, self._machine_shard, self.fed_config.num_shards
            )
            self._stage_route[stage.stage_id] = shard
        return shard

    def _shard_filter(self, shard_id: int):
        def allow(stage: "Stage") -> bool:
            return (
                stage.stage_id in self._floating
                or self._route(stage) == shard_id
            )

        return allow

    # -- wiring ----------------------------------------------------------------
    def provide_workload(self, trace, config) -> None:
        """Hand the federation the run's workload spec — what distributed
        shard workers materialize their mirrors from.  Required before
        the first ``schedule()`` in process mode; a no-op otherwise."""
        self._workload = (tuple(trace), config)

    def bind(self, cluster, estimator=None, tracker=None) -> None:
        if self.process_mode and tracker is not None:
            raise ValueError(
                "distributed shards do not support the resource tracker "
                "(its availability view lives in the parent only); use "
                "--shard-backend inline or drop the tracker"
            )
        super().bind(cluster, estimator=estimator, tracker=tracker)
        cfg = self.fed_config
        self.shards = partition_machines(
            cluster, cfg.num_shards, cfg.partitioner
        )
        self._machine_shard = machine_to_shard(self.shards)
        if self._m_shards is not None:
            self._m_shards.set(cfg.num_shards)
        for inner in self.inners:
            inner.bind(cluster, estimator=self.estimator, tracker=tracker)

    def close(self) -> None:
        """Shut down the distributed worker pool (no-op inline)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- workload callbacks ----------------------------------------------------
    def prewarm_job(self, job) -> None:
        for inner in self.inners:
            inner.prewarm_job(job)

    def on_job_arrival(self, job, time: float) -> None:
        super().on_job_arrival(job, time)
        if self.process_mode:
            for stage in job.dag:
                self._stage_by_key[(job.name, stage.name)] = stage
                for task in stage.tasks:
                    self._task_by_key[
                        (job.name, stage.name, task.index)
                    ] = task
            self._delta_log.append(("arrive", job.name, time))
        for inner in self.inners:
            inner.on_job_arrival(job, time)
        if self._sharded():
            for stage in job.dag:
                if stage.is_released():
                    self._stage_progress[stage.stage_id] = [stage, time]

    def on_task_started(self, task, machine_id, booked) -> None:
        # process mode: the matching "start" delta was appended at commit
        # time (so retry passes within the round already carried it)
        super().on_task_started(task, machine_id, booked)
        for inner in self.inners:
            inner.on_task_started(task, machine_id, booked)

    def on_task_finished(self, task, time: float) -> None:
        super().on_task_finished(task, time)
        for inner in self.inners:
            inner.on_task_finished(task, time)
        if self.process_mode:
            self._release_proc_grants(task.task_id)
            self._delta_log.append(("finish", self._key(task), time))
        if self._sharded() and task.stage.is_finished():
            stage_id = task.stage.stage_id
            self._stage_progress.pop(stage_id, None)
            self._floating.discard(stage_id)
            self._stage_route.pop(stage_id, None)

    def on_task_failed(self, task, time: float) -> None:
        super().on_task_failed(task, time)
        for inner in self.inners:
            inner.on_task_failed(task, time)
        if self.process_mode:
            self._release_proc_grants(task.task_id)
            self._delta_log.append(("fail", self._key(task), time))
        if self._sharded():
            # the retried task waits again; restart its stage's clock
            self._stage_progress.setdefault(
                task.stage.stage_id, [task.stage, time]
            )

    def on_stage_released(self, stage, time: float) -> None:
        super().on_stage_released(stage, time)
        for inner in self.inners:
            inner.on_stage_released(stage, time)
        if self.process_mode:
            # inputs are resolved by now (the engine pins shuffle reads
            # before releasing); ship them so mirrors route identically
            payload = tuple(
                tuple(
                    (inp.size_mb, tuple(inp.locations))
                    for inp in task.inputs
                )
                for task in stage.tasks
            )
            self._delta_log.append(
                ("release", stage.job.name, stage.name, payload, time)
            )
        if self._sharded():
            self._stage_progress[stage.stage_id] = [stage, time]

    def mark_all_machines_dirty(self) -> None:
        super().mark_all_machines_dirty()
        for inner in self.inners:
            inner.mark_all_machines_dirty()

    def _sharded(self) -> bool:
        return self.fed_config.num_shards > 1

    def _key(self, task: Task) -> tuple:
        return (task.job.name, task.stage.name, task.index)

    # -- spill promotion -------------------------------------------------------
    def _promote_starved(self, time: float) -> None:
        spill = self.fed_config.spill_after
        if spill is None:
            return
        for stage_id, entry in list(self._stage_progress.items()):
            stage, last = entry
            if stage.is_finished():
                del self._stage_progress[stage_id]
                continue
            if stage_id in self._floating:
                continue
            if stage.num_runnable == 0:
                entry[1] = time  # nothing waiting; don't run the clock
                continue
            if time - last > spill:
                self._floating.add(stage_id)
                for inner in self.inners:
                    inner.index.add_stage(stage)
                if self.process_mode:
                    self._delta_log.append(
                        ("float", stage.job.name, stage.name)
                    )
                if self._m_spills is not None:
                    self._m_spills.inc()
                if self.trace is not None:
                    self.trace.emit(
                        "federation_spill",
                        time=time,
                        job=stage.job.name,
                        stage=stage.name,
                        home_shard=self._route(stage),
                        waited=time - last,
                    )

    # -- the decision loop -----------------------------------------------------
    def schedule(
        self, time: float, machine_ids: Optional[List[int]] = None
    ) -> List[Placement]:
        if not self.process_mode and len(self.inners) == 1:
            # centralized pass-through: bit-identical to the bare scheduler
            return self.inners[0].schedule(time, machine_ids)
        self._promote_starved(time)
        n = self.fed_config.num_shards
        ids = self.consume_dirty_machines(machine_ids)
        if ids is None:
            per_shard: List[List[int]] = [list(s) for s in self.shards]
        else:
            per_shard = [[] for _ in range(n)]
            for machine_id in ids:
                shard = self._machine_shard.get(machine_id)
                if shard is not None:
                    per_shard[shard].append(machine_id)
        if self.process_mode:
            return self._schedule_process(time, per_shard)
        return self._schedule_inline(time, per_shard)

    def _note_conflict(self, task: Task, machine_id, kind, pass_no, time):
        counter = self._m_conflicts.get(kind)
        if counter is not None:
            counter.inc()
        if self.trace is not None:
            self.trace.emit(
                "federation_conflict",
                time=time,
                job=task.job.name,
                stage=task.stage.name,
                task=task.index,
                machine=machine_id,
                kind=kind,
                retry_pass=pass_no,
            )

    def _note_commit(self, task: Task, time: float) -> None:
        if self._m_commits is not None:
            self._m_commits.inc()
        entry = self._stage_progress.get(task.stage.stage_id)
        if entry is not None:
            entry[1] = time

    # -- inline sharding -------------------------------------------------------
    def _schedule_inline(
        self, time: float, per_shard: List[List[int]]
    ) -> List[Placement]:
        cfg = self.fed_config
        # pre-round snapshot of the shared remote ledger (the inners all
        # alias one dict, so this is already the global sum)
        base_remote: Dict[int, float] = dict(self._shared_remote)
        # the candidate job list and barrier set depend only on global
        # job state, which is identical across inline shards and frozen
        # for the duration of the round (placements commit after it) —
        # compute both once and inject, instead of paying the full
        # job-list scan + fairness sort per active shard per pass
        shared_jobs = self.inners[0].candidate_jobs()
        shared_barriers = (
            self.inners[0]._barrier_stages(shared_jobs)
            if shared_jobs
            else set()
        )
        for inner in self.inners:
            inner._round_jobs = shared_jobs
            inner._round_barriers = shared_barriers
        try:
            return self._schedule_inline_round(
                time, per_shard, cfg, base_remote
            )
        finally:
            for inner in self.inners:
                inner._round_jobs = None
                inner._round_barriers = None

    def _schedule_inline_round(
        self,
        time: float,
        per_shard: List[List[int]],
        cfg: FederationConfig,
        base_remote: Dict[int, float],
    ) -> List[Placement]:
        # propose: machines are disjoint per shard and planned against
        # the live state, so no capacity replay is needed at validation
        proposals: List[List[Placement]] = []
        for shard, inner in enumerate(self.inners):
            if per_shard[shard]:
                proposals.append(inner.schedule(time, per_shard[shard]))
            else:
                proposals.append([])
        seq = RoundSequencer(self.cluster, base_remote=base_remote)
        commit_start = perf_counter()
        for pass_no in range(cfg.max_retry_passes + 1):
            newly = len(seq.committed)
            rejected: List[List[Tuple[Placement, str]]] = [
                [] for _ in self.inners
            ]
            for shard, inner in enumerate(self.inners):
                for p in proposals[shard]:
                    if self._m_proposals is not None:
                        self._m_proposals.inc()
                    grants = inner._remote_by_task.get(p.task.task_id, ())
                    kind = seq.offer(p.task, p.machine_id, p.booked, grants)
                    if kind is None:
                        self._note_commit(p.task, time)
                    else:
                        rejected[shard].append((p, kind))
            # roll back rejects first (requeue discards any claim), THEN
            # re-claim this pass's commits in every shard — a floating
            # task another shard just won must not be re-proposable
            for shard, inner in enumerate(self.inners):
                for p, kind in rejected[shard]:
                    inner._release_remote_grants(p.task.task_id)
                    inner.index.requeue(p.task)
                    self._note_conflict(
                        p.task, p.machine_id, kind, pass_no, time
                    )
            for p in seq.committed[newly:]:
                for inner in self.inners:
                    inner.index.claim(p.task)
            total_rejects = sum(len(r) for r in rejected)
            if total_rejects == 0:
                break
            if pass_no == cfg.max_retry_passes:
                if self._m_aborts is not None:
                    self._m_aborts.inc(total_rejects)
                break
            if self._m_retries is not None:
                self._m_retries.inc(total_rejects)
            # retry: re-plan only the machines whose proposals bounced,
            # against free vectors net of this round's pending commits
            for shard, inner in enumerate(self.inners):
                if not rejected[shard]:
                    proposals[shard] = []
                    continue
                pending = sorted({p.machine_id for p, _ in rejected[shard]})
                inner._free_adjust = seq.committed_free
                try:
                    proposals[shard] = inner.schedule(time, pending)
                finally:
                    inner._free_adjust = None
        if self._m_commit_seconds is not None:
            self._m_commit_seconds.observe(perf_counter() - commit_start)
        return seq.committed

    # -- distributed sharding --------------------------------------------------
    def _release_proc_grants(self, task_id: int) -> None:
        for source_id, rate in self._proc_remote_by_task.pop(task_id, ()):
            left = self._proc_remote.get(source_id, 0.0) - rate
            if left <= EPSILON:
                self._proc_remote.pop(source_id, None)
            else:
                self._proc_remote[source_id] = left

    def _ensure_pool(self):
        if self._pool is None:
            from repro.exec.backends import ProcessPoolBackend

            if self._workload is None:
                raise RuntimeError(
                    "process-mode federation needs the workload spec to "
                    "sync shard mirrors; call provide_workload(trace, "
                    "config) before the first schedule()"
                )
            self._pool = ProcessPoolBackend(
                workers=self.fed_config.num_shards,
                sticky=True,
                retries=self.fed_config.resync_retries,
            )
            self._epoch = f"{os.getpid()}-{next(_epochs)}"
        return self._pool

    def _dispatch_round(
        self, time: float, pending: List[List[int]]
    ) -> List[list]:
        """One propose round against the worker pool.

        Sends every shard its delta tail plus the machines to plan, and
        returns per-shard proposal lists.  A worker answering with a
        sequence/epoch mismatch (fresh process behind a sticky slot) is
        re-sent the full history with an init payload; retries are
        bounded.  Shards already answered get explicit no-op requests so
        the sticky item→slot mapping stays aligned.
        """
        from repro.federation.worker import federation_shard_round

        n = self.fed_config.num_shards
        pool = self._ensure_pool()
        trace, run_cfg = self._workload
        results: List[Optional[list]] = [None] * n
        need_init: Set[int] = set()
        base_len = len(self._delta_log)
        for attempt in range(self.fed_config.resync_retries + 1):
            requests = []
            for shard in range(n):
                if results[shard] is not None:
                    requests.append({"noop": True, "shard": shard})
                    continue
                init_payload = None
                from_seq = self._sent_upto[shard]
                if shard in need_init:
                    from_seq = 0
                    init_payload = {
                        "shards": self.shards,
                        "trace": trace,
                        "config": run_cfg,
                        "tetris": self.template.config,
                    }
                requests.append({
                    "epoch": self._epoch,
                    "shard": shard,
                    "time": time,
                    "machines": pending[shard],
                    "from_seq": from_seq,
                    "deltas": self._delta_log[from_seq:base_len],
                    "init": init_payload,
                })
            outcomes = pool.map(federation_shard_round, requests)
            unresolved: Set[int] = set()
            for shard in range(n):
                if results[shard] is not None:
                    continue
                outcome = outcomes[shard]
                if not outcome.ok:
                    unresolved.add(shard)
                    need_init.add(shard)
                    continue
                status = outcome.value[0]
                if status == "resync":
                    unresolved.add(shard)
                    need_init.add(shard)
                    continue
                results[shard] = outcome.value[2]
                self._sent_upto[shard] = base_len
            if not unresolved:
                return results  # type: ignore[return-value]
        failed = sorted(s for s in range(n) if results[s] is None)
        raise RuntimeError(
            f"federation shards {failed} failed to answer after "
            f"{self.fed_config.resync_retries + 1} attempts"
        )

    def _schedule_process(
        self, time: float, per_shard: List[List[int]]
    ) -> List[Placement]:
        cfg = self.fed_config
        model = self.cluster.model
        seq = RoundSequencer(
            self.cluster,
            base_remote=dict(self._proc_remote),
            replay_fit=True,
        )
        commit_seconds = 0.0
        pending = per_shard
        for pass_no in range(cfg.max_retry_passes + 1):
            results = self._dispatch_round(time, pending)
            commit_start = perf_counter()
            rejected: List[List[Tuple[Task, int, str]]] = [
                [] for _ in range(cfg.num_shards)
            ]
            for shard in range(cfg.num_shards):
                for key, machine_id, booked_bytes, grants in results[shard]:
                    task = self._task_by_key[tuple(key)]
                    booked = ResourceVector(
                        model,
                        np.frombuffer(
                            booked_bytes, dtype=np.float64
                        ).copy(),
                    )
                    if self._m_proposals is not None:
                        self._m_proposals.inc()
                    kind = seq.offer(task, machine_id, booked, grants)
                    if kind is None:
                        self._note_commit(task, time)
                        # commit-time start delta: retry passes (and the
                        # next round) replay it into every mirror before
                        # they plan again, so workers never need a
                        # pending-commit free adjustment
                        self._delta_log.append(
                            ("start", self._key(task), machine_id,
                             booked_bytes, time)
                        )
                        if grants:
                            self._proc_remote_by_task[task.task_id] = [
                                (int(s), float(r)) for s, r in grants
                            ]
                            for source_id, rate in grants:
                                self._proc_remote[int(source_id)] = (
                                    self._proc_remote.get(int(source_id), 0.0)
                                    + float(rate)
                                )
                    else:
                        # the reject delta rolls the proposer's mirror
                        # back (grants released, task requeued)
                        self._delta_log.append(("reject", self._key(task)))
                        rejected[shard].append((task, machine_id, kind))
                        self._note_conflict(
                            task, machine_id, kind, pass_no, time
                        )
            commit_seconds += perf_counter() - commit_start
            total_rejects = sum(len(r) for r in rejected)
            if total_rejects == 0:
                break
            if pass_no == cfg.max_retry_passes:
                if self._m_aborts is not None:
                    self._m_aborts.inc(total_rejects)
                break
            if self._m_retries is not None:
                self._m_retries.inc(total_rejects)
            pending = [
                sorted({machine_id for _, machine_id, _ in rejects})
                for rejects in rejected
            ]
        if self._m_commit_seconds is not None:
            self._m_commit_seconds.observe(commit_seconds)
        return seq.committed

    def __repr__(self) -> str:
        cfg = self.fed_config
        return (
            f"FederatedScheduler(shards={cfg.num_shards}, "
            f"backend={cfg.backend!r}, partitioner={cfg.partitioner!r})"
        )
