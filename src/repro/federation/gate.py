"""The federation acceptance gate: speedup x fidelity, in one verdict.

Sharding is only worth its complexity if it (a) makes scheduler rounds
substantially faster at scale and (b) barely moves the packing outcomes
the paper cares about.  This module checks both at once, comparing a
*sharded* bench capture (``BENCH_cluster-xl-sharded.json``) against the
committed *centralized* baseline of the same workload
(``BENCH_cluster-xl.json``):

- **speedup** — the ``phase:engine.scheduler_round:mean_ms`` ratio must
  be at least ``--min-speedup`` (default 2x).  The baseline's timing is
  first rescaled by the host-calibration ratio, exactly as
  :mod:`repro.bench.detect` does, so a baseline captured on a faster or
  slower machine gates fairly;
- **fidelity** — makespan and mean JCT may be at most
  ``--fidelity-tolerance`` percent worse than centralized (better is
  always fine), the same rule :meth:`FidelityReport.within` applies in
  ``repro compare --fidelity``.

The two profiles must describe the *same* workload: identical scenario
parameters once the shard fields are stripped.  CI's federation-smoke
job runs ``python -m repro.federation.gate`` after capturing the
sharded profile; exit status 0 means both gates hold.
"""

from __future__ import annotations

import argparse
from dataclasses import replace as dc_replace
from typing import Dict, List, Optional

__all__ = ["GATE_METRIC", "gate_profiles", "main"]

#: the throughput metric the speedup gate reads
GATE_METRIC = "phase:engine.scheduler_round:mean_ms"

DEFAULT_BASELINE = "benchmarks/baselines/BENCH_cluster-xl.json"
DEFAULT_CANDIDATE = "bench-out/BENCH_cluster-xl-sharded.json"


def _metric_value(profile: Dict, name: str) -> Optional[float]:
    record = (profile.get("metrics") or {}).get(name)
    if not isinstance(record, dict):
        return None
    value = record.get("value")
    return float(value) if isinstance(value, (int, float)) else None


def _workload_params(profile: Dict) -> Dict[str, object]:
    """The capture's scenario parameters with the shard fields stripped.

    Reconstructed from the scenario registry plus the profile's shard
    stamp, then cross-checked against the stored config fingerprint so
    a drifted scenario definition cannot silently pass the gate.
    """
    from repro.bench.detect import _shards_of
    from repro.bench.scenarios import get_scenario

    scenario = get_scenario(str(profile.get("scenario")))
    shards = _shards_of(profile)
    if getattr(scenario, "shards", 1) != shards:
        scenario = dc_replace(scenario, shards=shards)
    stored = (profile.get("meta") or {}).get("config_fingerprint")
    if stored != scenario.config_fingerprint():
        raise ValueError(
            f"profile {profile.get('scenario')!r} does not match the "
            "current scenario definition (config fingerprint "
            f"{stored} != {scenario.config_fingerprint()}); re-capture it"
        )
    params = scenario.params()
    params.pop("shards", None)
    params.pop("shard_backend", None)
    return params


def gate_profiles(
    baseline: Dict,
    candidate: Dict,
    min_speedup: float = 2.0,
    fidelity_tolerance: float = 5.0,
) -> "GateResult":
    """Apply both gates; raises ValueError on non-comparable profiles."""
    from repro.bench.detect import _calibration_ratio, _shards_of
    from repro.metrics.fidelity import _delta_pct

    base_shards = _shards_of(baseline)
    cand_shards = _shards_of(candidate)
    if base_shards != 1:
        raise ValueError(
            f"baseline profile is sharded ({base_shards} shards); the "
            "gate compares against a centralized reference"
        )
    if cand_shards <= 1:
        raise ValueError(
            "candidate profile is centralized; capture it with a "
            "sharded scenario (e.g. cluster-xl-sharded)"
        )
    if _workload_params(baseline) != _workload_params(candidate):
        raise ValueError(
            "profiles describe different workloads "
            f"({baseline.get('scenario')!r} vs {candidate.get('scenario')!r} "
            "differ beyond their shard fields); the speedup ratio would "
            "be meaningless"
        )

    base_ms = _metric_value(baseline, GATE_METRIC)
    cand_ms = _metric_value(candidate, GATE_METRIC)
    if base_ms is None or cand_ms is None:
        raise ValueError(f"both profiles must carry {GATE_METRIC}")
    # rescale the baseline's timing to the candidate's host speed (the
    # ratio is current/baseline of the pure-python calibration spin)
    cal_ratio, cal_note = _calibration_ratio(baseline, candidate)
    speedup = (base_ms * cal_ratio) / cand_ms if cand_ms > 0 else float("inf")

    deltas = {}
    for name in ("makespan", "mean_jct"):
        ref = _metric_value(baseline, name)
        cand = _metric_value(candidate, name)
        if ref is None or cand is None:
            raise ValueError(f"both profiles must carry {name}")
        deltas[name] = _delta_pct(ref, cand)

    return GateResult(
        shards=cand_shards,
        baseline_ms=base_ms,
        baseline_ms_rescaled=base_ms * cal_ratio,
        candidate_ms=cand_ms,
        speedup=speedup,
        min_speedup=min_speedup,
        fidelity_deltas=deltas,
        fidelity_tolerance=fidelity_tolerance,
        notes=[cal_note] if cal_note else [],
    )


class GateResult:
    def __init__(
        self,
        shards: int,
        baseline_ms: float,
        baseline_ms_rescaled: float,
        candidate_ms: float,
        speedup: float,
        min_speedup: float,
        fidelity_deltas: Dict[str, float],
        fidelity_tolerance: float,
        notes: List[str],
    ) -> None:
        self.shards = shards
        self.baseline_ms = baseline_ms
        self.baseline_ms_rescaled = baseline_ms_rescaled
        self.candidate_ms = candidate_ms
        self.speedup = speedup
        self.min_speedup = min_speedup
        self.fidelity_deltas = fidelity_deltas
        self.fidelity_tolerance = fidelity_tolerance
        self.notes = notes

    @property
    def speedup_ok(self) -> bool:
        return self.speedup >= self.min_speedup

    @property
    def fidelity_ok(self) -> bool:
        return all(
            delta <= self.fidelity_tolerance
            for delta in self.fidelity_deltas.values()
        )

    @property
    def ok(self) -> bool:
        return self.speedup_ok and self.fidelity_ok

    def render(self) -> str:
        lines = [f"federation gate ({self.shards} shards vs centralized):"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        lines.append(
            f"  scheduler round: {self.baseline_ms:.3f}ms centralized "
            f"(rescaled {self.baseline_ms_rescaled:.3f}ms) -> "
            f"{self.candidate_ms:.3f}ms sharded = {self.speedup:.2f}x "
            f"(need >= {self.min_speedup:.2f}x) "
            f"{'OK' if self.speedup_ok else 'FAIL'}"
        )
        for name, delta in sorted(self.fidelity_deltas.items()):
            ok = delta <= self.fidelity_tolerance
            lines.append(
                f"  {name:<15} {delta:+.2f}% "
                f"(tolerance {self.fidelity_tolerance:.1f}%) "
                f"{'OK' if ok else 'FAIL'}"
            )
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    from repro.bench.profile import load_profile

    parser = argparse.ArgumentParser(
        prog="python -m repro.federation.gate",
        description="gate a sharded bench capture against the committed "
        "centralized baseline: scheduler-round speedup and packing "
        "fidelity in one verdict",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help="centralized profile (default: %(default)s)",
    )
    parser.add_argument(
        "--candidate", default=DEFAULT_CANDIDATE,
        help="sharded profile (default: %(default)s)",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--fidelity-tolerance", type=float, default=5.0,
                        metavar="PCT")
    args = parser.parse_args(argv)
    try:
        result = gate_profiles(
            load_profile(args.baseline),
            load_profile(args.candidate),
            min_speedup=args.min_speedup,
            fidelity_tolerance=args.fidelity_tolerance,
        )
    except (OSError, ValueError) as exc:
        print(f"federation gate: {exc}")
        return 2
    print(result.render())
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
