"""Round-scoped transaction sequencing for the scheduler federation.

Omega-style optimistic concurrency: shards propose placement
transactions computed against a shared-state snapshot, and a single
sequencer validates each proposal against the authoritative
``ClusterState`` — in deterministic shard order — before it commits.
Three conflict kinds can reject a proposal:

- ``duplicate`` — the task was already committed this round by another
  shard (possible once a stage floats across shards) or is no longer
  runnable;
- ``capacity`` — the booked vector no longer fits the machine once the
  round's earlier commits are charged (only possible when proposals
  were computed against a stale snapshot, i.e. distributed shards);
- ``remote`` — the proposal's remote-read bandwidth grants, combined
  with every other shard's outstanding grants, oversubscribe a source
  machine's disk-read/NIC-out headroom (Section 3.2's check, enforced
  globally — each shard can only check its own ledger).

A rejected proposal is rolled back by the proposer (grants released,
task requeued) and retried in a bounded number of follow-up passes; a
proposal still conflicting when the passes run out is aborted for the
round and naturally becomes a candidate again next round.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.resources import EPSILON, ResourceVector
from repro.schedulers.base import Placement
from repro.workload.task import Task, TaskState

__all__ = ["RoundSequencer", "CONFLICT_KINDS"]

CONFLICT_KINDS = ("duplicate", "capacity", "remote")


class RoundSequencer:
    """Validates and commits one round's shard proposals.

    ``base_remote`` is the pre-round remote-grant ledger summed across
    every shard (running tasks only); the sequencer layers this round's
    committed grants on top.  ``replay_fit`` turns on the capacity
    replay — needed only when proposals were computed against a stale
    snapshot (process shards); in-process shards plan against the live
    state and their per-machine fills are already sequential.
    """

    def __init__(
        self,
        cluster,
        base_remote: Optional[Dict[int, float]] = None,
        replay_fit: bool = False,
    ) -> None:
        self.cluster = cluster
        self.replay_fit = replay_fit
        self._i_netout = cluster.model.index.get("netout")
        self._i_diskr = cluster.model.index.get("diskr")
        #: remote-read rate charged per source machine: pre-round ledger
        #: plus this round's committed grants
        self.remote_total: Dict[int, float] = dict(base_remote or {})
        self.committed: List[Placement] = []
        self.committed_tasks: Set[int] = set()
        #: per-machine sum of this round's committed bookings — the
        #: free-vector adjustment retry passes plan against
        self.committed_free: Dict[int, ResourceVector] = {}

    # -- helpers ------------------------------------------------------------
    def _headroom(self, source_id: int) -> float:
        """min(netout, diskr) free at a source machine right now."""
        if self._i_netout is not None and self._i_diskr is not None:
            row = self.cluster.state.free_clamped_row(source_id)
            return min(row[self._i_netout], row[self._i_diskr])
        free = self.cluster.machine(source_id).free_clamped_view()
        return min(free.get("netout"), free.get("diskr"))

    def _machine_free_after_commits(self, machine_id: int) -> ResourceVector:
        free = self.cluster.machine(machine_id).free_clamped()
        pending = self.committed_free.get(machine_id)
        if pending is not None:
            free = (free - pending).clamp_nonnegative()
        return free

    # -- the validation/commit step ----------------------------------------
    def offer(
        self,
        task: Task,
        machine_id: int,
        booked: ResourceVector,
        grants: Sequence[Tuple[int, float]] = (),
    ) -> Optional[str]:
        """Validate one proposal; commit it and return None, or return
        the conflict kind that rejected it (state untouched on reject).
        """
        if task.task_id in self.committed_tasks:
            return "duplicate"
        if task.state is not TaskState.RUNNABLE:
            return "duplicate"
        if self.replay_fit:
            free = self._machine_free_after_commits(machine_id)
            if not booked.fits_in(free):
                return "capacity"
        for source_id, rate in grants:
            charged = self.remote_total.get(source_id, 0.0)
            if charged + rate > self._headroom(source_id) + EPSILON:
                return "remote"
        # commit
        self.committed_tasks.add(task.task_id)
        self.committed.append(Placement(task, machine_id, booked))
        pending = self.committed_free.get(machine_id)
        if pending is None:
            self.committed_free[machine_id] = booked.copy()
        else:
            pending.add_inplace(booked)
        for source_id, rate in grants:
            self.remote_total[source_id] = (
                self.remote_total.get(source_id, 0.0) + rate
            )
        return None
