"""Alignment scorers: how well does a task fit a machine? (Table 8).

Every scorer takes the task's demand vector and the machine's available
vector, both already normalized by the machine's capacity, and returns a
score where **higher means schedule first**.  Only tasks that actually fit
are ever scored, so ``demand <= available`` per dimension.

The paper evaluated these candidates (Section 5.3.1, Table 8):

- **cosine similarity** — the weighted dot product Tetris uses.  Prefers
  large tasks, and tasks whose demand mix matches what the machine has in
  abundance;
- **L2-Norm-Diff** — ``sum((d_i - a_i)^2)``, lower is better (we negate):
  prefers the task that leaves the least residual capacity behind;
- **L2-Norm-Ratio** — ``sum((d_i / a_i)^2)``: prefers tasks consuming the
  largest fraction of what remains;
- **FFD-Prod** — ``prod(d_i)`` over the task's non-zero dimensions:
  first-fit-decreasing with a volume-based size;
- **FFD-Sum** — ``sum(d_i)``: first-fit-decreasing with an L1 size.

Each scorer exposes two entry points:

- :meth:`AlignmentScorer.score` — the scalar reference oracle, one
  (demand, available) pair at a time;
- :meth:`AlignmentScorer.score_batch` — the vectorized hot path: an
  ``(N, dims)`` matrix of normalized demand rows against one availability
  row, returning all N scores in one pass.  Implementations are written
  so batch and scalar results are *bit-identical* (same elementwise
  operations, same reduction order), which is what lets the vectorized
  Tetris packing engine reproduce the scalar scheduler's placements
  exactly.
"""

from __future__ import annotations

import abc
from typing import Dict, Type

import numpy as np

from repro.resources import EPSILON, ResourceVector

__all__ = [
    "AlignmentScorer",
    "CosineAlignment",
    "L2NormDiffAlignment",
    "L2NormRatioAlignment",
    "FFDProdAlignment",
    "FFDSumAlignment",
    "ALIGNMENT_SCORERS",
    "batch_capable",
    "get_scorer",
]


def batch_capable(scorer: "AlignmentScorer") -> bool:
    """True when ``scorer`` overrides :meth:`AlignmentScorer.score_batch`.

    Schedulers use this to decide whether the vectorized packing path can
    run; scorers without a batch implementation fall back to the scalar
    reference oracle.
    """
    return type(scorer).score_batch is not AlignmentScorer.score_batch


class AlignmentScorer(abc.ABC):
    """Scores a (normalized demand, normalized availability) pair."""

    name = "base"

    @abc.abstractmethod
    def score(
        self, demand: ResourceVector, available: ResourceVector
    ) -> float:
        """Higher scores are scheduled first."""

    def score_batch(
        self, demands: np.ndarray, available: np.ndarray
    ) -> np.ndarray:
        """Score an ``(N, dims)`` demand matrix against one availability row.

        Subclasses override this with a closed-form vectorized version
        that matches :meth:`score` bit-for-bit.  Schedulers treat a
        scorer without an override as scalar-only and fall back to the
        per-candidate path.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement batched scoring"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CosineAlignment(AlignmentScorer):
    """Tetris's scorer: dot product of normalized demand and availability."""

    name = "cosine"

    def score(
        self, demand: ResourceVector, available: ResourceVector
    ) -> float:
        # elementwise product + axis sum (not BLAS dot) so the batched
        # path below reduces in exactly the same order
        return float((demand.data * available.data).sum())

    def score_batch(
        self, demands: np.ndarray, available: np.ndarray
    ) -> np.ndarray:
        return (demands * available).sum(axis=1)


class L2NormDiffAlignment(AlignmentScorer):
    """Negated squared distance between demand and availability."""

    name = "l2norm-diff"

    def score(
        self, demand: ResourceVector, available: ResourceVector
    ) -> float:
        diff = demand.data - available.data
        return -float((diff * diff).sum())

    def score_batch(
        self, demands: np.ndarray, available: np.ndarray
    ) -> np.ndarray:
        diff = demands - available
        return -(diff * diff).sum(axis=1)


class L2NormRatioAlignment(AlignmentScorer):
    """Sum of squared per-dimension fill ratios d_i / a_i."""

    name = "l2norm-ratio"

    def score(
        self, demand: ResourceVector, available: ResourceVector
    ) -> float:
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                available.data > EPSILON, demand.data / available.data, 0.0
            )
        return float((ratio * ratio).sum())

    def score_batch(
        self, demands: np.ndarray, available: np.ndarray
    ) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(available > EPSILON, demands / available, 0.0)
        return (ratio * ratio).sum(axis=1)


class FFDProdAlignment(AlignmentScorer):
    """Product of the task's non-zero normalized demands (its 'volume')."""

    name = "ffd-prod"

    def score(
        self, demand: ResourceVector, available: ResourceVector
    ) -> float:
        nonzero = demand.data[demand.data > EPSILON]
        if nonzero.size == 0:
            return 0.0
        return float(np.prod(nonzero))

    def score_batch(
        self, demands: np.ndarray, available: np.ndarray
    ) -> np.ndarray:
        active = demands > EPSILON
        # multiplying by exact 1.0 is exact, so padding the excluded
        # dimensions with ones preserves the scalar product bit-for-bit
        padded = np.where(active, demands, 1.0)
        out = padded.prod(axis=1)
        out[~active.any(axis=1)] = 0.0
        return out


class FFDSumAlignment(AlignmentScorer):
    """Sum of the task's normalized demands (its L1 'size')."""

    name = "ffd-sum"

    def score(
        self, demand: ResourceVector, available: ResourceVector
    ) -> float:
        return float(demand.data.sum())

    def score_batch(
        self, demands: np.ndarray, available: np.ndarray
    ) -> np.ndarray:
        return demands.sum(axis=1)


ALIGNMENT_SCORERS: Dict[str, Type[AlignmentScorer]] = {
    cls.name: cls
    for cls in (
        CosineAlignment,
        L2NormDiffAlignment,
        L2NormRatioAlignment,
        FFDProdAlignment,
        FFDSumAlignment,
    )
}


def get_scorer(name: str) -> AlignmentScorer:
    """Instantiate a scorer by its Table 8 name."""
    try:
        return ALIGNMENT_SCORERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown alignment scorer {name!r}; "
            f"choose from {sorted(ALIGNMENT_SCORERS)}"
        ) from None
