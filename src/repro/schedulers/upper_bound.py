"""The loose upper bound of Section 2.3.

The optimal packing is intractable (APX-hard), so the paper bounds the
possible gains with a deliberately simplified offline problem:

1. the cluster is *one aggregate bin* per instant — no per-machine
   fragmentation and no placement;
2. tasks of a stage all have that stage's resource profile;
3. a task starts only when its full peak demands fit (no
   over-allocation), and then runs for its nominal duration.

Gains of this relaxation over a baseline are treated as an upper bound
on the gains of true optimal packing.  This module solves the relaxation
with an event-driven greedy (jobs with least remaining work first,
biggest tasks first within a job), entirely independent of the fluid
simulator, on copies of the job structures (the input jobs are not
mutated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.resources import ResourceVector
from repro.workload.job import Job

__all__ = ["UpperBoundResult", "aggregate_upper_bound"]


@dataclass
class _TaskSpec:
    demands: np.ndarray
    duration: float
    stage: int


@dataclass
class _StageSpec:
    parents: Tuple[int, ...]
    tasks: List[int]
    unfinished: int


@dataclass
class _JobSpec:
    arrival: float
    tasks: List[_TaskSpec]
    stages: List[_StageSpec]
    remaining_work: float
    unfinished: int
    finish: Optional[float] = None


@dataclass(frozen=True)
class UpperBoundResult:
    """Outcome of the aggregated-bin relaxation."""

    makespan: float
    mean_jct: float
    completion_times: Dict[int, float]


def _job_to_spec(job: Job, capacity: ResourceVector) -> _JobSpec:
    stage_index = {s.stage_id: i for i, s in enumerate(job.dag.stages)}
    tasks: List[_TaskSpec] = []
    stages: List[_StageSpec] = []
    remaining_work = 0.0
    for s_idx, stage in enumerate(job.dag.stages):
        task_ids = []
        for task in stage.tasks:
            spec = _TaskSpec(
                demands=task.demands.data.copy(),
                duration=max(task.nominal_duration(), 1e-6),
                stage=s_idx,
            )
            task_ids.append(len(tasks))
            tasks.append(spec)
            remaining_work += (
                task.demands.normalized_by(capacity).total() * spec.duration
            )
        stages.append(
            _StageSpec(
                parents=tuple(stage_index[p.stage_id] for p in stage.parents),
                tasks=task_ids,
                unfinished=len(task_ids),
            )
        )
    return _JobSpec(
        arrival=job.arrival_time,
        tasks=tasks,
        stages=stages,
        remaining_work=remaining_work,
        unfinished=len(tasks),
    )


def aggregate_upper_bound(
    jobs: Sequence[Job],
    cluster_capacity: ResourceVector,
    machine_capacity: ResourceVector,
    consider_arrivals: bool = True,
) -> UpperBoundResult:
    """Solve the Section 2.3 relaxation.

    ``cluster_capacity`` is the aggregate bin; ``machine_capacity``
    normalizes the remaining-work (SRTF) score.  With
    ``consider_arrivals=False`` all jobs are treated as arriving at time
    0 — the setting the paper uses when reporting makespan.
    """
    specs = {job.job_id: _job_to_spec(job, machine_capacity) for job in jobs}
    if not consider_arrivals:
        for spec in specs.values():
            spec.arrival = 0.0
    free = cluster_capacity.data.copy()
    #: (finish_time, job_id, task_idx) of running tasks
    running: List[Tuple[float, int, int]] = []
    pending_arrivals = sorted(
        specs.items(), key=lambda kv: (kv[1].arrival, kv[0])
    )
    arrived: Dict[int, _JobSpec] = {}
    #: per job: set of runnable (released, unstarted) task indices
    runnable: Dict[int, List[int]] = {}
    now = 0.0
    first_arrival = min(
        (spec.arrival for spec in specs.values()), default=0.0
    )
    completion: Dict[int, float] = {}

    def release_ready_stages(job_id: int) -> None:
        spec = arrived[job_id]
        ready = runnable.setdefault(job_id, [])
        for s_idx, stage in enumerate(spec.stages):
            if getattr(stage, "_released", False):
                continue
            if all(spec.stages[p].unfinished == 0 for p in stage.parents):
                stage._released = True  # type: ignore[attr-defined]
                ready.extend(stage.tasks)

    def try_start_tasks() -> None:
        # least remaining work first; biggest tasks first within a job
        order = sorted(
            arrived.items(), key=lambda kv: (kv[1].remaining_work, kv[0])
        )
        for job_id, spec in order:
            ready = runnable.get(job_id, [])
            ready.sort(
                key=lambda t: -float(spec.tasks[t].demands.sum())
            )
            still_ready = []
            for t_idx in ready:
                task = spec.tasks[t_idx]
                if np.all(task.demands <= free + 1e-9):
                    free[:] = free - task.demands
                    running.append((now + task.duration, job_id, t_idx))
                else:
                    still_ready.append(t_idx)
            runnable[job_id] = still_ready

    while pending_arrivals or running:
        t_arrival = (
            pending_arrivals[0][1].arrival
            if pending_arrivals
            else float("inf")
        )
        t_finish = min((r[0] for r in running), default=float("inf"))
        now = min(t_arrival, t_finish)
        if now == float("inf"):
            raise RuntimeError("upper-bound relaxation is stuck")
        while pending_arrivals and pending_arrivals[0][1].arrival <= now + 1e-12:
            job_id, spec = pending_arrivals.pop(0)
            arrived[job_id] = spec
            release_ready_stages(job_id)
        finished_now = [r for r in running if r[0] <= now + 1e-12]
        running = [r for r in running if r[0] > now + 1e-12]
        for _, job_id, t_idx in finished_now:
            spec = arrived[job_id]
            task = spec.tasks[t_idx]
            free[:] = free + task.demands
            spec.stages[task.stage].unfinished -= 1
            spec.unfinished -= 1
            spec.remaining_work -= (
                ResourceVector(
                    machine_capacity.model, task.demands
                ).normalized_by(machine_capacity).total()
                * task.duration
            )
            if spec.stages[task.stage].unfinished == 0:
                release_ready_stages(job_id)
            if spec.unfinished == 0:
                completion[job_id] = now - spec.arrival
        try_start_tasks()

    makespan = (
        max(
            (spec.arrival + completion[jid] for jid, spec in specs.items()),
            default=0.0,
        )
        - first_arrival
    )
    mean_jct = (
        float(np.mean(list(completion.values()))) if completion else 0.0
    )
    return UpperBoundResult(
        makespan=makespan, mean_jct=mean_jct, completion_times=completion
    )
