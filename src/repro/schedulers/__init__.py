"""Schedulers: Tetris, baselines, ablations, and the loose upper bound."""

from repro.schedulers.base import Placement, Scheduler, adjust_for_placement
from repro.schedulers.alignment import (
    ALIGNMENT_SCORERS,
    AlignmentScorer,
    CosineAlignment,
    FFDProdAlignment,
    FFDSumAlignment,
    L2NormDiffAlignment,
    L2NormRatioAlignment,
    get_scorer,
)
from repro.schedulers.fairness_policy import (
    DRFFairnessPolicy,
    FairnessPolicy,
    SlotFairnessPolicy,
)
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.flow_network import FlowNetworkScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.schedulers.srtf import SRTFScheduler
from repro.schedulers.packing_only import PackingOnlyScheduler
from repro.schedulers.upper_bound import UpperBoundResult, aggregate_upper_bound

__all__ = [
    "Placement",
    "Scheduler",
    "adjust_for_placement",
    "AlignmentScorer",
    "CosineAlignment",
    "L2NormDiffAlignment",
    "L2NormRatioAlignment",
    "FFDProdAlignment",
    "FFDSumAlignment",
    "ALIGNMENT_SCORERS",
    "get_scorer",
    "FairnessPolicy",
    "SlotFairnessPolicy",
    "DRFFairnessPolicy",
    "FifoScheduler",
    "FlowNetworkScheduler",
    "SlotFairScheduler",
    "CapacityScheduler",
    "DRFScheduler",
    "TetrisConfig",
    "TetrisScheduler",
    "SRTFScheduler",
    "PackingOnlyScheduler",
    "UpperBoundResult",
    "aggregate_upper_bound",
]
