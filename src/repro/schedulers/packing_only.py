"""Packing-only ablation: alignment score without the SRTF term.

The other half of Section 5.3.1's ablation (and the ``ε = 0`` point of
the sensitivity analysis in Section 5.3.3): pure packing maximizes
cluster throughput/makespan but does nothing to finish small jobs early.
"""

from __future__ import annotations

from typing import Optional

from repro.schedulers.fairness_policy import FairnessPolicy
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler

__all__ = ["PackingOnlyScheduler"]


class PackingOnlyScheduler(TetrisScheduler):
    """Tetris with the remaining-work term disabled."""

    name = "packing-only"

    def __init__(
        self,
        config: Optional[TetrisConfig] = None,
        fairness_policy: Optional[FairnessPolicy] = None,
    ):
        if config is None:
            config = TetrisConfig(srtf_multiplier=0.0)
        elif config.srtf_multiplier != 0.0:
            raise ValueError("PackingOnlyScheduler requires srtf_multiplier=0")
        super().__init__(config=config, fairness_policy=fairness_policy)
