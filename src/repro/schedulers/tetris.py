"""Tetris: multi-resource packing + shortest-remaining-work + fairness knob.

The decision procedure (Section 3):

1. **Fairness knob** ``f`` (§3.4) — sort the runnable jobs by how far they
   are below fair share (any :class:`FairnessPolicy`); only tasks of the
   first ``ceil((1 - f) * |J|)`` jobs are candidates.  ``f = 0`` is the
   most efficient schedule, ``f -> 1`` strictly fair.
2. **Barrier knob** ``b`` (§3.5) — if a candidate stage has finished more
   than a ``b`` fraction of its tasks, its stragglers get strict
   preference (they gate a barrier, so finishing them is cheap and
   valuable).
3. **Packing score** (§3.2) — for each candidate task that *fits* the
   machine on every considered dimension (peak demands satisfiable, so
   over-allocation is impossible), compute the alignment between its
   placement-adjusted demand vector and the machine's free vector, both
   normalized by capacity.  Tasks reading remote input are penalized by
   ``remote_penalty`` and their remote sources are checked for disk/NIC
   headroom.
4. **SRTF term** (§3.3) — combine alignment ``a`` with the job's
   remaining-work score ``p`` as ``a - m * (ā/p̄) * p``, where the bars are
   averages over the current candidates.  (The paper writes the combined
   score as a weighted sum of the alignment and remaining-work terms with
   ``ε = ā/p̄``; since lower ``p`` must win, the remaining-work term enters
   with a negative sign.)  ``ε`` is computed once over the *full*
   candidate set, before any barrier filtering, so the SRTF weight does
   not silently change when barrier stragglers exist.  Place the argmax;
   repeat until nothing fits.

Two execution strategies produce **identical placements**:

- the *scalar* path (``vectorized=False``) scores one candidate at a
  time through :class:`ResourceVector` objects — the reference oracle;
- the *vectorized* path (default) runs on the signature-grouped
  candidate index (:mod:`repro.schedulers.candidates`): booked demand
  vectors and masked, capacity-normalized rows are cached once per
  *(stage, demand signature, machine)* and shared by every peer task in
  the group, a per-machine :class:`MachineView` keeps the candidate
  arrays alive across fill iterations (a placement refreshes exactly
  one stage's slots), and fits, alignment scores, remote penalties and
  the combined score are computed in a few numpy passes.  Caches are
  invalidated when estimates can move (task completions under a
  learning estimator) and when a stage's shuffle inputs resolve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.kernels import get_backend
from repro.resources import EPSILON, ResourceVector
from repro.schedulers.alignment import (
    AlignmentScorer,
    CosineAlignment,
    batch_capable,
    get_scorer,
)
from repro.schedulers.base import Placement, Scheduler
from repro.schedulers.candidates import CandidateIndex
from repro.schedulers.fairness_policy import DRFFairnessPolicy, FairnessPolicy
from repro.schedulers.stage_index import StageIndex
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import Registry
    from repro.profiling import Profiler

__all__ = ["TetrisConfig", "TetrisScheduler", "GrantLedger"]


class GrantLedger(dict):
    """The remote-grant ledger: ``machine_id -> granted MB/s``, plus a
    monotone version stamp.

    ``gen`` is bumped by every mutation so remote-headroom verdicts can
    be memoized and validated with one integer compare.  The federation
    aliases one ledger across its inline shards; carrying the stamp on
    the ledger object itself keeps every aliasing scheduler's caches
    coherent without cross-wiring the schedulers.
    """

    __slots__ = ("gen",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gen = 0


@dataclass(frozen=True)
class TetrisConfig:
    """Tetris's knobs, with the paper's defaults.

    - ``fairness_knob`` f in [0, 1): 0.25 achieves most of the efficiency
      with negligible unfairness (Figure 8);
    - ``barrier_knob`` b in [0, 1): 0.9 for the Facebook workload
      (Figure 10); b = 0 disables barrier preference, matching the
      paper's plots where b = 0 means no tasks are treated
      preferentially;
    - ``remote_penalty``: multiplicative alignment penalty for remote
      reads, flat between ~5% and 30% (Section 5.3.3);
    - ``srtf_multiplier`` m: weight of the remaining-work term, m = 1 is
      the recommended ``ε = ā/p̄`` (Section 5.3.3);
    - ``alignment_weight``: weight of the packing term (0 gives the
      SRTF-only ablation);
    - ``considered_dims``: restrict packing checks to a subset (the
      CPU+memory-only ablation of Section 5.3.1); None means all;
    - ``starvation_timeout``: the paper's Section 3.5 *future work* —
      reserve machine resources for starved tasks.  When a stage with
      runnable tasks has placed nothing for this many seconds, its
      largest waiting task gets a machine reserved: nothing else is
      scheduled there until the task fits.  ``None`` (default) disables
      it, matching the published system;
    - ``progress_aware_srtf``: Section 3.5's *future demands* note ("each
      job manager can estimate when an assigned task will finish").
      When on, a job's remaining-work score credits running tasks for
      the progress they have already made, so a job whose last wave is
      almost done looks as short as it really is.  Off by default,
      matching the published system;
    - ``vectorized``: use the batched packing engine (cached demand
      vectors + one numpy pass per machine round).  Placements are
      identical to the scalar path; flip off to run the scalar
      reference oracle.  Scorers without a ``score_batch`` override
      fall back to the scalar path automatically;
    - ``backend``: kernel backend for the batched fill loop
      (``scalar`` / ``numpy`` / ``numba``, see :mod:`repro.kernels`).
      ``None`` (default) honours ``$REPRO_BACKEND`` and falls back to
      ``numpy`` — or to the scalar reference when ``vectorized`` is
      off.  All backends produce bit-identical placements;
    - ``debug_invariants``: run the remote-grant ledger invariant check
      after every grant/release (test/debug aid; off in production).
    """

    fairness_knob: float = 0.25
    barrier_knob: float = 0.9
    remote_penalty: float = 0.1
    srtf_multiplier: float = 1.0
    alignment_weight: float = 1.0
    scorer: str = "cosine"
    check_remote_resources: bool = True
    considered_dims: Optional[Tuple[str, ...]] = None
    starvation_timeout: Optional[float] = None
    progress_aware_srtf: bool = False
    vectorized: bool = True
    backend: Optional[str] = None
    debug_invariants: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.fairness_knob < 1.0:
            raise ValueError(f"fairness knob must be in [0,1): {self.fairness_knob}")
        if not 0.0 <= self.barrier_knob < 1.0:
            raise ValueError(f"barrier knob must be in [0,1): {self.barrier_knob}")
        if not 0.0 <= self.remote_penalty <= 1.0:
            raise ValueError(f"remote penalty must be in [0,1]: {self.remote_penalty}")
        if self.srtf_multiplier < 0 or self.alignment_weight < 0:
            raise ValueError("weights must be non-negative")
        if self.starvation_timeout is not None and self.starvation_timeout <= 0:
            raise ValueError("starvation_timeout must be positive or None")


class _Candidate:
    __slots__ = ("task", "booked", "alignment", "remaining_work")

    def __init__(self, task, booked, alignment, remaining_work):
        self.task = task
        self.booked = booked
        self.alignment = alignment
        self.remaining_work = remaining_work


class TetrisScheduler(Scheduler):
    """The paper's scheduler."""

    name = "tetris"

    def __init__(
        self,
        config: Optional[TetrisConfig] = None,
        fairness_policy: Optional[FairnessPolicy] = None,
        group_of=None,
    ):
        """``group_of`` optionally maps a job to a group/queue name;
        the fairness knob then restricts *groups* instead of jobs
        (Section 3.4: "the job (or group of jobs) that is currently
        furthest from fair share")."""
        super().__init__()
        self.config = config if config is not None else TetrisConfig()
        self.fairness_policy = (
            fairness_policy if fairness_policy is not None else DRFFairnessPolicy()
        )
        self.group_of = group_of
        self.scorer: AlignmentScorer = get_scorer(self.config.scorer)
        self.index = StageIndex()
        #: optional timing sink (repro.profiling.Profiler)
        self.profiler: Optional["Profiler"] = None
        #: cached SRTF scores: job_id -> remaining work, task_id -> its term
        self._job_work: Dict[int, float] = {}
        self._task_work: Dict[int, float] = {}
        #: work terms computed at stage time by :meth:`prewarm_job`,
        #: consumed (popped) by :meth:`on_job_arrival`
        self._prewarmed_work: Dict[int, float] = {}
        #: remote bandwidth granted at source machines: machine_id ->
        #: (diskr+netout) rate, and task_id -> [(machine_id, rate)] to undo.
        #: Tetris checks that remote reads have headroom at *every* machine
        #: holding task input (Section 3.2); that check is only meaningful
        #: if the scheduler remembers what it has already granted.
        self._remote_granted: GrantLedger = GrantLedger()
        self._remote_by_task: Dict[int, List[Tuple[int, float]]] = {}
        #: memoized remote-headroom verdicts: task_id -> (plan, (alloc
        #: generation, ledger generation), verdict).  A hit requires the
        #: same plan content and both generations unchanged — source
        #: free rows move only with allocations, grants only with the
        #: ledger, so the verdict provably cannot have changed.
        self._remote_ok_cache: Dict[int, tuple] = {}
        #: starvation prevention: per-stage last placement time and the
        #: current machine reservations (machine_id -> Stage), both keyed
        #: by the stable ``stage_id`` (object ids can be recycled by the
        #: allocator across back-to-back runs)
        self._stage_last_placement: Dict[int, float] = {}
        self._reservations: Dict[int, Stage] = {}
        #: signature-grouped packing cache: (stage, demand signature) ->
        #: machine -> (booked vector, masked capacity-normalized row,
        #: remote flag), shared by every peer task in the group.  Fed by
        #: the vectorized path; invalidated on estimate updates and
        #: shuffle-input resolution.
        self.candidates = CandidateIndex()
        #: round-constant candidate table shared by every machine view
        #: within one ``schedule()`` round (None outside a round)
        self._round_table = None
        self._dims_mask: Optional[np.ndarray] = None
        self._mask_all = True
        self._masked_names: Tuple[str, ...] = ()
        #: kernel backend for the batched fill loop (repro.kernels).  An
        #: explicit config.backend wins; otherwise ``vectorized=False``
        #: maps to the scalar reference and the env/default resolution
        #: applies.  The scalar backend runs the object-path oracle.
        if self.config.backend is not None:
            self.kernels = get_backend(self.config.backend)
        elif not self.config.vectorized:
            self.kernels = get_backend("scalar")
        else:
            self.kernels = get_backend(None)
        # scorers without a batch implementation run the scalar oracle
        self._use_vectorized = self.kernels.vectorized and batch_capable(
            self.scorer
        )
        # cosine alignment IS the row-dot kernel; other scorers keep
        # their own score_batch
        self._dot_kernel = (
            self.kernels.dot_rows
            if type(self.scorer) is CosineAlignment
            else None
        )
        #: per-stage machine-independent demand lower bounds feeding the
        #: round-level machine prefilter (trace off, no tracker): a
        #: machine whose free vector cannot cover any stage's lower
        #: bound provably yields zero placements and is skipped
        self._stage_lb: Dict[int, np.ndarray] = {}
        #: tighter per-stage bounds for machines with no input replica
        #: (all-remote placement pattern: netin kept, diskr/netout zero)
        self._stage_lb_remote: Dict[int, np.ndarray] = {}
        #: per-stage boolean machine masks: True where the stage has a
        #: locality pool (an input replica), i.e. where only the weaker
        #: bound is sound
        self._stage_local: Dict[int, np.ndarray] = {}
        self._min_capacity: Optional[np.ndarray] = None
        self._i_netout: Optional[int] = None
        self._i_diskr: Optional[int] = None
        #: grant-independent remote-transfer plans:
        #: task_id -> machine_id -> ((locations, rate), ...)
        self._remote_plans: Dict[int, Dict[int, tuple]] = {}
        #: per-round OR of the table stages' locality masks; machines
        #: outside it (no locality pool anywhere, single capacity class)
        #: share one cached machine-independent view per round, and
        #: machines inside it clone that view and patch only their
        #: special stages (resolved via the stacked per-stage matrix)
        self._round_special: Optional[np.ndarray] = None
        self._round_special_mat: Optional[np.ndarray] = None
        #: round-shared inputs injected by the shard federation: the
        #: candidate job list and barrier-stage set are identical across
        #: inline shards (all shards see every job and the same global
        #: state), so the facade computes them once per round and each
        #: shard's ``schedule()`` skips the full-job-list scan + sort.
        #: ``None`` (the default, and always outside a federated round)
        #: means compute locally — bit-identical either way.
        self._round_jobs: Optional[List[Job]] = None
        self._round_barriers: Optional[set] = None
        #: a machine with no locality pool anywhere this round, through
        #: which the shared view is (re)built; -1 when every machine has
        #: one
        self._round_proxy = -1
        #: round-level machine prefilter opt-out.  Harnesses that replay
        #: the same backlog with ``index.reset_claims()`` (the packing
        #: benchmarks) revive claimed tasks, whose queue positions then
        #: depend on lazy-pruning progress — i.e. on which machines were
        #: visited — so they must visit every machine to stay
        #: bit-comparable with their committed baselines.
        self.prefilter_machines = True
        #: optional metric instruments (set by use_observability via
        #: _register_metrics); None keeps the hot paths branch-cheap
        self._m_cache_hits = None
        self._m_cache_misses = None
        self._m_invalidations = None
        self._m_remote_grants = None
        self._m_ledger_size = None
        self._m_reservations = None

    def _register_metrics(self, registry: "Registry") -> None:
        lookups = registry.counter(
            "repro_tetris_pack_cache_total",
            "Packing-cache lookups by outcome",
            labelnames=("outcome",),
        )
        self._m_cache_hits = lookups.labels(outcome="hit")
        self._m_cache_misses = lookups.labels(outcome="miss")
        self._m_invalidations = registry.counter(
            "repro_tetris_cache_invalidations_total",
            "Packing-cache invalidations by scope (task completion, "
            "full flush under unstable estimates, shuffle resolution)",
            labelnames=("scope",),
        )
        self._m_remote_grants = registry.counter(
            "repro_tetris_remote_grants_total",
            "Remote-read bandwidth grants charged to source machines",
        )
        self._m_ledger_size = registry.gauge(
            "repro_tetris_remote_ledger_machines",
            "Machines with outstanding remote-read grants",
        )
        self._m_reservations = registry.counter(
            "repro_tetris_reservations_total",
            "Machines reserved for starved stages",
        )
        groups = registry.gauge(
            "repro_tetris_signature_groups",
            "Live (stage, demand-signature) candidate groups in the "
            "packing cache",
        )
        self.candidates.set_instruments(
            hits=self._m_cache_hits,
            misses=self._m_cache_misses,
            invalidations=self._m_invalidations,
            groups=groups,
        )

    # -- wiring -----------------------------------------------------------------
    def bind(self, cluster, estimator=None, tracker=None) -> None:
        super().bind(cluster, estimator=estimator, tracker=tracker)
        self._dims_mask = cluster.model.mask(self.config.considered_dims)
        self._mask_all = bool(self._dims_mask.all())
        self.candidates.bind(
            self.estimated_demands,
            self.booked_demands,
            cluster,
            self._dims_mask,
        )
        self._masked_names = tuple(
            name
            for name, on in zip(cluster.model.names, self._dims_mask)
            if on
        )
        self._min_capacity = cluster.state.capacity.min(axis=0)
        self._i_netout = cluster.model.index.get("netout")
        self._i_diskr = cluster.model.index.get("diskr")
        self._stage_lb.clear()
        self._stage_lb_remote.clear()
        self._stage_local.clear()
        self._remote_plans.clear()
        self._remote_ok_cache.clear()

    # -- SRTF bookkeeping -------------------------------------------------------
    def _task_work_term(self, task: Task) -> float:
        """One task's contribution to the job's remaining-work score:
        capacity-normalized total demand x estimated duration (§3.3.1)."""
        capacity = self.cluster.machine_capacity()
        normalized = self.estimated_demands(task).normalized_by(capacity)
        return normalized.total() * task.nominal_duration()

    def prewarm_job(self, job: Job) -> None:
        """Stage-time candidate feeding: compute every task's SRTF work
        term (an estimator call plus vector arithmetic each) before the
        arrival event fires, so the arrival drain's ``on_job_arrival``
        is a cache pop instead of an O(tasks) derivation.  Only safe for
        stable estimators — an unstable one may revise estimates between
        staging and arrival, so the prewarm is skipped and the terms are
        computed on the drain as usual (bit-identical either way)."""
        if self.cluster is None or not self.estimator.stable_estimates:
            return
        for task in job.all_tasks():
            self._prewarmed_work[task.task_id] = self._task_work_term(task)

    def on_job_arrival(self, job: Job, time: float) -> None:
        super().on_job_arrival(job, time)
        self.index.add_job(job)
        for stage in job.dag:
            if stage.is_released():
                self._stage_last_placement[stage.stage_id] = time
        total = 0.0
        prewarmed = self._prewarmed_work
        for task in job.all_tasks():
            term = prewarmed.pop(task.task_id, None)
            if term is None:
                term = self._task_work_term(task)
            self._task_work[task.task_id] = term
            total += term
        self._job_work[job.job_id] = total

    def on_stage_released(self, stage, time: float) -> None:
        super().on_stage_released(stage, time)
        self.index.add_stage(stage)
        self._stage_last_placement[stage.stage_id] = time
        # shuffle inputs were just pinned to source machines: the stage's
        # signatures (computed from the old inputs), their cached
        # placement-adjusted vectors, and any remote-transfer plans
        # derived from the old locations are stale
        self.candidates.invalidate_stage(stage)
        self._stage_lb.pop(stage.stage_id, None)
        self._stage_lb_remote.pop(stage.stage_id, None)
        self._stage_local.pop(stage.stage_id, None)
        for task in stage.tasks:
            self._remote_plans.pop(task.task_id, None)
            self._remote_ok_cache.pop(task.task_id, None)

    def on_task_failed(self, task: Task, time: float) -> None:
        super().on_task_failed(task, time)
        self._release_remote_grants(task.task_id)
        # the retried task rejoins its stage's pools: recompute the
        # stage's cached demand bounds and locality mask (cheap, and
        # failures are rare)
        self._stage_lb.pop(task.stage.stage_id, None)
        self._stage_lb_remote.pop(task.stage.stage_id, None)
        self._stage_local.pop(task.stage.stage_id, None)
        if self.config.debug_invariants:
            self.check_remote_ledger()

    def on_task_finished(self, task: Task, time: float) -> None:
        super().on_task_finished(task, time)
        self.index.forget(task)
        self._release_remote_grants(task.task_id)
        self._remote_plans.pop(task.task_id, None)
        self._remote_ok_cache.pop(task.task_id, None)
        if self.config.debug_invariants:
            self.check_remote_ledger()
        if self.estimator.stable_estimates:
            # signature-keyed packs stay valid for the group's surviving
            # peers; only the finished task's bookkeeping is retired
            self.candidates.forget_task(task)
        else:
            # a completion can move every estimate (peer means, template
            # history): drop the whole index, signatures included, plus
            # every derived cache (demand lower bounds, transfer plans)
            self.candidates.clear()
            self._stage_lb.clear()
            self._stage_lb_remote.clear()
            self._stage_local.clear()
            self._remote_plans.clear()
            self._remote_ok_cache.clear()
        term = self._task_work.pop(task.task_id, 0.0)
        job_id = task.job.job_id
        if job_id in self._job_work:
            self._job_work[job_id] = max(0.0, self._job_work[job_id] - term)
            if task.job.is_finished:
                self._job_work.pop(job_id, None)
        if task.job.is_finished:
            for stage in task.job.dag:
                self._stage_last_placement.pop(stage.stage_id, None)

    # -- candidate job set (fairness knob) ------------------------------------
    def candidate_jobs(self) -> List[Job]:
        jobs = self.runnable_jobs()
        if not jobs:
            return []
        if self.group_of is not None:
            return self._candidate_jobs_by_group(jobs)
        jobs.sort(
            key=lambda j: (-self.fairness_policy.deficit(self, j), j.job_id)
        )
        keep = max(1, math.ceil((1.0 - self.config.fairness_knob) * len(jobs)))
        return jobs[:keep]

    def _candidate_jobs_by_group(self, jobs: List[Job]) -> List[Job]:
        """Fairness across groups: the most-deprived (1-f) fraction of
        groups contribute candidates; within a group, most-deprived
        jobs first."""
        groups: Dict[str, List[Job]] = {}
        for job in jobs:
            groups.setdefault(self.group_of(job), []).append(job)
        capacity = self.cluster.total_capacity()
        fair = 1.0 / max(len(groups), 1)

        def group_deficit(members: List[Job]) -> float:
            total = self.cluster.model.zeros()
            for job in members:
                alloc = self.job_alloc.get(job.job_id)
                if alloc is not None:
                    total.add_inplace(alloc)
            return fair - total.dominant_share(capacity)

        ordered = sorted(
            groups.items(),
            key=lambda kv: (-group_deficit(kv[1]), kv[0]),
        )
        keep = max(
            1, math.ceil((1.0 - self.config.fairness_knob) * len(ordered))
        )
        out: List[Job] = []
        for _, members in ordered[:keep]:
            members.sort(
                key=lambda j: (
                    -self.fairness_policy.deficit(self, j), j.job_id,
                )
            )
            out.extend(members)
        return out

    # -- packing checks -----------------------------------------------------------
    def _fits(self, booked: ResourceVector, free: ResourceVector) -> bool:
        dims = self.config.considered_dims
        if dims is None:
            return booked.fits_in(free)
        return all(booked.get(d) <= free.get(d) + EPSILON for d in dims)

    def _masked(self, vec: ResourceVector) -> ResourceVector:
        dims = self.config.considered_dims
        if dims is None:
            return vec
        masked = ResourceVector.zeros_like(vec)
        for d in dims:
            masked.set(d, vec.get(d))
        return masked

    def _pick_remote_source(self, locations: Sequence[int]) -> int:
        """The replica machine with the most remaining remote-read headroom.

        Charging every transfer to ``locations[0]`` would serialize all
        readers of a replicated block on one source; instead pick the
        holder whose min(netout, diskr) headroom — net of rates already
        granted to other remote readers — is largest.  Deterministic:
        ties keep the earliest listed replica.
        """
        if len(locations) == 1:
            return locations[0]
        best = locations[0]
        best_headroom = -math.inf
        i_netout, i_diskr = self._i_netout, self._i_diskr
        state = self.cluster.state
        granted = self._remote_granted
        for machine_id in locations:
            if i_netout is not None and i_diskr is not None:
                # row scalars off the maintained free matrix: same
                # storage free_clamped_view() refreshes, same floats
                row = state.free_clamped_row(machine_id)
                headroom = min(row[i_netout], row[i_diskr]) - granted.get(
                    machine_id, 0.0
                )
            else:
                free = self.cluster.machine(machine_id).free_clamped_view()
                headroom = min(
                    free.get("netout"), free.get("diskr")
                ) - granted.get(machine_id, 0.0)
            if headroom > best_headroom:
                best_headroom = headroom
                best = machine_id
        return best

    def _remote_transfer_plan(self, task: Task, machine_id: int) -> tuple:
        """The grant-independent half of :meth:`_remote_requirements`:
        ``(replica locations, transfer rate)`` per remote input.

        For a fixed (task, machine) pair this depends only on the
        demand estimate and the input pinning, both stable between the
        invalidation points (stage shuffle resolution, unstable-
        estimator flush), so it is memoized; only the *source choice*
        moves with the grant ledger and stays dynamic.
        """
        plans = self._remote_plans.get(task.task_id)
        if plans is None:
            plans = self._remote_plans[task.task_id] = {}
        plan = plans.get(machine_id)
        if plan is None:
            total_remote = task.remote_input_mb(machine_id)
            if total_remote <= 0:
                plan = ()
            else:
                # a machine holding no replica of any input sees the
                # all-remote plan, which is machine-independent (the
                # netin estimate is capped at the uniform machine
                # capacity): intern it under a shared key so every such
                # machine returns the *same* tuple and downstream
                # verdict caches hit on identity
                generic = not any(
                    inp.is_local_to(machine_id) for inp in task.inputs
                )
                plan = plans.get("*") if generic else None
                if plan is None:
                    est_netin = min(
                        self.estimated_demands(task).get("netin"),
                        self.cluster.machine_capacity().get("netin"),
                    )
                    plan = tuple(
                        (
                            inp.locations,
                            est_netin * (inp.size_mb / total_remote),
                        )
                        for inp in task.inputs
                        if not inp.is_local_to(machine_id) and inp.locations
                    )
                    if generic:
                        plans["*"] = plan
            plans[machine_id] = plan
        return plan

    def _remote_requirements(
        self, task: Task, machine_id: int
    ) -> List[Tuple[int, float]]:
        """(source machine, transfer rate) pairs for the task's remote reads."""
        return [
            (self._pick_remote_source(locations), rate)
            for locations, rate in self._remote_transfer_plan(task, machine_id)
        ]

    def _remote_sources_ok(self, task: Task, machine_id: int) -> bool:
        """Remote reads also need disk-read and NIC-out headroom at every
        machine holding the task's input (Section 3.2), net of what has
        already been granted to other remote readers.

        A replica passes iff ``min(netout, diskr) - granted + ε >=
        required``, and :meth:`_pick_remote_source` picks the replica
        maximizing exactly that headroom — so *the picked source passes
        iff any replica passes*, and one fused max-headroom scan per
        input replaces the argmax pass plus the re-check of the winner.
        The verdict is memoized per task under the (allocation, grant-
        ledger) generation pair: plans with no input local to the target
        are machine-independent, so one computed verdict serves every
        no-replica machine visited this round until a placement or grant
        moves a source.
        """
        if not self.config.check_remote_resources:
            return True
        plan = self._remote_transfer_plan(task, machine_id)
        if not plan:
            return True
        i_netout, i_diskr = self._i_netout, self._i_diskr
        state = self.cluster.state
        granted = self._remote_granted
        gen = (state.alloc_gen, granted.gen)
        hit = self._remote_ok_cache.get(task.task_id)
        if hit is not None and hit[1] == gen and (
            hit[0] is plan or hit[0] == plan
        ):
            return hit[2]
        ok = True
        for locations, required in plan:
            if i_netout is not None and i_diskr is not None:
                best = -math.inf
                for source_id in locations:
                    row = state.free_clamped_row(source_id)
                    headroom = row[i_netout]
                    d = row[i_diskr]
                    if d < headroom:
                        headroom = d
                    headroom -= granted.get(source_id, 0.0)
                    if headroom > best:
                        best = headroom
                if best + EPSILON < required:
                    ok = False
                    break
            else:
                source_id = self._pick_remote_source(locations)
                g = granted.get(source_id, 0.0)
                free = self.cluster.machine(source_id).free_clamped_view()
                if (
                    free.get("netout") - g + EPSILON < required
                    or free.get("diskr") - g + EPSILON < required
                ):
                    ok = False
                    break
        self._remote_ok_cache[task.task_id] = (plan, gen, ok)
        return ok

    def _grant_remote(self, task: Task, machine_id: int) -> None:
        grants = self._remote_requirements(task, machine_id)
        if grants:
            self._remote_by_task[task.task_id] = grants
            self._remote_granted.gen += 1
            for source_id, rate in grants:
                self._remote_granted[source_id] = (
                    self._remote_granted.get(source_id, 0.0) + rate
                )
            if self._m_remote_grants is not None:
                self._m_remote_grants.inc(len(grants))
                self._m_ledger_size.set(len(self._remote_granted))
            if self.config.debug_invariants:
                self.check_remote_ledger()

    def _release_remote_grants(self, task_id: int) -> None:
        """Undo a task's grants, clamping float drift and purging empties.

        Repeated ``-= rate`` arithmetic can leave tiny residues (positive
        or negative); anything at or below EPSILON is treated as zero and
        the entry dropped, so a drained workload leaves an empty ledger.
        """
        grants = self._remote_by_task.pop(task_id, ())
        if grants:
            self._remote_granted.gen += 1
        for machine_id, rate in grants:
            left = self._remote_granted.get(machine_id, 0.0) - rate
            if left <= EPSILON:
                self._remote_granted.pop(machine_id, None)
            else:
                self._remote_granted[machine_id] = left
        if self._m_ledger_size is not None:
            self._m_ledger_size.set(len(self._remote_granted))

    def check_remote_ledger(self) -> None:
        """Invariant: per-machine granted rate is non-negative and never
        exceeds the sum of the live per-task grants charged to it."""
        live: Dict[int, float] = {}
        for grants in self._remote_by_task.values():
            for machine_id, rate in grants:
                live[machine_id] = live.get(machine_id, 0.0) + rate
        for machine_id, granted in self._remote_granted.items():
            if granted < -EPSILON:
                raise AssertionError(
                    f"negative remote grant at machine {machine_id}: {granted}"
                )
            if granted > live.get(machine_id, 0.0) + 1e-6:
                raise AssertionError(
                    f"machine {machine_id} has {granted:.9f} MB/s granted "
                    f"but only {live.get(machine_id, 0.0):.9f} MB/s of live "
                    "task grants"
                )

    def _score_alignment(
        self,
        booked: ResourceVector,
        free: ResourceVector,
        remote: bool,
        machine_id: Optional[int] = None,
    ) -> float:
        """Alignment of a demand vector with a machine's free vector.

        Both vectors are normalized by *that machine's* capacity
        (Section 3.2), which keeps scores comparable on heterogeneous
        clusters.
        """
        if machine_id is None:
            capacity = self.cluster.machine_capacity()
        else:
            capacity = self.cluster.machine(machine_id).capacity
        demand_norm = self._masked(booked).normalized_by(capacity)
        free_norm = self._masked(free).normalized_by(capacity)
        score = self.scorer.score(demand_norm, free_norm)
        if remote:
            score *= 1.0 - self.config.remote_penalty
        return score

    # -- the decision loop ------------------------------------------------------
    def schedule(
        self, time: float, machine_ids: Optional[List[int]] = None
    ) -> List[Placement]:
        prof = self.profiler
        start = perf_counter() if prof is not None else 0.0
        placements: List[Placement] = []
        jobs = (
            self._round_jobs
            if self._round_jobs is not None
            else self.candidate_jobs()
        )
        if jobs:
            if self.trace is not None:
                runnable = self.runnable_jobs()
                kept_ids = {j.job_id for j in jobs}
                self.trace.emit(
                    "fairness_filter",
                    time=time,
                    total_jobs=len(runnable),
                    kept_jobs=len(jobs),
                    dropped=sorted(
                        j.name for j in runnable if j.job_id not in kept_ids
                    ),
                )
            machine_ids = self.consume_dirty_machines(machine_ids)
            if machine_ids is None or machine_ids:
                if self.config.starvation_timeout is not None:
                    self._update_reservations(jobs, time)
                barrier_stages = (
                    self._round_barriers
                    if self._round_barriers is not None
                    else self._barrier_stages(jobs)
                )
                if self._use_vectorized:
                    # the stage blocks, SRTF scores and barrier flags are
                    # identical on every machine this round — build them
                    # once and share the table across all machine views
                    self._round_table = self.candidates.round_table(
                        self.index,
                        jobs,
                        lambda job: self._remaining_work(job, time),
                        barrier_stages,
                    )
                visit = self.iter_machine_ids(machine_ids)
                if (
                    self._use_vectorized
                    and self.candidates.single_capacity_class
                    and self._round_table.stages
                ):
                    # machines with no locality pool in any round stage
                    # share one machine-independent view (content-exact
                    # reuse, no behavioral gate needed)
                    masks = [
                        self._stage_local_mask(s)
                        for s in self._round_table.stages
                    ]
                    mat = np.stack(masks)
                    special = mat.any(axis=0)
                    self._round_special = special
                    self._round_special_mat = mat
                    nonspecial = np.flatnonzero(~special)
                    self._round_proxy = (
                        int(nonspecial[0]) if nonspecial.size else -1
                    )
                if (
                    self.prefilter_machines
                    and self._use_vectorized
                    and self.trace is None
                    and self.tracker is None
                    and self.config.starvation_timeout is None
                    and self.estimator.stable_estimates
                ):
                    # a machine whose free vector cannot cover any
                    # stage's demand lower bound yields zero placements;
                    # skipping it changes nothing (visits mutate state
                    # only through placements)
                    visit = self._prefilter_machines(visit)
                # exact-fit skip: machines on the shared (no-locality)
                # view whose free vector fits no active row place
                # nothing and mutate nothing, so their visits can be
                # dropped wholesale.  Same gates as the prefilter, plus
                # no live reservations (a reserved machine must be
                # visited even when nothing fits).
                skip_special = None
                skip_any = None
                skip_gen = None
                if (
                    self.prefilter_machines
                    and self._round_special is not None
                    and self._round_proxy >= 0
                    and self.trace is None
                    and self.tracker is None
                    and not self._reservations
                ):
                    skip_special = self._round_special
                try:
                    for machine_id in visit:
                        if (
                            skip_special is not None
                            and not skip_special[machine_id]
                        ):
                            gen = (
                                self._round_table.rep_gen,
                                self._remote_granted.gen,
                            )
                            if skip_gen != gen:
                                skip_any = self._round_placeable()
                                skip_gen = gen
                            if not skip_any[machine_id]:
                                continue
                        placements.extend(
                            self._fill_machine(
                                machine_id, jobs, barrier_stages, time
                            )
                        )
                finally:
                    self._round_table = None
                    self._round_special = None
                    self._round_special_mat = None
                    self._round_proxy = -1
                self.candidates.sync_instruments()
        if prof is not None:
            prof.record("tetris.schedule", perf_counter() - start)
        return placements

    # -- round-level machine prefilter ----------------------------------------
    def _stage_lb_vec(self, stage: Stage) -> np.ndarray:
        """A machine-independent elementwise lower bound on the booked
        demand of *any* of ``stage``'s tasks on *any* machine.

        Built from the per-dimension minimum of the stage's estimated
        demands: fluid rates are additionally floored by the cluster's
        per-dimension minimum capacity (booking caps them at the target
        machine's capacity), placement-dependent dimensions (netin /
        diskr / netout — zeroed by ``adjust_for_placement`` depending on
        input locality) and unconsidered dimensions are set to zero.
        Claims only shrink the candidate set, so the cached minimum over
        the full task list stays a valid lower bound for the stage's
        lifetime (estimates are stable when the prefilter is active).
        """
        lb = self._stage_lb.get(stage.stage_id)
        if lb is None:
            model = self.cluster.model
            est = np.stack(
                [self.estimated_demands(t).data for t in stage.tasks]
            )
            lb = est.min(axis=0)
            np.minimum(
                lb, self._min_capacity, out=lb, where=model.fluid_mask
            )
            for name in ("netin", "diskr", "netout"):
                i = model.index.get(name)
                if i is not None:
                    lb[i] = 0.0
            lb[~self._dims_mask] = 0.0
            self._stage_lb[stage.stage_id] = lb
        return lb

    def _stage_lb_remote_vec(self, stage: Stage) -> np.ndarray:
        """Tighter lower bound, valid only for machines holding *no*
        input replica of any of the stage's tasks.

        On such a machine every input is remote, so a booked vector has
        ``diskr = netout = 0`` but keeps the full estimated ``netin``
        whenever the task has any input at all (``adjust_for_placement``
        zeroes netin only when nothing is remote).  Saturated NICs are
        the dominant reason fills come up empty, so including netin here
        skips most machines the locality-agnostic bound cannot.
        """
        lb = self._stage_lb_remote.get(stage.stage_id)
        if lb is None:
            model = self.cluster.model
            est = np.stack(
                [self.estimated_demands(t).data for t in stage.tasks]
            )
            i_netin = model.index.get("netin")
            if i_netin is not None:
                no_input = np.fromiter(
                    (t.input_mb <= 0 for t in stage.tasks),
                    dtype=bool,
                    count=len(stage.tasks),
                )
                est[no_input, i_netin] = 0.0
            lb = est.min(axis=0)
            np.minimum(
                lb, self._min_capacity, out=lb, where=model.fluid_mask
            )
            for name in ("diskr", "netout"):
                i = model.index.get(name)
                if i is not None:
                    lb[i] = 0.0
            lb[~self._dims_mask] = 0.0
            self._stage_lb_remote[stage.stage_id] = lb
        return lb

    def _stage_local_mask(self, stage: Stage) -> np.ndarray:
        """Boolean machine mask: True where ``stage`` has a locality
        pool (the machine holds, or held, an input replica of one of
        its tasks).  Exactly the machines where a booked vector can
        deviate from the all-remote pattern, so only the weaker
        :meth:`_stage_lb_vec` bound applies there.  The index's pool
        key set is fixed at entry creation, so the mask is cacheable.
        """
        mask = self._stage_local.get(stage.stage_id)
        if mask is None:
            mask = np.zeros(
                self.cluster.state.capacity.shape[0], dtype=bool
            )
            ids = list(self.index.local_machines(stage))
            if ids:
                mask[ids] = True
            self._stage_local[stage.stage_id] = mask
        return mask

    def _prefilter_machines(self, order: List[int]) -> List[int]:
        """Drop machines that provably cannot place any candidate.

        Sound only as a necessary condition on the *fit* check: a
        machine survives iff some round-table stage's demand lower
        bound fits its free vector with the usual EPSILON slack.  A
        visit to a machine with no fitting candidate mutates nothing,
        so skipping it leaves placements (and all scheduler state)
        bit-identical; relative order of the survivors is preserved, so
        the greedy fill sequence is unchanged.  Callers gate this on
        trace-off (skipped visits emit no decision events), no tracker
        (the availability view must be the cluster's own free matrix)
        and no reservations (a reserved machine must be visited even
        when nothing fits).
        """
        table = self._round_table
        if table is None or not table.stages or not order:
            return order
        stages = table.stages
        lb = np.stack([self._stage_lb_vec(s) for s in stages])
        free = self.cluster.state.free_clamped_matrix()
        ids = np.fromiter(order, dtype=np.intp, count=len(order))
        rows = free[ids] + EPSILON
        # cheap cut: the pointwise min over all stages must fit
        alive = np.flatnonzero((rows >= lb.min(axis=0)).all(axis=1))
        if alive.size == 0:
            return []
        # per-(machine, stage) necessary conditions, pattern-aware: a
        # machine without an input replica for a stage must additionally
        # cover the stage's all-remote bound (netin included); machines
        # with a replica only need the locality-agnostic bound
        arows = rows[alive]
        fit = (lb[None, :, :] <= arows[:, None, :]).all(2)
        lb_remote = np.stack([self._stage_lb_remote_vec(s) for s in stages])
        fit_remote = (lb_remote[None, :, :] <= arows[:, None, :]).all(2)
        need_local = fit & ~fit_remote
        if need_local.any():
            special = np.stack(
                [self._stage_local_mask(s) for s in stages]
            )[:, ids[alive]].T
            keep = (fit_remote | (need_local & special)).any(axis=1)
        else:
            keep = fit_remote.any(axis=1)
        alive = alive[keep]
        if alive.size == len(order):
            return order
        return [order[int(k)] for k in alive]

    def _round_placeable(self) -> np.ndarray:
        """Per-machine exact first-iteration placeability verdicts for
        the shared (no-locality) view at the current rep generation.

        ``placeable[m]`` is True iff some active shared-view row both
        fits machine ``m``'s clamped free vector — the same ``booked <=
        free + EPSILON`` comparisons the fill loop's first iteration
        runs, as one broadcast over the whole free matrix — and passes
        the remote-headroom check.  A machine with no locality pool
        holds no input replica of any round stage, so every remote row's
        transfer plan resolves to the interned machine-independent
        generic plan: its verdict is the same for all such machines and
        one check (through the verdict cache) covers them all.

        A False entry means the visit's first ``keep`` set drains to
        empty, so the fill loop breaks having placed nothing and mutated
        nothing: skipping the visit is bit-identical.  Pending
        federation-retry adjustments only shrink the free vector, so a
        False verdict stays False under them.

        Valid only for machines with no locality pool this round (their
        view content is exactly the shared view) and only at the
        (rep, grant-ledger) generation it was computed at — a placement
        changes one stage's rows and may grant remote headroom, and the
        caller recomputes.
        """
        table = self._round_table
        view = self.candidates.shared_view(
            table, self.index, self._round_proxy, self.cluster.model.dims
        )
        rows = view.active_rows()
        state = self.cluster.state
        if rows.size == 0:
            return np.zeros(state.num_machines, dtype=bool)
        remote = view.remote
        if remote[rows].any():
            tasks = view.tasks
            proxy = self._round_proxy
            ok = np.fromiter(
                (
                    not remote[r] or self._remote_sources_ok(tasks[r], proxy)
                    for r in rows
                ),
                dtype=bool,
                count=rows.size,
            )
            rows = rows[ok]
            if rows.size == 0:
                return np.zeros(state.num_machines, dtype=bool)
        booked = view.booked_mat[rows]
        free = state.free_clamped_matrix()
        if not self._mask_all:
            mask = self._dims_mask
            booked = booked[:, mask]
            free = free[:, mask]
        fit = booked[:, None, :] <= (free + EPSILON)[None, :, :]
        return fit.all(axis=2).any(axis=0)

    # -- starvation prevention (Section 3.5 future work) ---------------------
    def _update_reservations(self, jobs: Sequence[Job], time: float) -> None:
        """Reserve a machine for each starved stage.

        A stage is starved when it has had runnable tasks for longer than
        ``starvation_timeout`` without a single placement.  It gets the
        machine with the most free capacity reserved: the machine stops
        accepting other tasks, so freed resources accumulate until the
        starved task fits.
        """
        timeout = self.config.starvation_timeout
        # drop stale reservations (stage drained or finished)
        for machine_id, stage in list(self._reservations.items()):
            if stage.is_finished() or not self.index.has_candidates(stage):
                del self._reservations[machine_id]
        reserved_stages = {s.stage_id for s in self._reservations.values()}
        for job in jobs:
            for stage in self.index.indexed_stages(job):
                if stage.stage_id in reserved_stages:
                    continue
                last = self._stage_last_placement.get(stage.stage_id)
                if last is None or time - last <= timeout:
                    continue
                machine_id = self._pick_reservation_machine()
                if machine_id is None:
                    return
                self._reservations[machine_id] = stage
                reserved_stages.add(stage.stage_id)
                if self._m_reservations is not None:
                    self._m_reservations.inc()
                if self.trace is not None:
                    self.trace.emit(
                        "reservation",
                        time=time,
                        job=job.name,
                        stage=stage.name,
                        machine=machine_id,
                    )

    def _pick_reservation_machine(self) -> Optional[int]:
        """The unreserved machine with the most normalized free capacity.

        One cluster-wide free matrix and a masked argmax replace the
        per-machine ``ResourceVector`` allocations; numpy's first-max
        argmax matches the scalar loop's strict-``>`` tie-break, and
        reserved machines are masked to ``-inf`` (free totals are never
        negative, so any unreserved machine still wins).
        """
        machines = self.cluster.machines
        if not machines:
            return None
        free = np.stack([m.free_clamped_view().data for m in machines])
        caps = np.stack([m.capacity.data for m in machines])
        nz = caps > EPSILON
        norm = np.zeros_like(free)
        norm[nz] = free[nz] / caps[nz]
        scores = norm.sum(axis=1)
        if self._reservations:
            reserved = np.fromiter(
                (m.machine_id in self._reservations for m in machines),
                dtype=bool,
                count=len(machines),
            )
            if reserved.all():
                return None
            scores[reserved] = -np.inf
        return machines[int(np.argmax(scores))].machine_id

    def _barrier_stages(self, jobs: Sequence[Job]) -> set:
        """Stages past the barrier threshold (their stragglers get priority)."""
        if self.config.barrier_knob <= 0:
            return set()
        eligible = set()
        for job in jobs:
            for stage in job.dag:
                if (
                    not stage.is_finished()
                    and stage.is_released()
                    and stage.num_finished > 0
                    and stage.finished_fraction >= self.config.barrier_knob
                ):
                    eligible.add(stage.stage_id)
        return eligible

    def _fill_machine(
        self,
        machine_id: int,
        jobs: Sequence[Job],
        barrier_stages: set,
        time: float,
    ) -> List[Placement]:
        placements: List[Placement] = []
        free = self.machine_free(machine_id)
        reserved_stage = self._reservations.get(machine_id)
        if reserved_stage is not None:
            # a starved stage holds this machine: admit only its task,
            # and only once it finally fits
            task = self.index.any_candidate(reserved_stage)
            if task is None:
                del self._reservations[machine_id]
            else:
                booked = self.booked_demands(task, machine_id)
                if not self._fits(booked, free):
                    return placements  # keep holding resources free
                free = self._place_candidate(
                    task,
                    booked,
                    machine_id,
                    free,
                    time,
                    placements,
                    via="reservation",
                )
                del self._reservations[machine_id]
        if self._use_vectorized:
            fill = self._fill_loop_vectorized
        else:
            fill = self._fill_loop_scalar
        placements.extend(fill(machine_id, jobs, barrier_stages, free, time))
        return placements

    def _place_candidate(
        self,
        task: Task,
        booked: ResourceVector,
        machine_id: int,
        free: ResourceVector,
        time: float,
        placements: List[Placement],
        via: str = "pack",
        score_info: Optional[Dict[str, float]] = None,
    ) -> ResourceVector:
        """Claim + grant + record one placement; returns the updated free."""
        self.index.claim(task)
        if self._round_table is not None:
            # the claim may have removed the stage's cached queue-front
            # rep from under machines not yet visited this round
            self._round_table.invalidate_stage_rep(task.stage.stage_id)
        if self.config.check_remote_resources:
            self._grant_remote(task, machine_id)
        placements.append(Placement(task, machine_id, booked))
        self._stage_last_placement[task.stage.stage_id] = time
        if self.trace is not None:
            self.trace.emit(
                "placement",
                time=time,
                job=task.job.name,
                stage=task.stage.name,
                task=task.index,
                machine=machine_id,
                via=via,
                **(score_info or {}),
            )
        return (free - booked).clamp_nonnegative()

    def _fill_loop_scalar(
        self,
        machine_id: int,
        jobs: Sequence[Job],
        barrier_stages: set,
        free: ResourceVector,
        time: float,
    ) -> List[Placement]:
        """The reference decision loop: one candidate at a time."""
        placements: List[Placement] = []
        trace = self.trace
        cfg = self.config
        while True:
            entries: Optional[List[tuple]] = [] if trace is not None else None
            candidates = self._gather_candidates(
                machine_id, jobs, free, time, entries
            )
            if not candidates:
                if entries:
                    self._emit_decision_entries(entries, machine_id, time, 0.0)
                break
            # ε over the FULL candidate set (§3.3), before barrier filtering
            epsilon = self._epsilon(
                [c.alignment for c in candidates],
                [c.remaining_work for c in candidates],
            )
            if entries:
                self._emit_decision_entries(entries, machine_id, time, epsilon)
            barrier_cands = [
                c for c in candidates if c.task.stage.stage_id in barrier_stages
            ]
            pool = barrier_cands if barrier_cands else candidates
            if trace is not None and barrier_cands:
                trace.emit(
                    "barrier_filter",
                    time=time,
                    machine=machine_id,
                    barrier_candidates=len(barrier_cands),
                    candidates=len(candidates),
                )
            best = self._pick_best(pool, epsilon)
            score_info = None
            if trace is not None:
                # the full decomposition behind the argmax (what
                # ``repro explain`` reconstructs): every term is the
                # same plain-float arithmetic the vectorized path
                # reduces to, so the streams stay bit-identical
                srtf_weight = cfg.srtf_multiplier * epsilon
                best_score = (
                    cfg.alignment_weight * best.alignment
                    - srtf_weight * best.remaining_work
                )
                score_info = {
                    "alignment": best.alignment,
                    "remaining_work": best.remaining_work,
                    "combined": best_score,
                    "epsilon": epsilon,
                    "srtf_term": srtf_weight * best.remaining_work,
                    "remote": best.task.remote_input_mb(machine_id) > 0,
                    "pool": len(pool),
                }
                if len(pool) > 1:
                    runner_up = max(
                        cfg.alignment_weight * c.alignment
                        - srtf_weight * c.remaining_work
                        for c in pool
                        if c is not best
                    )
                    score_info["margin"] = best_score - runner_up
            free = self._place_candidate(
                best.task,
                best.booked,
                machine_id,
                free,
                time,
                placements,
                score_info=score_info,
            )
        return placements

    def _violating_dim(
        self, booked: ResourceVector, free: ResourceVector
    ) -> str:
        """The first considered dimension (model order) that overflows."""
        mask = self._dims_mask
        over = booked.data[mask] > free.data[mask] + EPSILON
        return self._masked_names[int(np.argmax(over))]

    def _fit_entry(
        self, task: Task, booked: ResourceVector, free: ResourceVector
    ) -> tuple:
        """A ``fit_reject`` entry carrying the overflow quantities.

        Both decision paths build their entries through this helper, so
        the emitted ``need``/``free`` floats agree bit-for-bit.
        """
        dim = self._violating_dim(booked, free)
        return ("fit", task, dim, float(booked.get(dim)), float(free.get(dim)))

    def _emit_decision_entries(
        self,
        entries: List[tuple],
        machine_id: int,
        time: float,
        epsilon: float,
    ) -> None:
        """Emit one gather round's rejections and scored candidates.

        Both decision paths funnel through here with identical entry
        tuples, so the emitted streams agree bit-for-bit: the combined
        score is recomputed as ``w*a - (m*ε)*p`` from plain floats, which
        matches the vectorized ``scores`` array elementwise.
        """
        trace = self.trace
        cfg = self.config
        srtf_weight = cfg.srtf_multiplier * epsilon
        for entry in entries:
            kind = entry[0]
            if kind == "cand":
                _, cand, remote = entry
                task = cand.task
                trace.emit(
                    "candidate",
                    time=time,
                    job=task.job.name,
                    stage=task.stage.name,
                    task=task.index,
                    machine=machine_id,
                    alignment=cand.alignment,
                    remaining_work=cand.remaining_work,
                    combined=cfg.alignment_weight * cand.alignment
                    - srtf_weight * cand.remaining_work,
                    remote=remote,
                )
            elif kind == "fit":
                _, task, dim, need, avail = entry
                trace.emit(
                    "fit_reject",
                    time=time,
                    job=task.job.name,
                    stage=task.stage.name,
                    task=task.index,
                    machine=machine_id,
                    dim=dim,
                    need=need,
                    free=avail,
                )
            else:
                task = entry[1]
                trace.emit(
                    "remote_reject",
                    time=time,
                    job=task.job.name,
                    stage=task.stage.name,
                    task=task.index,
                    machine=machine_id,
                )

    def _fill_loop_vectorized(
        self,
        machine_id: int,
        jobs: Sequence[Job],
        barrier_stages: set,
        free: ResourceVector,
        time: float,
    ) -> List[Placement]:
        """The batched decision loop over a persistent machine view.

        One :class:`MachineView` is built per machine visit: each stage's
        representatives, their signature-group pack rows (warmed in a
        single batched numpy pass), the per-job SRTF scores and barrier
        flags — all constant within the round except the representatives
        themselves, which a placement refreshes for exactly one stage.
        Each iteration is then pure numpy over the live rows: one
        comparison for the fit checks (the free vector shrinks every
        placement), one ``score_batch`` call for the alignments, and
        elementwise ops for the remote penalty and combined score.  Rows
        needing a remote-headroom check are re-validated every iteration
        (the grant ledger moves with each placement); rows without remote
        input skip the check, which is trivially true for them.  Every
        floating-point operation mirrors the scalar path's (same values,
        same order), so the argmax — and therefore the placements — are
        identical.
        """
        cfg = self.config
        placements: List[Placement] = []
        capacity = self.cluster.machine(machine_id).capacity
        mask = self._dims_mask
        mask_all = self._mask_all
        kernels = self.kernels
        trace = self.trace
        table = self._round_table
        if table is None:  # direct call outside a schedule() round
            table = self.candidates.round_table(
                self.index,
                jobs,
                lambda job: self._remaining_work(job, time),
                barrier_stages,
            )
        shared = False
        if self._round_special is not None and table is self._round_table:
            if not self._round_special[machine_id]:
                shared = True
                view = self.candidates.shared_view(
                    table, self.index, machine_id, self.cluster.model.dims
                )
            elif self._round_proxy >= 0:
                sis = np.flatnonzero(
                    self._round_special_mat[:, machine_id]
                )
                view = self.candidates.patched_view(
                    table,
                    self.index,
                    machine_id,
                    self.cluster.model.dims,
                    sis,
                    self._round_proxy,
                )
            else:
                view = self.candidates.build_view(
                    table, self.index, machine_id, self.cluster.model.dims
                )
        else:
            view = self.candidates.build_view(
                table, self.index, machine_id, self.cluster.model.dims
            )
        while True:
            rows = view.active_rows()
            if rows.size == 0:
                break
            if mask_all:
                fits = kernels.fit_rows(
                    view.booked_mat[rows], free.data, EPSILON
                )
            else:
                fits = kernels.fit_rows(
                    view.booked_mat[rows][:, mask],
                    free.data[mask],
                    EPSILON,
                )
            keep = rows[fits]
            if keep.size:
                remote_rows = np.flatnonzero(view.remote[keep])
                if remote_rows.size:
                    tasks = view.tasks
                    bad = None
                    for k in remote_rows:
                        if not self._remote_sources_ok(
                            tasks[keep[k]], machine_id
                        ):
                            if bad is None:
                                bad = []
                            bad.append(k)
                    if bad is not None:
                        ok = np.ones(keep.size, dtype=bool)
                        ok[bad] = False
                        keep = keep[ok]
            if not keep.size:
                if trace is not None:
                    entries = [
                        ("remote", view.tasks[i])
                        if fits[k]
                        else self._fit_entry(view.tasks[i], view.booked[i], free)
                        for k, i in enumerate(rows)
                    ]
                    self._emit_decision_entries(
                        entries, machine_id, time, 0.0
                    )
                break
            demand_matrix = view.norm_mat[keep]
            free_norm = self._masked(free).normalized_by(capacity)
            if self._dot_kernel is not None:
                align = self._dot_kernel(demand_matrix, free_norm.data)
            else:
                align = self.scorer.score_batch(demand_matrix, free_norm.data)
            remote_flags = view.remote[keep]
            if remote_flags.any():
                align = np.where(
                    remote_flags, align * (1.0 - cfg.remote_penalty), align
                )
            kept_remaining = view.remaining[keep]
            epsilon = self._epsilon(
                align.tolist(), kept_remaining.tolist()
            )
            srtf_weight = cfg.srtf_multiplier * epsilon
            scores = kernels.combine_scores(
                align, kept_remaining, cfg.alignment_weight, srtf_weight
            )
            if trace is not None:
                pos = {int(i): k for k, i in enumerate(keep)}
                entries = []
                for k, i in enumerate(rows):
                    task = view.tasks[i]
                    kk = pos.get(int(i))
                    if kk is not None:
                        entries.append((
                            "cand",
                            _Candidate(
                                task,
                                None,
                                float(align[kk]),
                                float(kept_remaining[kk]),
                            ),
                            bool(remote_flags[kk]),
                        ))
                    elif not fits[k]:
                        entries.append(
                            self._fit_entry(task, view.booked[i], free)
                        )
                    else:
                        entries.append(("remote", task))
                self._emit_decision_entries(entries, machine_id, time, epsilon)
            barrier_flags = view.barrier[keep]
            pool = None
            if barrier_flags.any():
                pool = np.nonzero(barrier_flags)[0]
                best_k = int(pool[np.argmax(scores[pool])])
                if trace is not None:
                    trace.emit(
                        "barrier_filter",
                        time=time,
                        machine=machine_id,
                        barrier_candidates=int(pool.size),
                        candidates=len(keep),
                    )
            else:
                best_k = int(np.argmax(scores))
            best_i = int(keep[best_k])
            best_task = view.tasks[best_i]
            score_info = None
            if trace is not None:
                # mirror of the scalar path's decomposition; the array
                # entries are the same doubles the scalar loop computes,
                # so every emitted term matches bit-for-bit
                pool_positions = (
                    [int(k) for k in pool]
                    if pool is not None
                    else list(range(len(keep)))
                )
                best_score = float(scores[best_k])
                score_info = {
                    "alignment": float(align[best_k]),
                    "remaining_work": float(kept_remaining[best_k]),
                    "combined": best_score,
                    "epsilon": epsilon,
                    "srtf_term": srtf_weight * float(kept_remaining[best_k]),
                    "remote": bool(remote_flags[best_k]),
                    "pool": len(pool_positions),
                }
                if len(pool_positions) > 1:
                    runner_up = max(
                        float(scores[k])
                        for k in pool_positions
                        if k != best_k
                    )
                    score_info["margin"] = best_score - runner_up
            free = self._place_candidate(
                best_task,
                view.booked[best_i],
                machine_id,
                free,
                time,
                placements,
                score_info=score_info,
            )
            view.refresh_stage(self.index, best_task.stage)
        if shared:
            # this loop's own claims were refreshed into the shared view
            # as they happened, so it is current again at the new rep
            # generation
            table._shared_gen = table.rep_gen
        return placements

    def _remaining_work(self, job: Job, time: float) -> float:
        """The job's SRTF score, optionally progress-aware (§3.5).

        The cached score counts every unfinished task at full weight;
        with ``progress_aware_srtf`` the estimated elapsed fraction of
        each *running* task is credited back — the job manager's
        estimate of when its assigned tasks will finish.
        """
        base = self._job_work.get(job.job_id, 0.0)
        if not self.config.progress_aware_srtf:
            return base
        credit = 0.0
        for task in job.running_tasks():
            nominal = task.nominal_duration()
            if nominal <= 0 or task.start_time is None:
                continue
            elapsed_fraction = min((time - task.start_time) / nominal, 1.0)
            credit += (
                self._task_work.get(task.task_id, 0.0) * elapsed_fraction
            )
        return max(base - credit, 0.0)

    def _gather_candidates(
        self,
        machine_id: int,
        jobs: Sequence[Job],
        free: ResourceVector,
        time: float = 0.0,
        event_log: Optional[List[tuple]] = None,
    ) -> List[_Candidate]:
        """Fit-checked, scored candidates for one machine.

        When ``event_log`` is given (tracing on), every considered task
        appends an entry — ``("fit", task, dim)``, ``("remote", task)``
        or ``("cand", candidate, remote)`` — in iteration order, for
        :meth:`_emit_decision_entries` once ε is known.
        """
        candidates: List[_Candidate] = []
        for job in jobs:
            remaining = self._remaining_work(job, time)
            for stage in self.index.indexed_stages(job):
                for task in self.index.representatives(stage, machine_id):
                    booked = self.booked_demands(task, machine_id)
                    if not self._fits(booked, free):
                        if event_log is not None:
                            event_log.append(
                                self._fit_entry(task, booked, free)
                            )
                        continue
                    if not self._remote_sources_ok(task, machine_id):
                        if event_log is not None:
                            event_log.append(("remote", task))
                        continue
                    remote = task.remote_input_mb(machine_id) > 0
                    alignment = self._score_alignment(
                        booked, free, remote, machine_id
                    )
                    cand = _Candidate(task, booked, alignment, remaining)
                    candidates.append(cand)
                    if event_log is not None:
                        event_log.append(("cand", cand, remote))
        return candidates

    @staticmethod
    def _epsilon(
        alignments: Sequence[float], works: Sequence[float]
    ) -> float:
        """The SRTF weight ε = ā/p̄ over the full candidate set (§3.3)."""
        n = len(alignments)
        if n == 0:
            return 0.0
        a_bar = sum(alignments) / n
        p_bar = sum(works) / n
        return (a_bar / p_bar) if p_bar > 0 else 0.0

    def _pick_best(
        self,
        candidates: Sequence[_Candidate],
        epsilon: Optional[float] = None,
    ) -> _Candidate:
        """Combined score: alignment minus the normalized SRTF term.

        ``epsilon`` must be the ā/p̄ weight computed over the *full*
        candidate set; recomputing it over a barrier-filtered pool would
        silently change the SRTF weight whenever stragglers exist.  It
        is derived from ``candidates`` only when omitted (callers that
        have no wider pool).
        """
        cfg = self.config
        if epsilon is None:
            epsilon = self._epsilon(
                [c.alignment for c in candidates],
                [c.remaining_work for c in candidates],
            )

        def combined(c: _Candidate) -> float:
            return (
                cfg.alignment_weight * c.alignment
                - cfg.srtf_multiplier * epsilon * c.remaining_work
            )

        return max(candidates, key=combined)

    def with_config(self, **changes) -> "TetrisScheduler":
        """A fresh scheduler with updated config (for parameter sweeps)."""
        return TetrisScheduler(
            config=replace(self.config, **changes),
            fairness_policy=self.fairness_policy,
        )
