"""An index of runnable tasks, grouped by stage, with locality lookup.

Schedulers pick tasks stage-first: tasks within a stage are statistically
similar (Section 4.1), so one representative score per stage per machine
is enough, and the index answers "give me a runnable task of this stage,
preferably one with input local to machine m" in O(1) amortized.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskState

__all__ = ["StageIndex"]


class _StageEntry:
    __slots__ = ("stage", "queue", "local")

    def __init__(self, stage: Stage):
        self.stage = stage
        self.queue: Deque[Task] = deque(stage.runnable_tasks())
        self.local: Dict[int, Deque[Task]] = {}
        for task in self.queue:
            for inp in task.inputs:
                for machine_id in inp.locations:
                    self.local.setdefault(machine_id, deque()).append(task)


class StageIndex:
    """Tracks runnable-and-unclaimed tasks per stage.

    ``stage_filter`` optionally restricts which stages the index will
    accept: :meth:`add_stage` (and thus :meth:`add_job`) silently skips
    stages the predicate rejects.  A scheduler-federation shard uses
    this to index only the stages routed to it, so its fill loops scan
    a fraction of the cluster-wide stage set.  The predicate is
    re-consulted on every ``add_stage`` call, so a stage rejected
    earlier (routed elsewhere) can be admitted later (promoted to
    floating) by simply calling ``add_stage`` again.
    """

    def __init__(
        self, stage_filter: Optional[Callable[[Stage], bool]] = None
    ) -> None:
        self._entries: Dict[int, _StageEntry] = {}
        self._claimed: Set[int] = set()
        self._stage_filter = stage_filter

    # -- maintenance ----------------------------------------------------------
    def add_stage(self, stage: Stage) -> None:
        key = stage.stage_id
        if key not in self._entries:
            if self._stage_filter is not None and not self._stage_filter(stage):
                return
            self._entries[key] = _StageEntry(stage)

    def add_job(self, job: Job) -> None:
        """Index every already-released stage of a newly-arrived job."""
        for stage in job.dag:
            if stage.is_released():
                self.add_stage(stage)

    def claim(self, task: Task) -> None:
        """Mark a task as tentatively placed during this scheduling round."""
        self._claimed.add(task.task_id)

    def forget(self, task: Task) -> None:
        """Drop bookkeeping for a finished task."""
        self._claimed.discard(task.task_id)

    def reset_claims(self) -> None:
        """Release every tentative claim (benchmark/repro harness hook)."""
        self._claimed.clear()

    def requeue(self, task: Task) -> None:
        """Put a failed task back at the *back* of its stage's pools.

        The pools prune lazily (ineligible fronts are popped on lookup),
        so at requeue time the task may or may not still sit at its old
        position, depending on how far lookups happened to walk while it
        ran.  Dropping any stale occurrence before appending makes the
        task's comeback position canonical — candidate order after a
        failure is then independent of lookup (visit) history, which is
        what lets the round-level machine prefilter skip fruitless
        visits without perturbing placements.  Failures are rare, so the
        O(queue) removal is off any hot path.
        """
        self._claimed.discard(task.task_id)
        entry = self._entries.get(task.stage.stage_id)
        if entry is None:
            return
        try:
            entry.queue.remove(task)
        except ValueError:
            pass
        entry.queue.append(task)
        for inp in task.inputs:
            for machine_id in inp.locations:
                queue = entry.local.setdefault(machine_id, deque())
                try:
                    queue.remove(task)
                except ValueError:
                    pass
                queue.append(task)

    def _eligible(self, task: Task) -> bool:
        return (
            task.state is TaskState.RUNNABLE
            and task.task_id not in self._claimed
        )

    # -- candidate lookup ------------------------------------------------------
    def local_candidate(
        self, stage: Stage, machine_id: int
    ) -> Optional[Task]:
        """A runnable task of ``stage`` with a replica on ``machine_id``."""
        entry = self._entries.get(stage.stage_id)
        if entry is None:
            return None
        queue = entry.local.get(machine_id)
        if not queue:
            return None
        while queue:
            task = queue[0]
            if self._eligible(task):
                return task
            queue.popleft()
        return None

    def any_candidate(self, stage: Stage) -> Optional[Task]:
        """Any runnable task of ``stage`` (front of the queue)."""
        entry = self._entries.get(stage.stage_id)
        if entry is None:
            return None
        queue = entry.queue
        while queue:
            task = queue[0]
            if self._eligible(task):
                return task
            queue.popleft()
        return None

    def representatives(self, stage: Stage, machine_id: int) -> tuple:
        """The stage's candidate representatives for one machine, in the
        canonical scoring order: the locality-preferred task first, then
        the stage-queue front when distinct.  Both Tetris fill loops and
        the signature-grouped candidate view gather in exactly this
        order, which is what keeps their decision streams bit-identical.
        """
        local = self.local_candidate(stage, machine_id)
        other = self.any_candidate(stage)
        if local is None:
            return () if other is None else (other,)
        if other is None or other is local:
            return (local,)
        return (local, other)

    def has_candidates(self, stage: Stage) -> bool:
        return self.any_candidate(stage) is not None

    def local_machines(self, stage: Stage):
        """Machine ids with a locality pool for ``stage`` — every machine
        that holds (or ever held) an input replica of any of the stage's
        tasks.  The key set is fixed at entry creation (requeues can only
        re-add tasks whose locations already have pools), so callers may
        cache derived structures per stage."""
        entry = self._entries.get(stage.stage_id)
        return entry.local.keys() if entry is not None else ()

    def indexed_stages(self, job: Job) -> List[Stage]:
        """This job's indexed stages that still hold eligible tasks."""
        out = []
        for stage in job.dag:
            if stage.stage_id in self._entries and self.has_candidates(stage):
                out.append(stage)
        return out
