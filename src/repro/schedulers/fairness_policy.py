"""Fairness policies: how far is each job below its fair share?

Section 3.4 observes that most fair schedulers share one skeleton: offer
the next available resource to the job *furthest below* its fair share.
Tetris plugs into any of them by consuming only the resulting ordering.
A policy returns a *deficit* — larger means further below fair share, so
sorting by descending deficit puts the most-starved job first.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.schedulers.base import Scheduler
    from repro.workload.job import Job

__all__ = ["FairnessPolicy", "SlotFairnessPolicy", "DRFFairnessPolicy"]


class FairnessPolicy(abc.ABC):
    """Computes per-job fair-share deficits for a scheduler's job set."""

    @abc.abstractmethod
    def deficit(self, scheduler: "Scheduler", job: "Job") -> float:
        """How far ``job`` is below its fair share (higher = more starved)."""


class SlotFairnessPolicy(FairnessPolicy):
    """Slot-count fairness (Hadoop Fair/Capacity scheduler style).

    Fair share is an equal split of the cluster's memory-defined slots
    among active jobs; the deficit is the fair share minus the job's
    currently-running task count.
    """

    def __init__(self, slot_mem_gb: float = 2.0):
        if slot_mem_gb <= 0:
            raise ValueError("slot size must be positive")
        self.slot_mem_gb = slot_mem_gb

    def total_slots(self, scheduler: "Scheduler") -> int:
        per_machine = int(
            scheduler.cluster.machine_capacity().get("mem") // self.slot_mem_gb
        )
        return per_machine * scheduler.cluster.num_machines

    def deficit(self, scheduler: "Scheduler", job: "Job") -> float:
        active = max(len(scheduler.active_jobs), 1)
        fair = self.total_slots(scheduler) / active
        used = len(job.running_tasks())
        return (fair - used) / max(fair, 1.0)


class DRFFairnessPolicy(FairnessPolicy):
    """Dominant Resource Fairness ordering (Ghodsi et al., NSDI 2011).

    The deficit is the equal-split fair share minus the job's dominant
    resource share, computed over ``dims`` (DRF implementations in YARN
    consider CPU and memory only).
    """

    def __init__(self, dims: Tuple[str, ...] = ("cpu", "mem")):
        self.dims = tuple(dims)

    def dominant_share(self, scheduler: "Scheduler", job: "Job") -> float:
        alloc = scheduler.job_alloc.get(job.job_id)
        if alloc is None:
            return 0.0
        capacity = scheduler.cluster.total_capacity()
        share = 0.0
        for dim in self.dims:
            cap = capacity.get(dim)
            if cap > 0:
                share = max(share, alloc.get(dim) / cap)
        return share

    def deficit(self, scheduler: "Scheduler", job: "Job") -> float:
        active = max(len(scheduler.active_jobs), 1)
        fair = 1.0 / active
        return fair - self.dominant_share(scheduler, job)
