"""Dominant Resource Fairness scheduler (Ghodsi et al., NSDI 2011).

Offers the next resources to the job with the *lowest dominant share*.
As deployed in YARN (and as the paper's baseline), DRF considers CPU and
memory only: it checks those two dimensions before placing and ignores
disk and network entirely, so it over-allocates I/O just like the slot
schedulers.  Pass ``dims`` to extend it (the paper's Section 2.1 example
discusses a DRF that also considers the network).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.resources import ResourceVector
from repro.schedulers.base import Placement, Scheduler
from repro.schedulers.stage_index import StageIndex
from repro.workload.job import Job
from repro.workload.task import Task

__all__ = ["DRFScheduler"]


class DRFScheduler(Scheduler):
    """Progressive-filling DRF over the chosen dimensions."""

    name = "drf"

    def __init__(self, dims: Tuple[str, ...] = ("cpu", "mem")):
        super().__init__()
        if not dims:
            raise ValueError("DRF needs at least one dimension")
        self.dims = tuple(dims)
        self.index = StageIndex()

    # -- callbacks -------------------------------------------------------------
    def on_job_arrival(self, job: Job, time: float) -> None:
        super().on_job_arrival(job, time)
        self.index.add_job(job)

    def on_stage_released(self, stage, time: float) -> None:
        self.index.add_stage(stage)

    def on_task_finished(self, task: Task, time: float) -> None:
        super().on_task_finished(task, time)
        self.index.forget(task)

    # -- DRF bookkeeping -----------------------------------------------------
    def _dominant_share(self, job: Job) -> float:
        alloc = self.job_alloc.get(job.job_id)
        if alloc is None:
            return 0.0
        capacity = self.cluster.total_capacity()
        share = 0.0
        for dim in self.dims:
            cap = capacity.get(dim)
            if cap > 0:
                share = max(share, alloc.get(dim) / cap)
        return share

    def _fits(self, demand: ResourceVector, free: ResourceVector) -> bool:
        return all(
            demand.get(d) <= free.get(d) + 1e-9 for d in self.dims
        )

    def _pick_task(
        self, job: Job, machine_id: int, time: float = 0.0
    ) -> Optional[Task]:
        return self.pick_task_with_locality(
            self.index, job, machine_id, time
        )

    # -- decisions ----------------------------------------------------------
    def schedule(
        self, time: float, machine_ids: Optional[List[int]] = None
    ) -> List[Placement]:
        placements: List[Placement] = []
        #: shares drift within the round as we hand out resources
        shares: Dict[int, float] = {}
        for machine_id in self.iter_machine_ids(machine_ids):
            free = self.cluster.machine(machine_id).free_clamped()
            while True:
                jobs = self.runnable_jobs()
                if not jobs:
                    return placements
                jobs.sort(
                    key=lambda j: (
                        shares.get(j.job_id, self._dominant_share(j)),
                        j.job_id,
                    )
                )
                placed = False
                for job in jobs:
                    task = self._pick_task(job, machine_id, time)
                    if task is None:
                        continue
                    booked = self.booked_demands(task, machine_id)
                    if not self._fits(booked, free):
                        continue
                    self.index.claim(task)
                    placements.append(Placement(task, machine_id, booked))
                    free.sub_inplace(booked)
                    free = free.clamp_nonnegative()
                    shares[job.job_id] = self._round_share(job, booked, shares)
                    placed = True
                    break
                if not placed:
                    break
        return placements

    def _round_share(
        self,
        job: Job,
        booked: ResourceVector,
        shares: Dict[int, float],
    ) -> float:
        """Dominant share including placements made earlier in this round."""
        base = shares.get(job.job_id, self._dominant_share(job))
        capacity = self.cluster.total_capacity()
        bump = 0.0
        for dim in self.dims:
            cap = capacity.get(dim)
            if cap > 0:
                bump = max(bump, booked.get(dim) / cap)
        return base + bump
