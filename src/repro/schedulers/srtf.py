"""SRTF-only ablation: multi-resource shortest-remaining-time-first.

Section 5.3.1 isolates the two halves of Tetris's combined score.  This
scheduler zeroes the alignment weight, so placement is driven purely by
the jobs' remaining-work scores: the job with the least remaining work
monopolizes resources, at the cost of packing efficiency.  Admission
still checks all dimensions (no over-allocation) — the ablation isolates
the *ordering* heuristic, not the safety checks.
"""

from __future__ import annotations

from typing import Optional

from repro.schedulers.fairness_policy import FairnessPolicy
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler

__all__ = ["SRTFScheduler"]


class SRTFScheduler(TetrisScheduler):
    """Tetris with the packing term disabled."""

    name = "srtf"

    def __init__(
        self,
        config: Optional[TetrisConfig] = None,
        fairness_policy: Optional[FairnessPolicy] = None,
    ):
        if config is None:
            config = TetrisConfig(alignment_weight=0.0, srtf_multiplier=1.0)
        elif config.alignment_weight != 0.0:
            raise ValueError("SRTFScheduler requires alignment_weight=0")
        super().__init__(config=config, fairness_policy=fairness_policy)
