"""Slot-based fair scheduler (Hadoop Fair Scheduler).

Machines are carved into slots defined on memory only (the Facebook
cluster used 2 GB slots, Section 5.1).  The next free slot goes to the job
furthest below its fair share of slots.  Nothing else is checked: CPU,
disk and network are routinely over-allocated, and statically-sized slots
fragment memory — the two pathologies of Section 2.1.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.schedulers.base import Placement, Scheduler
from repro.schedulers.stage_index import StageIndex
from repro.workload.job import Job
from repro.workload.task import Task

__all__ = ["SlotFairScheduler"]


class SlotFairScheduler(Scheduler):
    """Fair sharing of memory-defined slots."""

    name = "slot-fair"

    def __init__(self, slot_mem_gb: float = 2.0):
        super().__init__()
        if slot_mem_gb <= 0:
            raise ValueError("slot size must be positive")
        self.slot_mem_gb = slot_mem_gb
        self.index = StageIndex()
        self._slots_free: Dict[int, int] = {}
        self._slots_by_task: Dict[int, int] = {}
        self._slots_used_by_job: Dict[int, int] = {}

    # -- wiring -----------------------------------------------------------------
    def bind(self, cluster, estimator=None, tracker=None) -> None:
        super().bind(cluster, estimator=estimator, tracker=tracker)
        self._slots_free = {
            m.machine_id: self.slots_of(m) for m in cluster.machines
        }

    def slots_of(self, machine) -> int:
        """Memory-defined slot count of one machine."""
        return max(1, int(machine.capacity.get("mem") // self.slot_mem_gb))

    def slots_per_machine(self) -> int:
        """Slot count of the reference machine (homogeneous clusters)."""
        return max(
            1, int(self.cluster.machine_capacity().get("mem") // self.slot_mem_gb)
        )

    def total_slots(self) -> int:
        return sum(self.slots_of(m) for m in self.cluster.machines)

    def task_slots(self, task: Task) -> int:
        """Slots a task occupies: enough to cover its estimated memory."""
        mem = self.estimated_demands(task).get("mem")
        return max(1, math.ceil(mem / self.slot_mem_gb))

    # -- callbacks -----------------------------------------------------------
    def on_job_arrival(self, job: Job, time: float) -> None:
        super().on_job_arrival(job, time)
        self.index.add_job(job)
        self._slots_used_by_job.setdefault(job.job_id, 0)

    def on_stage_released(self, stage, time: float) -> None:
        self.index.add_stage(stage)

    def _release_slots(self, task: Task, machine_id) -> None:
        slots = self._slots_by_task.pop(task.task_id, 0)
        if machine_id is not None:
            self._slots_free[machine_id] += slots
        if task.job.job_id in self._slots_used_by_job:
            self._slots_used_by_job[task.job.job_id] -= slots

    def on_task_finished(self, task: Task, time: float) -> None:
        super().on_task_finished(task, time)
        self.index.forget(task)
        self._release_slots(task, task.machine_id)
        if task.job.is_finished:
            self._slots_used_by_job.pop(task.job.job_id, None)

    def on_task_failed(self, task: Task, time: float) -> None:
        machine_id = task.machine_id  # engine calls this before mark_failed
        super().on_task_failed(task, time)
        self._release_slots(task, machine_id)

    # -- ordering -----------------------------------------------------------------
    def _job_order(self) -> List[Job]:
        """Jobs sorted most-starved first (fewest slots vs. fair share)."""
        jobs = self.runnable_jobs()
        active = max(len(self.active_jobs), 1)
        fair = self.total_slots() / active

        def deficit(job: Job) -> float:
            return fair - self._slots_used_by_job.get(job.job_id, 0)

        return sorted(jobs, key=deficit, reverse=True)

    def _pick_task(
        self, job: Job, machine_id: int, time: float = 0.0
    ) -> Optional[Task]:
        return self.pick_task_with_locality(
            self.index, job, machine_id, time
        )

    # -- decisions ------------------------------------------------------------
    def schedule(
        self, time: float, machine_ids: Optional[List[int]] = None
    ) -> List[Placement]:
        placements: List[Placement] = []
        for machine_id in self.iter_machine_ids(machine_ids):
            while self._slots_free[machine_id] > 0:
                placed = False
                for job in self._job_order():
                    task = self._pick_task(job, machine_id, time)
                    if task is None:
                        continue
                    slots = self.task_slots(task)
                    if slots > self._slots_free[machine_id]:
                        continue
                    booked = self.booked_demands(task, machine_id)
                    self.index.claim(task)
                    self._slots_free[machine_id] -= slots
                    self._slots_by_task[task.task_id] = slots
                    self._slots_used_by_job[job.job_id] = (
                        self._slots_used_by_job.get(job.job_id, 0) + slots
                    )
                    placements.append(Placement(task, machine_id, booked))
                    placed = True
                    break
                if not placed:
                    break
        return placements
