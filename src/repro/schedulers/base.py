"""Scheduler interface and shared bookkeeping.

The engine drives a scheduler through four calls:

- :meth:`Scheduler.bind` once, with the cluster (and optional estimator /
  tracker);
- :meth:`Scheduler.on_job_arrival` / :meth:`Scheduler.on_task_finished`
  as the workload evolves;
- :meth:`Scheduler.schedule` whenever anything changed; it returns
  :class:`Placement` decisions which the engine applies.

All schedulers book the demands they *believe* (from the estimator) on the
machines; physics uses the tasks' true demands.  Baseline schedulers differ
from Tetris in which dimensions they *check* before placing, not in what
gets booked — that is precisely the over-allocation story of Section 2.1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, TYPE_CHECKING

import numpy as np

from repro.estimation.estimator import DemandEstimator, OracleEstimator
from repro.resources import ResourceVector
from repro.workload.job import Job, JobState
from repro.workload.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.estimation.tracker import ResourceTracker
    from repro.obs.registry import Registry
    from repro.obs.trace import DecisionTrace

__all__ = ["Placement", "Scheduler", "adjust_for_placement"]


def adjust_for_placement(
    demands: ResourceVector, task: Task, machine_id: int
) -> ResourceVector:
    """Adapt an estimated demand vector to a candidate placement.

    Mirrors :meth:`repro.workload.task.Task.demands_on` but for an
    *estimated* profile: network-in demand applies only when some input is
    remote; disk-read demand only when some input is local; output is
    written locally so ``netout`` is cleared.
    """
    remote = task.remote_input_mb(machine_id)
    local = task.input_mb - remote
    adjusted = demands.copy()
    if remote <= 0:
        adjusted.set("netin", 0.0)
    if local <= 0:
        adjusted.set("diskr", 0.0)
    adjusted.set("netout", 0.0)
    return adjusted


@dataclass(frozen=True)
class Placement:
    """One scheduling decision: run ``task`` on ``machine_id``, booking
    ``booked`` (the scheduler's demand estimate adjusted for placement)."""

    task: Task
    machine_id: int
    booked: ResourceVector


class Scheduler(abc.ABC):
    """Base class with job-set and per-job allocation bookkeeping."""

    name = "base"

    def __init__(self) -> None:
        self.cluster: Optional["Cluster"] = None
        self.estimator: DemandEstimator = OracleEstimator()
        self.tracker: Optional["ResourceTracker"] = None
        self.active_jobs: List[Job] = []
        #: per-job booked allocation (sum over its running tasks)
        self.job_alloc: Dict[int, ResourceVector] = {}
        self._booked_by_task: Dict[int, ResourceVector] = {}
        #: delay-scheduling state: offers skipped per stage (by stage_id)
        self._stage_skips: Dict[int, int] = {}
        #: dirty-machine tracking: machines whose free vector or candidate
        #: set changed since the scheduler last looked at them.  The engine
        #: passes its own dirty set through ``schedule(machine_ids=...)``;
        #: this mirror lets direct ``schedule(time)`` calls (and schedulers
        #: that opt in) skip machines that cannot have new placements.
        self._dirty_machines: Set[int] = set()
        self._all_machines_dirty: bool = True
        #: offers a stage declines before accepting a non-local slot;
        #: None = one wave of the cluster (set at bind)
        self.locality_delay: Optional[int] = None
        #: optional decision-event sink (repro.obs.trace.DecisionTrace);
        #: like the profiler, None means tracing costs nothing
        self.trace: Optional["DecisionTrace"] = None
        #: transient free-vector adjustments: machine_id -> demands
        #: committed against the machine but not yet applied to it.  The
        #: federation sequencer sets this during conflict-retry passes,
        #: where a shard re-plans against machines whose committed
        #: placements the engine has not applied yet; None (always, for
        #: centralized schedulers) costs one falsy check per lookup.
        self._free_adjust: Optional[Dict[int, ResourceVector]] = None

    # -- observability -----------------------------------------------------------
    def use_observability(
        self,
        trace: Optional["DecisionTrace"] = None,
        metrics: Optional["Registry"] = None,
    ) -> None:
        """Attach a decision-trace sink and/or a metrics registry.

        The engine calls this for every scheduler; subclasses register
        their own metrics by overriding :meth:`_register_metrics`.
        """
        if trace is not None:
            self.trace = trace
        if metrics is not None:
            self._register_metrics(metrics)

    def _register_metrics(self, registry: "Registry") -> None:
        """Hook for subclasses to create their metric instruments."""

    # -- wiring -------------------------------------------------------------
    def bind(
        self,
        cluster: "Cluster",
        estimator: Optional[DemandEstimator] = None,
        tracker: Optional["ResourceTracker"] = None,
    ) -> None:
        self.cluster = cluster
        if estimator is not None:
            self.estimator = estimator
        self.tracker = tracker
        self.mark_all_machines_dirty()

    # -- dirty-machine tracking ------------------------------------------------
    def mark_machine_dirty(self, machine_id: int) -> None:
        """Note that ``machine_id``'s free vector changed."""
        if not self._all_machines_dirty:
            self._dirty_machines.add(machine_id)

    def mark_all_machines_dirty(self) -> None:
        """Note that every machine may have new placements (new candidates
        appeared, or the availability view was globally refreshed)."""
        self._all_machines_dirty = True
        self._dirty_machines.clear()

    def consume_dirty_machines(
        self, machine_ids: Optional[List[int]]
    ) -> Optional[List[int]]:
        """Resolve which machines a scheduling round must visit.

        When the caller supplies ``machine_ids`` (the engine plumbs its
        own ``_dirty`` set through), that set is authoritative and the
        mirrored entries are retired.  With ``machine_ids=None`` the
        scheduler's own dirty bookkeeping answers: ``None`` means "all
        machines", a (possibly empty) list means "only these changed
        since the last round".
        """
        if machine_ids is not None:
            if not self._all_machines_dirty:
                self._dirty_machines.difference_update(machine_ids)
            return machine_ids
        if self._all_machines_dirty:
            self._all_machines_dirty = False
            self._dirty_machines.clear()
            return None
        out = sorted(self._dirty_machines)
        self._dirty_machines.clear()
        return out

    # -- workload callbacks ----------------------------------------------------
    def prewarm_job(self, job: Job) -> None:
        """Optionally pre-compute per-job state *before* the job's
        arrival event fires.

        A streaming service (repro.serve) calls this while staging an
        admitted arrival, so O(tasks) derivations (demand estimates,
        work terms, candidate signatures) happen off the arrival drain.
        Implementations must be side-effect free with respect to
        scheduling decisions: a prewarmed arrival and a cold one must
        produce bit-identical placements.
        """

    def on_job_arrival(self, job: Job, time: float) -> None:
        self.active_jobs.append(job)
        self.job_alloc.setdefault(job.job_id, self.cluster.model.zeros())
        # new runnable tasks are candidates everywhere
        self.mark_all_machines_dirty()

    def on_task_started(
        self, task: Task, machine_id: int, booked: ResourceVector
    ) -> None:
        self._booked_by_task[task.task_id] = booked
        self.job_alloc[task.job.job_id].add_inplace(booked)

    def on_task_finished(self, task: Task, time: float) -> None:
        booked = self._booked_by_task.pop(task.task_id, None)
        if booked is not None:
            self.job_alloc[task.job.job_id].sub_inplace(booked)
        if task.machine_id is not None:
            self.mark_machine_dirty(task.machine_id)
        if task.job.is_finished:
            self.active_jobs = [
                j for j in self.active_jobs if j.job_id != task.job.job_id
            ]
            self.job_alloc.pop(task.job.job_id, None)

    def on_stage_released(self, stage, time: float) -> None:
        """A barrier lifted and ``stage``'s tasks became runnable."""
        self.mark_all_machines_dirty()

    def on_task_failed(self, task: Task, time: float) -> None:
        """A running attempt died; undo its bookkeeping and requeue it."""
        booked = self._booked_by_task.pop(task.task_id, None)
        if booked is not None:
            self.job_alloc[task.job.job_id].sub_inplace(booked)
        index = getattr(self, "index", None)
        if index is not None:
            index.requeue(task)
        # the attempt's machine freed up, and the task is a candidate again
        self.mark_all_machines_dirty()

    # -- helpers ---------------------------------------------------------------
    def runnable_jobs(self) -> List[Job]:
        return [
            j
            for j in self.active_jobs
            if j.state is JobState.ACTIVE and j.has_runnable_tasks()
        ]

    def estimated_demands(self, task: Task) -> ResourceVector:
        return self.estimator.estimate(task)

    def booked_demands(self, task: Task, machine_id: int) -> ResourceVector:
        """Placement-adjusted estimate, with rates capped at capacity.

        The cap matters with noisy/over-estimates: a *rate* estimate
        above capacity could never be booked anywhere and would wedge
        the task forever, while a real scheduler simply grants the whole
        machine (the task just runs slower).  Rigid demands (memory) are
        left uncapped: a task that truly needs more memory than any
        machine has is genuinely unschedulable.
        """
        adjusted = adjust_for_placement(
            self.estimated_demands(task), task, machine_id
        )
        machine = self.cluster.machine(machine_id)
        model = machine.capacity.model
        for name, is_fluid in zip(model.names, model.fluid_mask):
            if is_fluid:
                adjusted.set(
                    name,
                    min(adjusted.get(name), machine.capacity.get(name)),
                )
        return adjusted

    def pick_task_with_locality(
        self, index, job: Job, machine_id: int, time: float = 0.0
    ):
        """Delay-scheduling task choice (Zaharia et al., EuroSys 2010).

        The production baselines the paper compares against place map
        tasks on local slots when they can, *waiting* a bounded number of
        scheduling offers before settling for a remote slot.  A stage
        accepts a non-local slot only after declining ``locality_delay``
        offers; a local launch resets its patience.  With a decision
        trace attached, every declined offer is emitted as a
        ``locality_defer`` event.
        """
        limit = self.locality_delay
        if limit is None:
            limit = self.cluster.num_machines
        fallback = None
        fallback_stage = None
        for stage in index.indexed_stages(job):
            local = index.local_candidate(stage, machine_id)
            if local is not None:
                self._stage_skips[stage.stage_id] = 0
                return local
            if fallback is None:
                fallback = index.any_candidate(stage)
                fallback_stage = stage
        if fallback is None:
            return None
        # data for this stage is elsewhere: wait, unless out of patience
        # or the task has no locality preference at all (shuffle reads
        # pinned later, or inputs nowhere local)
        if not any(inp.locations for inp in fallback.inputs):
            return fallback
        skips = self._stage_skips.get(fallback_stage.stage_id, 0)
        if skips >= limit:
            return fallback
        self._stage_skips[fallback_stage.stage_id] = skips + 1
        if self.trace is not None:
            self.trace.emit(
                "locality_defer",
                time=time,
                job=job.name,
                stage=fallback_stage.name,
                machine=machine_id,
                skips=skips + 1,
            )
        return None

    def iter_machine_ids(
        self, machine_ids: Optional[List[int]]
    ) -> List[int]:
        """Machines to consider, least-loaded first.

        Heartbeats from lightly-loaded nodes effectively win the race for
        pending tasks in YARN-like systems, spreading load instead of
        piling tasks onto low-numbered machines.  Sorting by running-task
        count reproduces that (deterministically): the sort key is
        (running-task count, machine id), read straight from the cluster
        state plane's occupancy counters.
        """
        counts = self.cluster.state.num_running
        if machine_ids is None:
            return np.argsort(counts, kind="stable").tolist()
        ids = np.fromiter(machine_ids, dtype=np.intp)
        if ids.size == 0:
            return []
        return ids[np.lexsort((ids, counts[ids]))].tolist()

    def machine_free(self, machine_id: int) -> ResourceVector:
        """The free vector this scheduler plans against.

        With a tracker bound, its report (which folds in observed usage
        from mis-estimates and non-job activity) replaces the naive
        booked-allocation view.  Pending commit adjustments (federation
        retry passes) are subtracted last, whichever view applies.
        """
        machine = self.cluster.machine(machine_id)
        if self.tracker is not None:
            free = self.tracker.available(machine)
        else:
            free = machine.free_clamped()
        if self._free_adjust:
            pending = self._free_adjust.get(machine_id)
            if pending is not None:
                free = (free - pending).clamp_nonnegative()
        return free

    def dominant_share(self, job: Job) -> float:
        """The job's DRF dominant share of the whole cluster."""
        alloc = self.job_alloc.get(job.job_id)
        if alloc is None:
            return 0.0
        return alloc.dominant_share(self.cluster.total_capacity())

    # -- the decision procedure ----------------------------------------------
    @abc.abstractmethod
    def schedule(
        self, time: float, machine_ids: Optional[List[int]] = None
    ) -> List[Placement]:
        """Return placements for the current instant.

        ``machine_ids`` restricts attention to machines whose state
        changed since the last call (None means all machines).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
