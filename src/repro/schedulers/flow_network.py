"""A Quincy-style min-cost-flow scheduler (Isard et al., SOSP 2009).

The paper's Section 5.2.2 notes that *"scalability was a key reason
behind our choice to avoid more complex solutions based on flow-networks
and integer linear programming"*.  This module provides the comparator
that claim refers to: a scheduler that, on every round, builds the
classic Quincy flow network

    tasks -> (preferred machines | rack aggregators | cluster) -> sink
          -> unscheduled

and solves a min-cost flow (via networkx's successive-shortest-path
implementation).  Costs encode data locality (free on a replica holder,
progressively more expensive per locality level) and a high price for
leaving a task unscheduled; machine capacities come from memory-defined
slots, as in the original system.

Simplifications vs. the real Quincy: no preemption (consistent with the
rest of this reproduction), slot capacities instead of Quincy's
min-flow bounds, and one global round per invocation instead of
incremental flow updates.  The point of including it is (a) a
locality-optimal baseline and (b) the Table 7-style comparison of
per-round decision latency against Tetris's greedy matching
(`benchmarks/test_flow_network.py`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.schedulers.base import Placement, Scheduler
from repro.schedulers.stage_index import StageIndex
from repro.workload.job import Job
from repro.workload.task import Task, TaskState

__all__ = ["FlowNetworkScheduler"]

#: arc costs per locality level (scaled integers; nx wants ints)
COST_NODE_LOCAL = 0
COST_RACK_LOCAL = 5
COST_CLUSTER = 10
COST_UNSCHEDULED = 100


class FlowNetworkScheduler(Scheduler):
    """Min-cost-flow task assignment with memory-defined slot capacities.

    Parameters
    ----------
    slot_mem_gb:
        Slot size used for machine capacities (as in Quincy's cluster).
    max_tasks_per_round:
        Cap on runnable tasks entered into one flow problem; the network
        (and the solve time) grows with this — which is precisely the
        scalability story the benchmark measures.
    """

    name = "flow-network"

    def __init__(
        self,
        slot_mem_gb: float = 2.0,
        max_tasks_per_round: int = 500,
    ):
        super().__init__()
        if slot_mem_gb <= 0:
            raise ValueError("slot size must be positive")
        if max_tasks_per_round <= 0:
            raise ValueError("max_tasks_per_round must be positive")
        self.slot_mem_gb = slot_mem_gb
        self.max_tasks_per_round = max_tasks_per_round
        self.index = StageIndex()
        self._slots_free: Dict[int, int] = {}
        self._slots_by_task: Dict[int, int] = {}

    # -- wiring / callbacks -----------------------------------------------
    def bind(self, cluster, estimator=None, tracker=None) -> None:
        super().bind(cluster, estimator=estimator, tracker=tracker)
        self._slots_free = {
            m.machine_id: max(
                1, int(m.capacity.get("mem") // self.slot_mem_gb)
            )
            for m in cluster.machines
        }

    def on_job_arrival(self, job: Job, time: float) -> None:
        super().on_job_arrival(job, time)
        self.index.add_job(job)

    def on_stage_released(self, stage, time: float) -> None:
        self.index.add_stage(stage)

    def _release_slots(self, task: Task, machine_id) -> None:
        slots = self._slots_by_task.pop(task.task_id, 0)
        if machine_id is not None:
            self._slots_free[machine_id] += slots

    def on_task_finished(self, task: Task, time: float) -> None:
        super().on_task_finished(task, time)
        self.index.forget(task)
        self._release_slots(task, task.machine_id)

    def on_task_failed(self, task: Task, time: float) -> None:
        machine_id = task.machine_id
        super().on_task_failed(task, time)
        self._release_slots(task, machine_id)

    # -- the flow network -------------------------------------------------
    def _runnable_tasks(self) -> List[Task]:
        tasks: List[Task] = []
        for job in self.runnable_jobs():
            for stage in self.index.indexed_stages(job):
                for task in stage.tasks:
                    if (
                        task.state is TaskState.RUNNABLE
                        and task.task_id not in self.index._claimed
                    ):
                        tasks.append(task)
                        if len(tasks) >= self.max_tasks_per_round:
                            return tasks
        return tasks

    def _task_slots(self, task: Task) -> int:
        mem = self.estimated_demands(task).get("mem")
        return max(1, math.ceil(mem / self.slot_mem_gb))

    def build_network(self, tasks: List[Task]) -> nx.DiGraph:
        """The Quincy graph for one round (exposed for benchmarking)."""
        graph = nx.DiGraph()
        topo = self.cluster.topology
        demand_total = len(tasks)
        graph.add_node("sink", demand=demand_total)
        graph.add_node("unsched", demand=0)
        graph.add_edge("unsched", "sink", capacity=demand_total, weight=0)
        graph.add_node("cluster", demand=0)
        for rack in range(topo.num_racks):
            graph.add_node(f"rack{rack}", demand=0)
            graph.add_edge(
                "cluster", f"rack{rack}", capacity=demand_total, weight=0
            )
        for machine in self.cluster.machines:
            node = f"m{machine.machine_id}"
            free = self._slots_free[machine.machine_id]
            graph.add_node(node, demand=0)
            rack = topo.rack_of(machine.machine_id)
            graph.add_edge(f"rack{rack}", node, capacity=demand_total,
                           weight=0)
            graph.add_edge(node, "sink", capacity=max(free, 0), weight=0)
        for task in tasks:
            node = f"t{task.task_id}"
            graph.add_node(node, demand=-1)
            graph.add_edge(node, "unsched", capacity=1,
                           weight=COST_UNSCHEDULED)
            graph.add_edge(node, "cluster", capacity=1, weight=COST_CLUSTER)
            preferred = {
                loc for inp in task.inputs for loc in inp.locations
            }
            for machine_id in preferred:
                if 0 <= machine_id < self.cluster.num_machines:
                    graph.add_edge(
                        node, f"m{machine_id}", capacity=1,
                        weight=COST_NODE_LOCAL,
                    )
            racks = {topo.rack_of(m) for m in preferred
                     if 0 <= m < self.cluster.num_machines}
            for rack in racks:
                graph.add_edge(node, f"rack{rack}", capacity=1,
                               weight=COST_RACK_LOCAL)
        return graph

    def _extract_assignments(
        self, tasks: List[Task], flow: Dict
    ) -> List[Tuple[Task, int]]:
        """Trace each task's unit of flow to the machine it reaches."""
        # remaining unit-capacity through aggregator nodes per machine
        machine_take: Dict[int, int] = {
            m.machine_id: flow[f"m{m.machine_id}"].get("sink", 0)
            for m in self.cluster.machines
        }
        assignments: List[Tuple[Task, int]] = []
        direct_pool: List[Task] = []
        for task in tasks:
            out = flow[f"t{task.task_id}"]
            direct = [
                int(node[1:])
                for node, units in out.items()
                if units > 0 and node.startswith("m")
            ]
            if direct:
                assignments.append((task, direct[0]))
                machine_take[direct[0]] -= 1
            elif (
                out.get("cluster", 0) > 0
                or any(
                    units > 0 and node.startswith("rack")
                    for node, units in out.items()
                )
            ):
                direct_pool.append(task)
        # tasks routed through aggregators take any machine with flow left
        for task in direct_pool:
            for machine_id, take in machine_take.items():
                if take > 0:
                    assignments.append((task, machine_id))
                    machine_take[machine_id] -= 1
                    break
        return assignments

    def schedule(
        self, time: float, machine_ids: Optional[List[int]] = None
    ) -> List[Placement]:
        tasks = self._runnable_tasks()
        if not tasks:
            return []
        graph = self.build_network(tasks)
        try:
            flow = nx.min_cost_flow(graph)
        except nx.NetworkXUnfeasible:  # pragma: no cover - guarded above
            return []
        placements: List[Placement] = []
        for task, machine_id in self._extract_assignments(tasks, flow):
            slots = self._task_slots(task)
            if self._slots_free[machine_id] < slots:
                continue
            booked = self.booked_demands(task, machine_id)
            self.index.claim(task)
            self._slots_free[machine_id] -= slots
            self._slots_by_task[task.task_id] = slots
            placements.append(Placement(task, machine_id, booked))
        return placements
