"""Capacity scheduler (Hadoop/Yahoo!): queues with capacity shares.

Jobs are assigned to queues; each queue is guaranteed a share of the
cluster's memory-defined slots.  The next free slot goes to the
most-underserved queue, and *within* a queue jobs are served FIFO.  Like
the Fair scheduler, only memory slots are checked — CPU, disk and network
are over-allocated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.schedulers.base import Placement
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.workload.job import Job

__all__ = ["CapacityScheduler"]


class CapacityScheduler(SlotFairScheduler):
    """Queue-capacity scheduling over memory slots.

    Parameters
    ----------
    num_queues:
        Queues with equal capacity shares; jobs are assigned round-robin
        (a stand-in for per-user/organization queues).
    queue_shares:
        Optional explicit shares (normalized internally); overrides
        ``num_queues``.
    """

    name = "capacity"

    def __init__(
        self,
        slot_mem_gb: float = 2.0,
        num_queues: int = 4,
        queue_shares: Optional[Sequence[float]] = None,
    ):
        super().__init__(slot_mem_gb=slot_mem_gb)
        if queue_shares is not None:
            total = float(sum(queue_shares))
            if total <= 0 or any(s < 0 for s in queue_shares):
                raise ValueError("queue shares must be non-negative, sum > 0")
            self.queue_shares = [s / total for s in queue_shares]
        else:
            if num_queues <= 0:
                raise ValueError("need at least one queue")
            self.queue_shares = [1.0 / num_queues] * num_queues
        self._queue_of_job: Dict[int, int] = {}
        self._next_queue = 0
        self._slots_used_by_queue: List[int] = [0] * len(self.queue_shares)

    # -- queue assignment ---------------------------------------------------
    def on_job_arrival(self, job: Job, time: float) -> None:
        super().on_job_arrival(job, time)
        self._queue_of_job[job.job_id] = self._next_queue
        self._next_queue = (self._next_queue + 1) % len(self.queue_shares)

    def on_task_finished(self, task, time: float) -> None:
        slots = self._slots_by_task.get(task.task_id, 0)
        queue = self._queue_of_job.get(task.job.job_id)
        if queue is not None:
            self._slots_used_by_queue[queue] -= slots
        super().on_task_finished(task, time)
        if task.job.is_finished:
            self._queue_of_job.pop(task.job.job_id, None)

    def on_task_failed(self, task, time: float) -> None:
        slots = self._slots_by_task.get(task.task_id, 0)
        queue = self._queue_of_job.get(task.job.job_id)
        if queue is not None:
            self._slots_used_by_queue[queue] -= slots
        super().on_task_failed(task, time)

    # -- ordering: most-underserved queue, FIFO within the queue ------------
    def _job_order(self) -> List[Job]:
        jobs = self.runnable_jobs()
        total = self.total_slots()

        def key(job: Job):
            queue = self._queue_of_job[job.job_id]
            guaranteed = self.queue_shares[queue] * total
            # deficit of the queue first (descending), then FIFO
            deficit = guaranteed - self._slots_used_by_queue[queue]
            return (-deficit, job.arrival_time, job.job_id)

        return sorted(jobs, key=key)

    def schedule(
        self, time: float, machine_ids: Optional[List[int]] = None
    ) -> List[Placement]:
        placements = super().schedule(time, machine_ids)
        for placement in placements:
            queue = self._queue_of_job[placement.task.job.job_id]
            self._slots_used_by_queue[queue] += self._slots_by_task[
                placement.task.task_id
            ]
        return placements
