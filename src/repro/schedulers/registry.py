"""Name-keyed scheduler construction, shared by the CLI and ``repro.exec``.

A :class:`~repro.exec.spec.RunSpec` describes its scheduler as a *name*
plus a *knob dict* so the spec stays picklable and serializable — the
class object and its config are resolved here, on whichever side of a
process boundary the run actually executes.  The CLI's ``SCHEDULERS``
mapping re-exports :data:`SCHEDULER_REGISTRY` for backward
compatibility.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.schedulers.base import Scheduler
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.flow_network import FlowNetworkScheduler
from repro.schedulers.packing_only import PackingOnlyScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.srtf import SRTFScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler

__all__ = ["SCHEDULER_REGISTRY", "build_scheduler", "scheduler_names"]

#: canonical name -> zero-argument scheduler class
SCHEDULER_REGISTRY: Dict[str, Callable[[], Scheduler]] = {
    "tetris": TetrisScheduler,
    "slot-fair": SlotFairScheduler,
    "capacity": CapacityScheduler,
    "drf": DRFScheduler,
    "fifo": FifoScheduler,
    "flow-network": FlowNetworkScheduler,
    "srtf-only": SRTFScheduler,
    "packing-only": PackingOnlyScheduler,
}


def scheduler_names() -> list:
    return sorted(SCHEDULER_REGISTRY)


def build_scheduler(
    name: str, knobs: Optional[Mapping[str, object]] = None
) -> Scheduler:
    """Construct a scheduler from its registry name and optional knobs.

    Tetris knobs are the :class:`TetrisConfig` fields (``fairness_knob``,
    ``barrier_knob``, ``remote_penalty``, ...); other schedulers pass
    knobs straight to their constructor (all current baselines take
    none).
    """
    try:
        cls = SCHEDULER_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; choose from {scheduler_names()}"
        ) from None
    if not knobs:
        return cls()
    if name == "tetris":
        return TetrisScheduler(TetrisConfig(**dict(knobs)))
    return cls(**dict(knobs))
