"""FIFO: earliest-arrived job first, CPU+memory admission only."""

from __future__ import annotations

from typing import List, Optional

from repro.resources import ResourceVector
from repro.schedulers.base import Placement, Scheduler
from repro.schedulers.stage_index import StageIndex
from repro.workload.job import Job
from repro.workload.task import Task

__all__ = ["FifoScheduler"]

#: dimensions a CPU+memory scheduler actually checks before placing
CHECKED_DIMS = ("cpu", "mem")


def fits_on_dims(
    demand: ResourceVector, free: ResourceVector, dims=CHECKED_DIMS
) -> bool:
    """Partial-dimension admission check (what non-packing schedulers do)."""
    return all(demand.get(d) <= free.get(d) + 1e-9 for d in dims)


class FifoScheduler(Scheduler):
    """Jobs served strictly in arrival order.

    Checks only CPU and memory, so it over-allocates disk and network
    exactly like the slot-based schedulers the paper criticizes.
    """

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self.index = StageIndex()

    def on_job_arrival(self, job: Job, time: float) -> None:
        super().on_job_arrival(job, time)
        self.index.add_job(job)

    def on_stage_released(self, stage, time: float) -> None:
        self.index.add_stage(stage)

    def on_task_finished(self, task: Task, time: float) -> None:
        super().on_task_finished(task, time)
        self.index.forget(task)

    def _pick_task(
        self, job: Job, machine_id: int, time: float = 0.0
    ) -> Optional[Task]:
        return self.pick_task_with_locality(
            self.index, job, machine_id, time
        )

    def schedule(
        self, time: float, machine_ids: Optional[List[int]] = None
    ) -> List[Placement]:
        placements: List[Placement] = []
        jobs = sorted(
            self.runnable_jobs(), key=lambda j: (j.arrival_time, j.job_id)
        )
        if not jobs:
            return placements
        for machine_id in self.iter_machine_ids(machine_ids):
            free = self.cluster.machine(machine_id).free_clamped()
            while True:
                placed = False
                for job in jobs:
                    task = self._pick_task(job, machine_id, time)
                    if task is None:
                        continue
                    booked = self.booked_demands(task, machine_id)
                    if not fits_on_dims(booked, free):
                        continue
                    self.index.claim(task)
                    placements.append(Placement(task, machine_id, booked))
                    free.sub_inplace(booked)
                    free = free.clamp_nonnegative()
                    placed = True
                    break
                if not placed:
                    break
        return placements
