"""Signature-grouped candidate index for the packing hot path.

The paper's estimation story (Section 4.1) is that peer tasks in a stage
have near-identical resource profiles — that is what makes one
representative score per stage meaningful.  This module turns the same
observation into a caching structure: runnable tasks are grouped by a
*(stage, placement-adjusted demand signature)*, where the signature
captures everything the packing math can see about a task —

- the stage it belongs to,
- its estimated demand vector (byte-exact), and
- its input structure: each input's size and replica locations, in
  order (the locality/remote-input signature).

Two tasks with equal signatures produce byte-identical booked vectors,
normalized demand rows and remote flags on **every** machine, so the
pack cache is shared by the whole group: when a placed task's successor
representative comes from the same group — the common case, since stages
release waves of statistical peers — its pack costs a dict hit instead
of an estimator call plus vector arithmetic.  Machines are collapsed the
same way: a pack depends on the machine only through its capacity vector
and through *which* of the signature's inputs are replica-local to it,
so the cache key is ``(signature, capacity class, local-input pattern)``
— on a homogeneous cluster a no-input group computes its pack **once**
for the whole cluster rather than once per machine.
Tasks whose inputs live in different places never share a signature (the
locations are part of it), so locality-sensitive decisions are never
cross-contaminated.

Cache validity follows the signature: entries survive task completions
under a stable estimator (nothing they depend on moved), and are dropped
when a stage's inputs are re-pinned at shuffle resolution or when an
unstable estimator revises demands (a completion can move every peer
mean, so the whole index flushes).

:class:`MachineView` is the per-machine consumer: one fill loop's
candidate state laid out as fixed two-slot blocks per stage (slot 0 the
locality-preferred representative, slot 1 the stage-queue front), so a
placement refreshes exactly one stage's block instead of re-gathering
every stage, and each loop iteration reduces to numpy passes over the
persistent arrays.  Missing pack rows for a machine are computed in one
batched numpy normalization over all signature groups at view-build
time (:meth:`CandidateIndex.warm`).  Batching is per machine by
construction: fits and alignment are always taken against one machine's
free/capacity vector, so a machines × groups grid has no shared scoring
axis — cross-machine reuse happens through the persistent
``(signature, machine)`` cache instead, and the dirty-machine contract
(see ``Scheduler.consume_dirty_machines``) already skips machines whose
free vector did not change.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.resources import EPSILON, ResourceVector
from repro.workload.stage import Stage
from repro.workload.task import Task

__all__ = ["CandidateIndex", "MachineView", "signature_of"]

#: (stage_id, estimate bytes, ((input size, replica locations), ...))
Signature = Tuple[int, bytes, Tuple[Tuple[float, Tuple[int, ...]], ...]]

#: a cached pack: (booked vector, masked capacity-normalized row, remote?)
PackEntry = Tuple[ResourceVector, np.ndarray, bool]

#: below this many rows, batched numpy fills cost more than direct row
#: writes (both produce byte-identical arrays — purely a speed cutover)
_BATCH_THRESHOLD = 8

#: sentinel for "not resolved yet" in the round table's rep cache
#: (None is a valid resolution: the stage queue may be empty)
_UNSET = object()


def signature_of(task: Task, estimate: ResourceVector) -> Signature:
    """The task's demand signature under the given estimate.

    Byte-exact on the estimate and exhaustive on the input structure:
    everything ``booked_demands`` and ``remote_input_mb`` can depend on
    for any machine is folded in, so equal signatures imply identical
    packing behavior everywhere.
    """
    inputs = tuple(
        (float(inp.size_mb), tuple(inp.locations)) for inp in task.inputs
    )
    return (task.stage.stage_id, estimate.data.tobytes(), inputs)


class CandidateIndex:
    """Persistent signature-grouped pack cache with group bookkeeping."""

    def __init__(self) -> None:
        self._sig_of_task: Dict[int, Signature] = {}
        self._stage_sigs: Dict[int, Set[Signature]] = {}
        #: sig -> ({machine pack key -> pack}, {machine_id -> pack}).
        #: The first dict holds one computed pack per machine
        #: *equivalence class* — capacity class for input-free groups,
        #: else (capacity class, local-input bitmask), see
        #: :meth:`_pack_key`.  The second aliases machines straight to
        #: their class's pack so repeat lookups skip the key derivation.
        self._packs: Dict[
            Signature, Tuple[Dict[object, PackEntry], Dict[int, PackEntry]]
        ] = {}
        #: machine_id -> capacity equivalence class (byte-equal vectors)
        self._machine_class: List[int] = []
        self.single_capacity_class = False
        #: plain-int effectiveness counters, always maintained; the
        #: scheduler mirrors them into obs instruments via set_instruments
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
        }
        self._estimate: Optional[Callable[[Task], ResourceVector]] = None
        self._booked: Optional[Callable[[Task, int], ResourceVector]] = None
        self._cluster = None
        self._dims_mask: Optional[np.ndarray] = None
        self._m_hits = None
        self._m_misses = None
        self._m_invalidations = None
        self._m_groups = None
        self._synced_hits = 0
        self._synced_misses = 0

    def bind(
        self,
        estimate_fn: Callable[[Task], ResourceVector],
        booked_fn: Callable[[Task, int], ResourceVector],
        cluster,
        dims_mask: np.ndarray,
    ) -> None:
        """Wire the estimator/booking callbacks; drops all cached state."""
        self._estimate = estimate_fn
        self._booked = booked_fn
        self._cluster = cluster
        self._dims_mask = dims_mask
        classes: Dict[bytes, int] = {}
        self._machine_class = [
            classes.setdefault(m.capacity.data.tobytes(), len(classes))
            for m in cluster.machines
        ]
        self._sig_of_task.clear()
        self._stage_sigs.clear()
        self._packs.clear()
        #: single capacity class => packs (and therefore whole views for
        #: machines with no locality interaction) are machine-independent
        self.single_capacity_class = len(classes) <= 1

    def set_instruments(
        self, hits=None, misses=None, invalidations=None, groups=None
    ) -> None:
        """Attach obs metric handles (hit/miss counters, the labeled
        invalidation family, the live-group gauge).  Hit/miss counts are
        tallied as plain ints on the hot path and flushed to the
        instruments by :meth:`sync_instruments` (the scheduler calls it
        once per round); invalidations are counted at the event."""
        self._m_hits = hits
        self._m_misses = misses
        self._m_invalidations = invalidations
        self._m_groups = groups
        self._synced_hits = 0
        self._synced_misses = 0

    def sync_instruments(self) -> None:
        """Flush hit/miss tallies accumulated since the last flush into
        the obs counters, and refresh the live-group gauge."""
        if self._m_hits is not None:
            delta = self.stats["hits"] - self._synced_hits
            if delta:
                self._m_hits.inc(delta)
                self._synced_hits = self.stats["hits"]
        if self._m_misses is not None:
            delta = self.stats["misses"] - self._synced_misses
            if delta:
                self._m_misses.inc(delta)
                self._synced_misses = self.stats["misses"]
        if self._m_groups is not None:
            self._m_groups.set(len(self._packs))

    # -- signatures ------------------------------------------------------------
    def signature(self, task: Task) -> Signature:
        sig = self._sig_of_task.get(task.task_id)
        if sig is None:
            sig = signature_of(task, self._estimate(task))
            self._sig_of_task[task.task_id] = sig
            self._stage_sigs.setdefault(task.stage.stage_id, set()).add(sig)
        return sig

    @property
    def num_groups(self) -> int:
        """Live signature groups (groups that have cached pack state)."""
        return len(self._packs)

    # -- pack lookup -----------------------------------------------------------
    def _pack_key(self, sig: Signature, task: Task, machine_id: int):
        """The machine's pack-equivalence key for one signature group.

        ``booked_demands`` and ``remote_input_mb`` see the machine only
        through its capacity vector and through which of the task's
        inputs have a replica on it, so machines agreeing on both share
        one cached pack.  Input-free groups reduce to the capacity class
        alone — one pack per class for the whole cluster.
        """
        cls = self._machine_class[machine_id]
        if not sig[2]:
            return cls
        pattern = 0
        for bit, inp in enumerate(task.inputs):
            if machine_id in inp.locations:  # TaskInput.is_local_to, inlined
                pattern |= 1 << bit
        return (cls, pattern)

    def _compute_pack(self, task: Task, machine_id: int) -> PackEntry:
        booked = self._booked(task, machine_id)
        norm = self._normalize_row(
            booked.data, self._cluster.machine(machine_id).capacity.data
        )
        return (booked, norm, task.remote_input_mb(machine_id) > 0)

    def _normalize_row(self, row: np.ndarray, cap: np.ndarray) -> np.ndarray:
        """Masked, capacity-normalized demand row — elementwise identical
        to ``masked(vec).normalized_by(capacity).data``."""
        mask = self._dims_mask
        if mask is not None and not mask.all():
            row = np.where(mask, row, 0.0)
        out = np.zeros_like(row)
        nz = cap > EPSILON
        out[nz] = row[nz] / cap[nz]
        return out

    def pack(self, task: Task, machine_id: int) -> PackEntry:
        """The task's group pack for one machine, computed at most once
        per (signature, machine equivalence class)."""
        sig = self.signature(task)
        group = self._packs.get(sig)
        if group is None:
            group = self._packs[sig] = ({}, {})
        by_class, by_machine = group
        entry = by_machine.get(machine_id)
        if entry is None:
            key = self._pack_key(sig, task, machine_id)
            entry = by_class.get(key)
            if entry is None:
                self.stats["misses"] += 1
                entry = by_class[key] = self._compute_pack(task, machine_id)
            else:
                self.stats["hits"] += 1
            by_machine[machine_id] = entry
        else:
            self.stats["hits"] += 1
        return entry

    def warm(self, machine_id: int, tasks: Sequence[Task]) -> None:
        """Fill every missing pack for ``tasks`` on ``machine_id`` with
        one batched numpy normalization — the "all groups at once" path a
        view build uses before its per-row lookups all hit."""
        self.packs_for(machine_id, tasks)

    def packs_for(
        self, machine_id: int, tasks: Sequence[Task]
    ) -> List[PackEntry]:
        """One pack per task, resolved in a single memo-first pass.

        Cache hits (including class-to-machine aliasing) resolve with
        one dict walk each; the distinct missing ``(signature, key)``
        pairs are then computed together in one batched numpy
        normalization and stored for every machine in their class."""
        entries: List[Optional[PackEntry]] = [None] * len(tasks)
        missing: List[Tuple[Signature, object, Task, List[int]]] = []
        miss_pos: Dict[Tuple[Signature, object], int] = {}
        hits = 0
        for pos, task in enumerate(tasks):
            sig = self.signature(task)
            group = self._packs.get(sig)
            if group is None:
                group = self._packs[sig] = ({}, {})
            by_class, by_machine = group
            entry = by_machine.get(machine_id)
            if entry is None:
                key = self._pack_key(sig, task, machine_id)
                entry = by_class.get(key)
                if entry is not None:
                    by_machine[machine_id] = entry
                    hits += 1
                else:
                    slot = miss_pos.get((sig, key))
                    if slot is None:
                        miss_pos[(sig, key)] = len(missing)
                        missing.append((sig, key, task, [pos]))
                    else:
                        missing[slot][3].append(pos)
                    continue
            else:
                hits += 1
            entries[pos] = entry
        self.stats["hits"] += hits
        if not missing:
            return entries
        booked = [self._booked(task, machine_id) for _, _, task, _ in missing]
        rows = np.stack([b.data for b in booked])
        mask = self._dims_mask
        if mask is not None and not mask.all():
            rows = np.where(mask, rows, 0.0)
        cap = self._cluster.machine(machine_id).capacity.data
        nz = cap > EPSILON
        norms = np.zeros_like(rows)
        norms[:, nz] = rows[:, nz] / cap[nz]
        for k, (sig, key, task, positions) in enumerate(missing):
            by_class, by_machine = self._packs[sig]
            entry = (
                booked[k],
                norms[k].copy(),
                task.remote_input_mb(machine_id) > 0,
            )
            by_class[key] = entry
            by_machine[machine_id] = entry
            for pos in positions:
                entries[pos] = entry
        self.stats["misses"] += len(missing)
        return entries

    # -- invalidation ----------------------------------------------------------
    def _count_invalidation(self, scope: str, n: int = 1) -> None:
        self.stats["invalidations"] += n
        if self._m_invalidations is not None:
            self._m_invalidations.labels(scope=scope).inc(n)
        if self._m_groups is not None:
            self._m_groups.set(len(self._packs))

    def forget_task(self, task: Task) -> None:
        """A task completed under a *stable* estimator: its group packs
        stay valid for every peer, only the per-task mapping is dropped
        (and the whole stage's groups once the stage drains)."""
        self._sig_of_task.pop(task.task_id, None)
        if task.stage.is_finished():
            stage_id = task.stage.stage_id
            for sig in self._stage_sigs.pop(stage_id, ()):
                self._packs.pop(sig, None)
            if self._m_groups is not None:
                self._m_groups.set(len(self._packs))

    def invalidate_stage(self, stage: Stage) -> int:
        """Shuffle resolution re-pinned the stage's inputs: every one of
        its signatures (computed from the old inputs) is stale.  Returns
        the number of groups dropped."""
        dropped = 0
        for sig in self._stage_sigs.pop(stage.stage_id, ()):
            if self._packs.pop(sig, None) is not None:
                dropped += 1
        for task in stage.tasks:
            self._sig_of_task.pop(task.task_id, None)
        if dropped:
            self._count_invalidation("shuffle", dropped)
        return dropped

    def clear(self) -> bool:
        """Unstable-estimator flush: a completion can move every peer
        mean, so both the signatures and the packs are stale.  Returns
        whether anything was dropped."""
        had = bool(self._packs) or bool(self._sig_of_task)
        self._sig_of_task.clear()
        self._stage_sigs.clear()
        self._packs.clear()
        if had:
            self._count_invalidation("full")
        return had

    # -- per-round / per-machine fill-loop state -------------------------------
    def round_table(
        self,
        stage_index,
        jobs: Sequence,
        remaining_of: Callable[[object], float],
        barrier_stages: Set[int],
    ) -> "RoundTable":
        """The round-constant half of every machine view, built once per
        scheduling round and shared by all machines.

        Claims only *remove* candidates mid-round, so no stage can appear
        or gain candidates after this snapshot; a stage that drains simply
        resolves to empty slots on later machines.  SRTF scores and
        barrier membership are likewise fixed for the round (nothing
        starts or finishes while the scheduler is deciding).
        """
        blocks: List[Tuple[Stage, float]] = []
        for job in jobs:
            remaining = remaining_of(job)
            for stage in stage_index.indexed_stages(job):
                blocks.append((stage, remaining))
        return RoundTable(blocks, barrier_stages)

    def shared_view(
        self,
        table: "RoundTable",
        stage_index,
        machine_id: int,
        num_dims: int,
    ) -> "MachineView":
        """The round's cached machine-independent view, for machines with
        *no* locality pool in any round stage on a single-capacity-class
        cluster.

        Such a machine's view content is fully machine-independent: its
        locality slots are all empty, the queue-front representatives are
        shared round state, and every pack resolves to the
        ``(capacity class, empty local-input pattern)`` cache entry.  One
        view therefore serves every such machine verbatim; it only goes
        stale when a claim moves some stage's queue front
        (``table.rep_gen``), and the caller re-syncs the generation after
        a fill loop that kept the view fresh through its own refreshes.
        The view owns dedicated scratch arrays so interleaved per-machine
        view builds cannot clobber it.
        """
        view = table._shared_view
        if view is not None and table._shared_gen == table.rep_gen:
            view.machine_id = machine_id
            return view
        view = self.build_view(
            table, stage_index, machine_id, num_dims, shared=True
        )
        table._shared_view = view
        table._shared_gen = table.rep_gen
        return view

    def patched_view(
        self,
        table: "RoundTable",
        stage_index,
        machine_id: int,
        num_dims: int,
        special_sis: Sequence[int],
        proxy_id: int,
    ) -> "MachineView":
        """A machine's view assembled as "shared view + per-stage patches".

        ``machine_id`` has a locality pool only for the stages in
        ``special_sis``; every other stage's slots (local slot empty,
        queue-front rep with the empty local-input pack pattern) are
        byte-identical to the shared no-locality view, so they are block
        copied and only the special stages re-resolve their
        representatives and packs for this machine.  ``proxy_id`` must be
        a machine with no locality pool anywhere this round — the shared
        view is (re)built through it so its content stays canonical.
        """
        base = self.shared_view(table, stage_index, proxy_id, num_dims)
        view = MachineView(self, table, machine_id, num_dims)
        np.copyto(view.booked_mat, base.booked_mat)
        np.copyto(view.norm_mat, base.norm_mat)
        np.copyto(view.remote, base.remote)
        view.active[:] = base.active
        view.tasks[:] = base.tasks
        view.booked[:] = base.booked
        stages = table.stages
        for si in special_sis:
            stage = stages[si]
            local = stage_index.local_candidate(stage, machine_id)
            other = table.any_rep_for(si, stage, stage_index)
            if other is local:
                other = None
            view.set_slot(2 * si, local)
            view.set_slot(2 * si + 1, other)
        return view

    def build_view(
        self,
        table: "RoundTable",
        stage_index,
        machine_id: int,
        num_dims: int,
        shared: bool = False,
    ) -> "MachineView":
        """One machine's candidate state for a fill loop: resolve each
        stage's representatives (the stage-queue front is cached on the
        round table — it is machine-independent and claims invalidate
        it per stage), look up all pack rows in one memo-first pass with
        the misses batch-normalized together, then fill the slot arrays
        with stacked numpy assignments.  Small views (the common case
        for engine-driven heartbeats, where one dirty machine sees a
        handful of stages) skip the batch machinery and write their few
        rows directly."""
        slot_tasks: List[Optional[Task]] = [None] * table.num_rows
        rows: List[int] = []
        for si, stage in enumerate(table.stages):
            local = stage_index.local_candidate(stage, machine_id)
            other = table.any_rep_for(si, stage, stage_index)
            if other is local:
                other = None
            if local is not None:
                slot_tasks[2 * si] = local
                rows.append(2 * si)
            if other is not None:
                slot_tasks[2 * si + 1] = other
                rows.append(2 * si + 1)
        view = MachineView(
            self,
            table,
            machine_id,
            num_dims,
            scratch=table.shared_scratch(num_dims) if shared else None,
        )
        if len(rows) <= _BATCH_THRESHOLD:
            for i in rows:
                view.set_slot(i, slot_tasks[i])
        else:
            packs = self.packs_for(
                machine_id, [slot_tasks[i] for i in rows]
            )
            view.fill_packed(rows, slot_tasks, packs)
        return view


class RoundTable:
    """Stage blocks in canonical order plus the per-row round constants.

    ``remaining`` holds the per-row SRTF scores (the same doubles the
    scalar path collects); ``barrier`` is the per-row barrier flag;
    ``stage_row`` maps a stage to its block's base row.  Views
    reference these directly and never mutate them.

    Two further pieces of cross-machine state live here:

    - each stage's queue-front representative (``any_candidate``) is
      machine-independent and round-stable except when a claim removes
      it, so it is resolved once for the whole round and invalidated per
      stage at the claim point (:meth:`invalidate_stage_rep`);
    - the scratch arrays backing :class:`MachineView`'s per-row numpy
      state.  Views within a round are built and consumed strictly one
      at a time, so they share one allocation — building a new view from
      this table invalidates the arrays of the previous one.
    """

    __slots__ = (
        "stages",
        "remaining",
        "barrier",
        "stage_row",
        "num_rows",
        "rep_gen",
        "_any_rep",
        "_scratch",
        "_shared_view",
        "_shared_gen",
        "_shared_scratch",
    )

    def __init__(
        self, blocks: List[Tuple[Stage, float]], barrier_stages: Set[int]
    ) -> None:
        self.stages: List[Stage] = [stage for stage, _ in blocks]
        # SRTF scores as a float64 array: the fill loop gathers the kept
        # rows with one fancy index instead of a per-row list walk.  The
        # values are the exact Python floats the scalar path collects —
        # float64 round-trips them losslessly.
        self.remaining: np.ndarray = np.fromiter(
            (remaining for _, remaining in blocks for _ in (0, 1)),
            dtype=np.float64,
            count=2 * len(blocks),
        )
        self.barrier = np.fromiter(
            (
                stage.stage_id in barrier_stages
                for stage, _ in blocks
                for _ in (0, 1)
            ),
            dtype=bool,
            count=2 * len(blocks),
        )
        self.stage_row: Dict[int, int] = {
            stage.stage_id: 2 * si for si, (stage, _) in enumerate(blocks)
        }
        self.num_rows = 2 * len(blocks)
        #: bumped whenever a claim drops a cached queue-front rep; the
        #: shared no-locality view is valid only at the generation it was
        #: built (or last refreshed) at
        self.rep_gen = 0
        self._any_rep: List[object] = [_UNSET] * len(blocks)
        self._scratch: Optional[Tuple[np.ndarray, ...]] = None
        self._shared_view: Optional["MachineView"] = None
        self._shared_gen = -1
        self._shared_scratch: Optional[Tuple[np.ndarray, ...]] = None

    def any_rep_for(self, si: int, stage: Stage, stage_index):
        """Stage ``si``'s queue-front representative, resolved at most
        once per round between claims on that stage."""
        rep = self._any_rep[si]
        if rep is _UNSET:
            rep = self._any_rep[si] = stage_index.any_candidate(stage)
        return rep

    def invalidate_stage_rep(self, stage_id: int) -> None:
        """A claim removed a task from ``stage_id``'s queue: its cached
        front is stale for every machine not yet visited this round."""
        base = self.stage_row.get(stage_id)
        if base is not None:
            self._any_rep[base >> 1] = _UNSET
            self.rep_gen += 1

    def scratch(self, num_dims: int) -> Tuple[np.ndarray, ...]:
        """The shared (booked, norm, remote) arrays for this round's
        views — valid for one view at a time."""
        s = self._scratch
        if s is None:
            s = self._scratch = (
                np.zeros((self.num_rows, num_dims)),
                np.zeros((self.num_rows, num_dims)),
                np.zeros(self.num_rows, dtype=bool),
            )
        return s

    def shared_scratch(self, num_dims: int) -> Tuple[np.ndarray, ...]:
        """Dedicated arrays for the shared no-locality view, so regular
        per-machine view builds never clobber its rows."""
        s = self._shared_scratch
        if s is None:
            s = self._shared_scratch = (
                np.zeros((self.num_rows, num_dims)),
                np.zeros((self.num_rows, num_dims)),
                np.zeros(self.num_rows, dtype=bool),
            )
        return s


class MachineView:
    """Fixed two-slot-per-stage candidate arrays for one fill loop.

    Row ``2*si`` holds stage ``si``'s locality-preferred representative,
    row ``2*si + 1`` the stage-queue front when distinct; inactive slots
    are masked out.  Active rows in ascending order reproduce exactly
    the scalar gather order (jobs, then stages, local before any), so
    scores — and the argmax — match the reference bit for bit.
    """

    __slots__ = (
        "index",
        "table",
        "machine_id",
        "tasks",
        "booked",
        "booked_mat",
        "norm_mat",
        "remaining",
        "remote",
        "barrier",
        "active",
    )

    def __init__(
        self,
        index: CandidateIndex,
        table: RoundTable,
        machine_id: int,
        num_dims: int,
        scratch: Optional[Tuple[np.ndarray, ...]] = None,
    ) -> None:
        n = table.num_rows
        self.index = index
        self.table = table
        self.machine_id = machine_id
        self.tasks: List[Optional[Task]] = [None] * n
        self.booked: List[Optional[ResourceVector]] = [None] * n
        # per-row numpy state borrowed from the table's scratch buffers
        # (views are strictly sequential within a round); stale rows are
        # never read because ``active`` is fresh and every activation
        # rewrites its row first
        self.booked_mat, self.norm_mat, self.remote = (
            scratch if scratch is not None else table.scratch(num_dims)
        )
        # round constants, shared (read-only) with every other view
        self.remaining = table.remaining
        self.barrier = table.barrier
        self.active = np.zeros(n, dtype=bool)

    def fill_slots(self, slot_tasks: Sequence[Optional[Task]]) -> None:
        """Populate every resolved slot — with two stacked assignments
        instead of one row write per slot once there are enough rows for
        the numpy batch setup to pay for itself."""
        rows = [i for i, task in enumerate(slot_tasks) if task is not None]
        if len(rows) <= _BATCH_THRESHOLD:
            for i in rows:
                self.set_slot(i, slot_tasks[i])
            return
        packs = self.index.packs_for(
            self.machine_id, [slot_tasks[i] for i in rows]
        )
        self.fill_packed(rows, slot_tasks, packs)

    def fill_packed(
        self,
        rows: Sequence[int],
        slot_tasks: Sequence[Optional[Task]],
        packs: Sequence[PackEntry],
    ) -> None:
        """Write the already-resolved packs for ``rows`` in two stacked
        numpy assignments."""
        self.booked_mat[rows] = np.stack([p[0].data for p in packs])
        self.norm_mat[rows] = np.stack([p[1] for p in packs])
        self.remote[rows] = np.fromiter(
            (p[2] for p in packs), dtype=bool, count=len(rows)
        )
        self.active[rows] = True
        tasks = self.tasks
        booked = self.booked
        for i, p in zip(rows, packs):
            tasks[i] = slot_tasks[i]
            booked[i] = p[0]

    def set_slot(self, row: int, task: Optional[Task]) -> None:
        if task is None:
            self.active[row] = False
            self.tasks[row] = None
            self.booked[row] = None
            return
        booked, norm, remote = self.index.pack(task, self.machine_id)
        self.tasks[row] = task
        self.booked[row] = booked
        self.booked_mat[row] = booked.data
        self.norm_mat[row] = norm
        self.remote[row] = remote
        self.active[row] = True

    def active_rows(self) -> np.ndarray:
        return np.nonzero(self.active)[0]

    def refresh_stage(self, stage_index, stage: Stage) -> None:
        """Re-resolve one stage's representatives after a placement
        claimed the previous ones; every other block is untouched.  The
        table's cached queue-front for the stage is dropped first (the
        claim made it stale for every machine) and re-resolved here."""
        base = self.table.stage_row.get(stage.stage_id)
        if base is None:
            return
        self.table.invalidate_stage_rep(stage.stage_id)
        local = stage_index.local_candidate(stage, self.machine_id)
        other = self.table.any_rep_for(base >> 1, stage, stage_index)
        if other is local:
            other = None
        self.set_slot(base, local)
        self.set_slot(base + 1, other)
