"""The asyncio scheduler daemon: stage → commit → drive, under a watermark.

:class:`SchedulerService` wires a job source, an admission controller,
and a streaming :class:`~repro.sim.engine.Engine` into a long-lived
serving loop:

- a **producer** task reads the source and offers each arrival to the
  admission controller (token bucket + bounded queue);
- the **consumer** loop takes admitted arrivals in batches, *stages*
  them (validation + scheduler prewarm — no engine, cluster, or
  free-vector mutation of any kind), *commits* the staged batch into the
  engine, and *drives* the simulation forward.

Two correctness disciplines:

**Event-time watermark.**  The engine only ever advances *strictly
below* the latest committed arrival time (sources yield in event-time
order, so no future arrival can land behind the clock).  The instant
``T`` itself is processed only once an arrival later than ``T`` has been
committed (or the stream has ended) — a not-yet-committed arrival could
still tie with ``T``, and the batch engine would have handled that tie
in the same scheduling round.  This is what makes a no-drop streamed
replay **bit-identical** to the batch engine on the same trace.

**Tentative/authoritative separation.**  Staging builds a
:class:`StagedBatch` from already-admitted arrivals without touching
authoritative state; an aborted batch (validation failure, shutdown
drain) therefore has *nothing to roll back* — machine free vectors are
only ever changed by committed placements, and can never be
double-deducted by a rejected batch.  :func:`verify_free_vectors`
re-derives every machine's allocation from its running set after commits
to enforce exactly that invariant.
"""

from __future__ import annotations

import asyncio
import math
import warnings
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from time import monotonic, perf_counter
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.obs.registry import Histogram, LATENCY_BUCKETS, RollingWindow
from repro.serve.admission import AdmissionController
from repro.serve.sources import Arrival, JobSource
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.obs.registry import Registry

__all__ = [
    "ServeConfig",
    "ServeReport",
    "SchedulerService",
    "StagingError",
    "verify_free_vectors",
]


class StagingError(RuntimeError):
    """A batch failed validation while still tentative; nothing was
    committed, so the batch is dropped whole with no rollback needed."""


def verify_free_vectors(cluster: "Cluster") -> List[str]:
    """Re-derive every machine's allocation and check it against the
    booked state.  Returns human-readable violations (empty = clean).

    This is the double-deduction guard: if tentative batch state ever
    leaked into a machine's ``allocated`` vector (or a rollback
    subtracted twice), the sum over its actually-running tasks would no
    longer reproduce the bookkeeping.
    """
    issues: List[str] = []
    for machine in cluster.machines:
        recomputed = np.zeros_like(machine.allocated.data)
        for task in machine.running:
            recomputed += machine.placed_demands(task).data
        if not np.allclose(
            recomputed, machine.allocated.data, rtol=1e-9, atol=1e-6
        ):
            issues.append(
                f"machine {machine.machine_id}: allocated "
                f"{machine.allocated.data.tolist()} != sum of "
                f"{len(machine.running)} running tasks "
                f"{recomputed.tolist()}"
            )
        free = machine.capacity.data - machine.allocated.data
        if not np.allclose(
            machine.free().data, free, rtol=1e-9, atol=1e-6
        ):  # pragma: no cover - free() is defined as this difference
            issues.append(
                f"machine {machine.machine_id}: free vector drifted from "
                "capacity - allocated"
            )
    return issues


@dataclass(frozen=True)
class ServeConfig:
    """Service knobs.

    ``max_batch`` caps arrivals committed per consumer iteration;
    ``duration`` is a wall-clock cap on serving (None = run the stream
    out); ``drive_slice`` bounds engine steps between asyncio yields so
    pacing and admission stay live during long drives; ``verify_every``
    runs :func:`verify_free_vectors` after every N committed batches
    (0 disables); ``liveness_deadline`` is how many wall seconds the
    consumer may go without progress *while actively working* before
    :meth:`SchedulerService.health` reports it stalled (idle waiting on
    a paced stream never counts); ``window_seconds`` enables the
    rolling-window telemetry gauges (sliding placements/sec, latency
    quantiles, admission-reject rate) over that span — ``None`` (the
    default) keeps them off so an unobserved daemon pays nothing.
    """

    max_batch: int = 64
    duration: Optional[float] = None
    drive_slice: int = 512
    verify_every: int = 1
    liveness_deadline: Optional[float] = 30.0
    window_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.drive_slice < 1:
            raise ValueError("drive_slice must be >= 1")
        if self.verify_every < 0:
            raise ValueError("verify_every must be >= 0")
        if self.liveness_deadline is not None and self.liveness_deadline <= 0:
            raise ValueError("liveness_deadline must be positive")
        if self.window_seconds is not None and self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")


@dataclass(frozen=True)
class StagedBatch:
    """A validated, tentative batch: jobs held *outside* the engine."""

    jobs: Sequence  # materialized Job objects, event-time ordered
    min_time: float
    max_time: float


@dataclass
class ServeReport:
    """Everything a serving run learned, ready for ``--json``."""

    jobs_offered: int = 0
    jobs_admitted: int = 0
    jobs_committed: int = 0
    jobs_dropped_on_shutdown: int = 0
    jobs_aborted: int = 0
    jobs_finished: int = 0
    batches_committed: int = 0
    batches_aborted: int = 0
    placements: int = 0
    tasks_total: int = 0
    sim_time: float = 0.0
    wall_seconds: float = 0.0
    drive_seconds: float = 0.0
    invariant_checks: int = 0
    invariant_violations: int = 0
    #: placements evicted from a capped placement log before the latency
    #: scan saw them (their admission→placement latency was lost)
    latency_scan_misses: int = 0
    shutdown_reason: Optional[str] = None
    admission: Dict[str, object] = field(default_factory=dict)
    placement_latency: Dict[str, object] = field(default_factory=dict)
    staging_errors: List[str] = field(default_factory=list)

    @property
    def placements_per_sec(self) -> float:
        """Sustained scheduling throughput: placements per wall second
        spent *driving the engine* (excludes idle waiting on a paced or
        rate-limited stream)."""
        if self.drive_seconds <= 0:
            return 0.0
        return self.placements / self.drive_seconds

    @property
    def placements_per_wall_sec(self) -> float:
        """End-to-end throughput over the whole serving window,
        idle time included."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.placements / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": {
                "offered": self.jobs_offered,
                "admitted": self.jobs_admitted,
                "committed": self.jobs_committed,
                "dropped_on_shutdown": self.jobs_dropped_on_shutdown,
                "aborted": self.jobs_aborted,
                "finished": self.jobs_finished,
            },
            "batches": {
                "committed": self.batches_committed,
                "aborted": self.batches_aborted,
            },
            "placements": self.placements,
            "tasks_total": self.tasks_total,
            "placements_per_sec": self.placements_per_sec,
            "placements_per_wall_sec": self.placements_per_wall_sec,
            "sim_time": self.sim_time,
            "wall_seconds": self.wall_seconds,
            "drive_seconds": self.drive_seconds,
            "invariants": {
                "checks": self.invariant_checks,
                "violations": self.invariant_violations,
            },
            "shutdown_reason": self.shutdown_reason,
            "admission": self.admission,
            "placement_latency": self.placement_latency,
            "staging_errors": self.staging_errors,
        }


class SchedulerService:
    """The serving loop around a streaming engine.

    The engine must be constructed with ``jobs=[]`` — every job reaches
    it through :meth:`Engine.add_job` at batch commit.  ``registry``
    (optional) receives the service gauges: pending-queue depth,
    admission decisions, commit counts, placement-latency histogram,
    sustained placements/sec.
    """

    def __init__(
        self,
        engine: Engine,
        source: JobSource,
        admission: Optional[AdmissionController] = None,
        config: Optional[ServeConfig] = None,
        registry: Optional["Registry"] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if engine.jobs:
            raise ValueError(
                "a streaming engine starts empty; its jobs arrive "
                "through the service (got a pre-loaded engine)"
            )
        self.engine = engine
        self.source = source
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.config = config if config is not None else ServeConfig()
        self.report = ServeReport()
        self._clock = clock
        self._shutdown = False
        self._shutdown_reason: Optional[str] = None
        #: wall time each admitted job entered the queue (by job name),
        #: consumed when its first placement commits
        self._admit_wall: Dict[str, float] = {}
        #: placements already latency-scanned, counted against
        #: ``engine.num_placements`` so a capped log still scans
        #: incrementally (evictions are detected, not silently skipped)
        self._log_seen = 0
        self._latency_warned = False
        self._latency_hist = Histogram(LATENCY_BUCKETS)
        self._started_wall: Optional[float] = None
        #: what the consumer is doing right now: "init" | "waiting"
        #: (idle on the arrival queue) | "active" (staging/committing/
        #: driving) | "draining" | "done" — read by :meth:`health`
        self._phase = "init"
        self._last_progress = self._now()
        self._committed_max_time: Optional[float] = None
        window = self.config.window_seconds
        self._win_placements = (
            RollingWindow(window) if window is not None else None
        )
        self._win_latency = (
            RollingWindow(window) if window is not None else None
        )
        self._win_offered = (
            RollingWindow(window) if window is not None else None
        )
        self._win_rejected = (
            RollingWindow(window) if window is not None else None
        )
        #: rolling (wall time, {phase: (count, total, self)}) profiler
        #: checkpoints, so /debug/profile can report per-window phase
        #: rates; only fed when the engine carries a profiler AND the
        #: window gauges are on (an unobserved daemon pays nothing)
        self._profile_ring: deque = deque(maxlen=4096)
        self._m_depth = self._m_admission = self._m_committed = None
        self._m_batches = self._m_latency = self._m_pps = None
        self._m_invariants = None
        self._m_win_pps = self._m_win_latency = self._m_win_reject = None
        if registry is not None:
            self._register_metrics(registry)

    def _register_metrics(self, registry: "Registry") -> None:
        self._m_depth = registry.gauge(
            "repro_serve_queue_depth", "Admitted arrivals awaiting commit"
        )
        self._m_admission = registry.counter(
            "repro_serve_admission_total",
            "Admission decisions by outcome",
            labelnames=("decision",),
        )
        self._m_committed = registry.counter(
            "repro_serve_jobs_committed_total",
            "Jobs committed into the engine",
        )
        self._m_batches = registry.counter(
            "repro_serve_batches_total",
            "Consumer batches by outcome",
            labelnames=("outcome",),
        )
        self._m_latency = registry.histogram(
            "repro_serve_placement_latency_seconds",
            "Wall clock from admission to a job's first placement",
            buckets=LATENCY_BUCKETS,
        )
        self._m_pps = registry.gauge(
            "repro_serve_placements_per_sec",
            "Sustained placements per drive-wall second",
        )
        self._m_invariants = registry.counter(
            "repro_serve_invariant_violations_total",
            "Free-vector invariant violations detected after commits",
        )
        if self._win_placements is not None:
            self._m_win_pps = registry.gauge(
                "repro_serve_window_placements_per_sec",
                "Placements per second over the sliding window",
            )
            self._m_win_latency = registry.gauge(
                "repro_serve_window_placement_latency_seconds",
                "Sliding-window placement-latency quantiles",
                labelnames=("quantile",),
            )
            self._m_win_reject = registry.gauge(
                "repro_serve_window_admission_reject_rate",
                "Rejected fraction of offered arrivals over the "
                "sliding window",
            )

    def _now(self) -> float:
        # monotonic (not the event-loop clock) so the telemetry plane's
        # HTTP threads can call health()/status_snapshot() without a
        # running loop; asyncio's clock is monotonic-based anyway
        if self._clock is not None:
            return self._clock()
        return monotonic()

    def _touch(self) -> None:
        """Record consumer progress for the liveness deadline."""
        self._last_progress = self._now()

    def request_shutdown(self, reason: str = "requested") -> None:
        """Stop admitting and committing; in-flight (queued) arrivals are
        drained and dropped with accounting, committed jobs run out."""
        if not self._shutdown:
            self._shutdown = True
            self._shutdown_reason = reason

    # -- serving loop ------------------------------------------------------------
    async def serve(self) -> ServeReport:
        """Run the stream to completion (or shutdown); returns the report."""
        start_wall = perf_counter()
        self._started_wall = self._now()
        self._touch()
        self.engine.open_stream()
        self.engine.start()
        producer = asyncio.create_task(self._produce())
        watchdog = (
            asyncio.create_task(self._watchdog())
            if self.config.duration is not None
            else None
        )
        try:
            await self._consume()
        finally:
            for task in (producer, watchdog):
                if task is not None and not task.done():
                    task.cancel()
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
        # the stream is over: finish every committed job
        self._phase = "draining"
        self.engine.close_stream()
        await self._drive(float("inf"))
        self.engine.finalize()
        self._scan_placements()
        self._check_invariants()
        self._phase = "done"
        return self._finish_report(perf_counter() - start_wall)

    async def _watchdog(self) -> None:
        await asyncio.sleep(self.config.duration)
        self.request_shutdown("duration")

    async def _produce(self) -> None:
        try:
            async for arrival in self.source.arrivals():
                if self._shutdown:
                    break
                admitted = await self.admission.offer(arrival)
                if admitted:
                    self._admit_wall[arrival.job.name] = self._now()
                if self._win_offered is not None:
                    now = self._now()
                    self._win_offered.add(now)
                    if not admitted:
                        self._win_rejected.add(now)
                if self._m_admission is not None:
                    self._m_admission.labels(
                        decision="admitted" if admitted else "rejected"
                    ).inc()
                if self._m_depth is not None:
                    self._m_depth.set(self.admission.depth)
        finally:
            await self.admission.close()

    async def _consume(self) -> None:
        while True:
            self._phase = "waiting"
            batch = await self.admission.next_batch(self.config.max_batch)
            self._phase = "active"
            self._touch()
            if batch is None:
                break
            if self._m_depth is not None:
                self._m_depth.set(self.admission.depth)
            if self._shutdown:
                self.report.jobs_dropped_on_shutdown += len(batch)
                for arrival in batch:
                    self._admit_wall.pop(arrival.job.name, None)
                if self._m_batches is not None:
                    self._m_batches.labels(outcome="dropped").inc()
                continue
            try:
                staged = self._stage(batch)
            except StagingError as exc:
                # tentative state only: nothing reached the engine, the
                # cluster, or any machine's free vector — drop and go on
                self.report.batches_aborted += 1
                self.report.jobs_aborted += len(batch)
                self.report.staging_errors.append(str(exc))
                if self._m_batches is not None:
                    self._m_batches.labels(outcome="aborted").inc()
                continue
            self._commit(staged)
            # watermark: everything strictly before the newest committed
            # arrival is now safe to simulate
            await self._drive(staged.max_time, inclusive=False)
            if (
                self.config.verify_every
                and self.report.batches_committed % self.config.verify_every
                == 0
            ):
                self._check_invariants()
            self._update_window_gauges()

    # -- stage / commit / drive ---------------------------------------------------
    def _stage(self, batch: List[Arrival]) -> StagedBatch:
        """Validate a batch while it is still tentative.

        Raises :class:`StagingError` on any event-time violation; only a
        fully valid batch proceeds to commit.  The scheduler prewarm at
        the end is decision-neutral by contract (see
        :meth:`repro.schedulers.base.Scheduler.prewarm_job`).
        """
        floor = self.engine.now
        for arrival in batch:
            if arrival.time != arrival.job.arrival_time:
                raise StagingError(
                    f"arrival record for job {arrival.job.name!r} says "
                    f"t={arrival.time} but the job carries "
                    f"arrival_time={arrival.job.arrival_time}"
                )
            if arrival.time < floor:
                raise StagingError(
                    f"event-time violation: job {arrival.job.name!r} "
                    f"arrives at {arrival.time}, behind the watermark "
                    f"{floor}"
                )
            floor = arrival.time
        for arrival in batch:
            self.engine.scheduler.prewarm_job(arrival.job)
        return StagedBatch(
            jobs=[a.job for a in batch],
            min_time=batch[0].time,
            max_time=batch[-1].time,
        )

    def _commit(self, staged: StagedBatch) -> None:
        for job in staged.jobs:
            self.engine.add_job(job)
        if (
            self._committed_max_time is None
            or staged.max_time > self._committed_max_time
        ):
            self._committed_max_time = staged.max_time
        self.report.jobs_committed += len(staged.jobs)
        self.report.batches_committed += 1
        if self._m_committed is not None:
            self._m_committed.inc(len(staged.jobs))
        if self._m_batches is not None:
            self._m_batches.labels(outcome="committed").inc()

    async def _drive(self, limit: float, inclusive: bool = True) -> None:
        """Advance the engine to the watermark, yielding between slices."""
        start = perf_counter()
        while True:
            steps = self.engine.run_until(
                limit, inclusive=inclusive, max_steps=self.config.drive_slice
            )
            self._touch()
            if steps:
                self._scan_placements()
            if steps < self.config.drive_slice:
                break
            await asyncio.sleep(0)
        self.report.drive_seconds += perf_counter() - start
        if self._m_pps is not None and self.report.drive_seconds > 0:
            self._m_pps.set(
                self.engine.num_placements / self.report.drive_seconds
            )

    def _scan_placements(self) -> None:
        """Observe admission→first-placement latency for new placements.

        Tracks progress against ``engine.num_placements`` (not the log
        length), so a bounded placement log still yields latencies: the
        scan walks only entries that appeared since the last scan.  If a
        capped log evicted entries *between* scans (more new placements
        than the cap holds), the loss is counted in
        ``report.latency_scan_misses`` and warned about once — degraded
        coverage is never silent.
        """
        total = self.engine.num_placements
        new = total - self._log_seen
        if new == 0:
            return
        log = self.engine.placement_log
        missed = new - len(log) if new > len(log) else 0
        if missed:
            self.report.latency_scan_misses += missed
            if not self._latency_warned:
                self._latency_warned = True
                warnings.warn(
                    f"placement log cap ({len(log)}) evicted {missed} "
                    "placements before the latency scan; raise "
                    "max_placement_log (or lower drive_slice) for full "
                    "placement-latency coverage",
                    RuntimeWarning,
                    stacklevel=2,
                )
        now = self._now()
        start = len(log) - (new - missed)
        for task, _machine, _time, _booked in islice(log, start, len(log)):
            admitted_at = self._admit_wall.pop(task.job.name, None)
            if admitted_at is not None:
                latency = now - admitted_at
                self._latency_hist.observe(latency)
                if self._m_latency is not None:
                    self._m_latency.observe(latency)
                if self._win_latency is not None:
                    self._win_latency.add(now, latency)
        if self._win_placements is not None:
            self._win_placements.add(now, float(new))
        self._log_seen = total

    def _checkpoint_profiler(self, now: float) -> None:
        """Append a profiler checkpoint for the rolling profile view."""
        profiler = self.engine.profiler
        if profiler is None or self.config.window_seconds is None:
            return
        counts = {
            label: (
                profiler.stats(label).count,
                profiler.stats(label).total,
                profiler.self_total(label),
            )
            for label in profiler.labels()
        }
        self._profile_ring.append((now, counts))
        floor = now - 2.0 * self.config.window_seconds
        while self._profile_ring and self._profile_ring[0][0] < floor:
            self._profile_ring.popleft()

    def _update_window_gauges(self) -> None:
        """Refresh the rolling-window gauges (consumer loop only)."""
        self._checkpoint_profiler(self._now())
        if self._win_placements is None:
            return
        now = self._now()
        if self._m_win_pps is not None:
            self._m_win_pps.set(self._win_placements.rate(now))
        if self._m_win_latency is not None:
            for q in (0.5, 0.95, 0.99):
                value = self._win_latency.quantile(q, now)
                self._m_win_latency.labels(quantile=str(q)).set(
                    0.0 if math.isnan(value) else value
                )
        if self._m_win_reject is not None:
            offered = self._win_offered.total(now)
            rejected = self._win_rejected.total(now)
            self._m_win_reject.set(rejected / offered if offered else 0.0)

    # -- live introspection (telemetry-plane surface) -----------------------------
    def window_snapshot(self) -> Optional[Dict[str, object]]:
        """The rolling-window readings as plain values (``None`` when
        windows are disabled).  Quantiles of an empty window export as
        ``None`` — strict JSON has no NaN."""
        if self._win_placements is None:
            return None
        now = self._now()

        def finite(q: float) -> Optional[float]:
            value = self._win_latency.quantile(q, now)
            return None if math.isnan(value) else value

        offered = self._win_offered.total(now)
        return {
            "seconds": self.config.window_seconds,
            "placements_per_sec": self._win_placements.rate(now),
            "latency_p50": finite(0.5),
            "latency_p95": finite(0.95),
            "latency_p99": finite(0.99),
            "admission_reject_rate": (
                self._win_rejected.total(now) / offered if offered else 0.0
            ),
        }

    def profile_snapshot(self) -> Dict[str, object]:
        """Live :class:`Profiler` phase snapshot (the ``/debug/profile``
        payload).

        Per phase: cumulative wall time, **self** time (cumulative minus
        nested phases), count and moments since start, plus — when the
        rolling window is on and a checkpoint old enough exists — the
        phase's rate and busy fraction over the trailing window.  Safe
        to call from the telemetry plane's HTTP threads: it only reads;
        the consumer loop owns all writes.
        """
        profiler = self.engine.profiler
        if profiler is None:
            return {
                "enabled": False,
                "phases": {},
                "note": "serve daemon is running without a profiler",
            }
        now = self._now()
        window = self.config.window_seconds
        base = None
        if window is not None:
            for t, counts in self._profile_ring:
                if t >= now - window:
                    base = (t, counts)
                    break
        phases: Dict[str, Dict[str, object]] = {}
        # the consumer may register a new phase mid-iteration; re-read
        # on the (rare) mutation instead of locking the hot path
        for _ in range(3):
            try:
                labels = profiler.labels()
                break
            except RuntimeError:  # pragma: no cover - needs a data race
                continue
        else:  # pragma: no cover
            labels = profiler.labels()
        for label in labels:
            stats = profiler.stats(label)
            entry: Dict[str, object] = {
                "count": stats.count,
                "total_seconds": stats.total,
                "self_seconds": profiler.self_total(label),
                "mean_ms": stats.mean * 1e3,
                "max_ms": stats.max * 1e3,
                "stddev_ms": stats.stddev * 1e3,
            }
            if base is not None and now > base[0]:
                span = now - base[0]
                then_count, then_total, then_self = base[1].get(
                    label, (0, 0.0, 0.0)
                )
                d_count = stats.count - then_count
                d_total = stats.total - then_total
                entry["window"] = {
                    "seconds": span,
                    "rate_per_sec": d_count / span,
                    "busy_fraction": d_total / span,
                    "self_fraction": (
                        (profiler.self_total(label) - then_self) / span
                    ),
                    "mean_ms": (
                        d_total / d_count * 1e3 if d_count > 0 else None
                    ),
                }
            phases[label] = entry
        return {
            "enabled": True,
            "phase": self._phase,
            "uptime_seconds": (
                now - self._started_wall
                if self._started_wall is not None
                else 0.0
            ),
            "window_seconds": window,
            "checkpoints": len(self._profile_ring),
            "phases": phases,
        }

    def health(self) -> Dict[str, object]:
        """Liveness snapshot (the ``/healthz`` payload).

        Safe to call from any thread mid-run: it only reads plain
        attributes and counters.  *Stalled* means the consumer has been
        in an active phase (staging/committing/driving) for longer than
        ``liveness_deadline`` without making progress — idle waiting on
        a paced or empty stream is healthy.  ``watermark.lag_seconds``
        is event-time backlog: how far the engine clock trails the
        newest committed arrival.
        """
        now = self._now()
        stats = self.admission.stats
        engine_now = self.engine.now
        committed_max = self._committed_max_time
        lag = (
            max(committed_max - engine_now, 0.0)
            if committed_max is not None
            else 0.0
        )
        age = now - self._last_progress
        deadline = self.config.liveness_deadline
        stalled = (
            self._phase in ("active", "draining")
            and deadline is not None
            and age > deadline
        )
        violations = self.report.invariant_violations
        healthy = not stalled and violations == 0
        return {
            "healthy": healthy,
            "status": (
                "invariant-violation"
                if violations
                else ("stalled" if stalled else "ok")
            ),
            "phase": self._phase,
            "uptime_seconds": (
                now - self._started_wall
                if self._started_wall is not None
                else 0.0
            ),
            "watermark": {
                "committed_max_time": committed_max,
                "engine_now": engine_now,
                "lag_seconds": lag,
            },
            "queue_depth": self.admission.depth,
            "shed": {
                "rejected_rate": stats.rejected_rate,
                "rejected_queue_full": stats.rejected_queue_full,
                "rejected_closed": stats.rejected_closed,
                "dropped_on_shutdown": self.report.jobs_dropped_on_shutdown,
            },
            "liveness": {
                "last_progress_age_seconds": age,
                "deadline_seconds": deadline,
            },
            "invariant_violations": violations,
        }

    def status_snapshot(self) -> Dict[str, object]:
        """A :class:`ServeReport`-shaped view of the run *so far* (the
        ``/status`` payload), with the live counters the final report
        only fills at shutdown.  Safe to call from any thread."""
        now = self._now()
        stats = self.admission.stats
        report = self.report
        snap = report.as_dict()
        uptime = (
            now - self._started_wall
            if self._started_wall is not None
            else 0.0
        )
        placements = self.engine.num_placements
        drive = report.drive_seconds
        snap["jobs"]["offered"] = stats.offered
        snap["jobs"]["admitted"] = stats.admitted
        snap["jobs"]["finished"] = sum(
            1 for job in self.engine.jobs if job.is_finished
        )
        snap["placements"] = placements
        snap["placements_per_sec"] = placements / drive if drive > 0 else 0.0
        snap["placements_per_wall_sec"] = (
            placements / uptime if uptime > 0 else 0.0
        )
        snap["sim_time"] = self.engine.now
        snap["wall_seconds"] = uptime
        snap["admission"] = stats.as_dict()
        snap["placement_latency"] = dict(
            self._latency_hist.as_dict(),
            scan_misses=report.latency_scan_misses,
        )
        snap["staging_errors"] = list(report.staging_errors)
        snap["phase"] = self._phase
        snap["queue_depth"] = self.admission.depth
        snap["window"] = self.window_snapshot()
        return snap

    def _check_invariants(self) -> None:
        issues = verify_free_vectors(self.engine.cluster)
        self.report.invariant_checks += 1
        if issues:
            self.report.invariant_violations += len(issues)
            if self._m_invariants is not None:
                self._m_invariants.inc(len(issues))

    def _finish_report(self, wall: float) -> ServeReport:
        report = self.report
        report.wall_seconds = wall
        report.jobs_offered = self.admission.stats.offered
        report.jobs_admitted = self.admission.stats.admitted
        report.placements = self.engine.num_placements
        report.tasks_total = sum(
            1 for job in self.engine.jobs for _ in job.all_tasks()
        )
        report.jobs_finished = sum(
            1 for job in self.engine.jobs if job.is_finished
        )
        report.sim_time = self.engine.now
        report.shutdown_reason = self._shutdown_reason
        report.admission = self.admission.stats.as_dict()
        report.placement_latency = dict(
            self._latency_hist.as_dict(),
            scan_misses=report.latency_scan_misses,
        )
        return report
