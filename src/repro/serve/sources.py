"""Job-arrival sources for the streaming scheduler service.

A source is an async iterator of :class:`Arrival` records in
nondecreasing *event time* (the simulated arrival instant).  Wall-clock
pacing is the source's business: a replay source sleeps between arrivals
to reproduce the trace's arrival process at a configurable time
compression, while ``speedup=0`` (the default) yields arrivals as fast
as the consumer can take them — the mode used for throughput replays and
for the bit-identity property test against the batch engine.

Ordering contract: arrivals must be yielded stable-sorted by event time.
The service's watermark discipline (advance the engine strictly below
the latest committed arrival time) relies on it, and the stable order
among equal-time arrivals is what keeps the streamed event sequence
bit-identical to the batch engine's primed one.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import AsyncIterator, List, Optional, Sequence

from repro.resources import DEFAULT_MODEL
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskWork

__all__ = ["Arrival", "JobSource", "TraceReplaySource", "SyntheticSource"]


@dataclass(frozen=True)
class Arrival:
    """One job arriving at simulated time ``time`` (== ``job.arrival_time``)."""

    job: Job
    time: float


class JobSource:
    """Base class: an ordered, optionally wall-paced stream of arrivals."""

    #: total jobs this source will yield, when known in advance (None for
    #: unbounded generators)
    total_jobs: Optional[int] = None

    def arrivals(self) -> AsyncIterator[Arrival]:
        raise NotImplementedError


async def _pace(delay: float) -> None:
    if delay > 0:
        await asyncio.sleep(delay)


class TraceReplaySource(JobSource):
    """Replay materialized jobs at their trace arrival times.

    ``speedup`` compresses time: ``speedup=60`` replays one simulated
    minute per wall second; ``speedup=0`` (or ``None``) disables pacing
    entirely and yields arrivals back-to-back.  Jobs are yielded
    stable-sorted by arrival time, so a trace whose records are not
    time-ordered still satisfies the source ordering contract while
    equal-time jobs keep their trace order (the batch engine's
    tie-break).
    """

    def __init__(self, jobs: Sequence[Job], speedup: float = 0.0):
        if speedup < 0:
            raise ValueError(f"speedup must be non-negative, got {speedup}")
        self._jobs: List[Job] = sorted(jobs, key=lambda j: j.arrival_time)
        self.speedup = speedup
        self.total_jobs = len(self._jobs)

    async def arrivals(self) -> AsyncIterator[Arrival]:
        prev = self._jobs[0].arrival_time if self._jobs else 0.0
        for job in self._jobs:
            if self.speedup > 0:
                await _pace((job.arrival_time - prev) / self.speedup)
            prev = job.arrival_time
            yield Arrival(job, job.arrival_time)


class SyntheticSource(JobSource):
    """Generate a continuous stream of single-stage compute jobs.

    The generator drip-feeds ``num_jobs`` jobs, one every
    ``interarrival`` simulated seconds, each with ``tasks_per_job``
    identical pure-compute tasks (no inputs, so building a job touches
    no cluster state — generation stays strictly tentative until the
    service commits it).  ``speedup`` paces wall-clock delivery exactly
    as in :class:`TraceReplaySource`.
    """

    def __init__(
        self,
        num_jobs: int,
        tasks_per_job: int = 10,
        interarrival: float = 1.0,
        cpu: float = 2.0,
        mem: float = 4.0,
        cpu_work: float = 6.0,
        start_time: float = 0.0,
        name_prefix: str = "gen",
        speedup: float = 0.0,
    ):
        if num_jobs < 0:
            raise ValueError("num_jobs must be non-negative")
        if interarrival < 0:
            raise ValueError("interarrival must be non-negative")
        if speedup < 0:
            raise ValueError(f"speedup must be non-negative, got {speedup}")
        self.num_jobs = num_jobs
        self.tasks_per_job = tasks_per_job
        self.interarrival = interarrival
        self.cpu = cpu
        self.mem = mem
        self.cpu_work = cpu_work
        self.start_time = start_time
        self.name_prefix = name_prefix
        self.speedup = speedup
        self.total_jobs = num_jobs

    def _make_job(self, index: int) -> Job:
        tasks = [
            Task(
                DEFAULT_MODEL.vector(cpu=self.cpu, mem=self.mem),
                TaskWork(cpu_core_seconds=self.cpu_work),
            )
            for _ in range(self.tasks_per_job)
        ]
        return Job(
            [Stage("work", tasks)],
            arrival_time=self.start_time + index * self.interarrival,
            name=f"{self.name_prefix}-{index}",
        )

    async def arrivals(self) -> AsyncIterator[Arrival]:
        for index in range(self.num_jobs):
            if self.speedup > 0 and index > 0:
                await _pace(self.interarrival / self.speedup)
            job = self._make_job(index)
            yield Arrival(job, job.arrival_time)
