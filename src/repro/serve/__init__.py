"""Streaming scheduler service: the simulator as a long-lived daemon.

Tetris runs inside the cluster RM as a continuously-serving scheduler
(Section 5), not as a batch replay.  This package turns the discrete-event
engine into exactly that:

- :mod:`repro.serve.sources` — continuous job-arrival streams: trace
  replay at configurable time compression, plus a synthetic generator;
- :mod:`repro.serve.admission` — the admission controller: a token-bucket
  rate limit in front of a bounded pending queue, with explicit
  backpressure/reject accounting;
- :mod:`repro.serve.service` — :class:`SchedulerService`, the asyncio
  daemon that stages admitted arrival batches, commits them into the
  engine under an event-time watermark, and reports sustained
  placements/sec.

The core correctness invariant (learned the hard way by event-driven
scheduler comparisons): **in-batch tentative state is kept strictly
separate from authoritative cluster state until commit**.  Staging a
batch touches neither the engine, the cluster, nor any machine's free
vector — an aborted batch leaves nothing to undo, so free vectors can
never be double-deducted.  :func:`verify_free_vectors` re-derives every
machine's allocation from first principles after commits to prove it.
"""

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
)
from repro.serve.service import (
    SchedulerService,
    ServeConfig,
    ServeReport,
    StagingError,
    verify_free_vectors,
)
from repro.serve.sources import (
    Arrival,
    JobSource,
    SyntheticSource,
    TraceReplaySource,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "Arrival",
    "JobSource",
    "SchedulerService",
    "ServeConfig",
    "ServeReport",
    "StagingError",
    "SyntheticSource",
    "TraceReplaySource",
    "verify_free_vectors",
]
