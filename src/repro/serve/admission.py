"""Admission control for the streaming scheduler service.

Arrivals pass through two gates before reaching the pending queue:

1. a **token bucket** (reusing :class:`repro.enforcement.token_bucket.
   TokenBucket`, the paper's Section 4.2 enforcement primitive) limits
   the sustained admission rate, with the bucket size bounding bursts;
2. a **bounded pending queue** caps how many admitted-but-uncommitted
   arrivals the service holds — the memory bound of the daemon.

What happens at a full queue is the backpressure policy: ``"reject"``
sheds the arrival (load-shedding, the default for a daemon that must
stay responsive), ``"block"`` suspends the producer until the consumer
drains a slot (classic backpressure, the mode for lossless replays).
Every decision is accounted in :class:`AdmissionStats` — rejects are
*explicit*, never silent.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.enforcement.token_bucket import TokenBucket
from repro.serve.sources import Arrival

__all__ = ["AdmissionConfig", "AdmissionController", "AdmissionStats"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission knobs.

    ``rate`` is the sustained admission rate in jobs per wall-clock
    second (None = unlimited); ``burst`` the token-bucket capacity in
    jobs; ``queue_cap`` the pending-queue bound; ``policy`` what a full
    queue does to a new arrival (``"reject"`` or ``"block"``).
    """

    rate: Optional[float] = None
    burst: float = 8.0
    queue_cap: int = 1024
    policy: str = "reject"

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        if self.queue_cap < 1:
            raise ValueError(
                f"queue_cap must be at least 1, got {self.queue_cap}"
            )
        if self.policy not in ("reject", "block"):
            raise ValueError(
                f"policy must be 'reject' or 'block', got {self.policy!r}"
            )


@dataclass
class AdmissionStats:
    """Explicit accounting of every admission decision."""

    offered: int = 0
    admitted: int = 0
    rejected_rate: int = 0
    rejected_queue_full: int = 0
    rejected_closed: int = 0
    #: wall seconds producers spent suspended by the "block" policy
    blocked_seconds: float = 0.0
    peak_depth: int = 0

    @property
    def rejected(self) -> int:
        return (
            self.rejected_rate
            + self.rejected_queue_full
            + self.rejected_closed
        )

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejected_rate": self.rejected_rate,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_closed": self.rejected_closed,
            "blocked_seconds": self.blocked_seconds,
            "peak_depth": self.peak_depth,
        }


class AdmissionController:
    """Token-bucket rate limit in front of a bounded pending queue.

    ``clock`` supplies wall time for the bucket (defaults to the running
    loop's monotonic clock); tests inject a fake clock to exercise rate
    rejection deterministically.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.config = config if config is not None else AdmissionConfig()
        self.stats = AdmissionStats()
        self._clock = clock
        self._bucket: Optional[TokenBucket] = None
        if self.config.rate is not None:
            self._bucket = TokenBucket(
                rate=self.config.rate, burst=self.config.burst
            )
        self._queue: Deque[Arrival] = deque()
        self._closed = False
        self._state_changed = asyncio.Condition()

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- producer side -----------------------------------------------------------
    async def offer(self, arrival: Arrival) -> bool:
        """Submit one arrival; returns True iff it entered the queue.

        A rate-limited or queue-full (under ``"reject"``) arrival is
        shed and accounted.  Under ``"block"`` a full queue suspends the
        caller until space opens — the explicit backpressure path.
        """
        self.stats.offered += 1
        if self._closed:
            self.stats.rejected_closed += 1
            return False
        if self._bucket is not None and not self._bucket.try_consume(
            1.0, self._now()
        ):
            self.stats.rejected_rate += 1
            return False
        async with self._state_changed:
            if len(self._queue) >= self.config.queue_cap:
                if self.config.policy == "reject":
                    self.stats.rejected_queue_full += 1
                    return False
                blocked_from = self._now()
                await self._state_changed.wait_for(
                    lambda: self._closed
                    or len(self._queue) < self.config.queue_cap
                )
                self.stats.blocked_seconds += self._now() - blocked_from
                if self._closed:
                    self.stats.rejected_closed += 1
                    return False
            self._queue.append(arrival)
            self.stats.admitted += 1
            self.stats.peak_depth = max(
                self.stats.peak_depth, len(self._queue)
            )
            self._state_changed.notify_all()
        return True

    async def close(self) -> None:
        """No more offers will be accepted; wakes all waiters."""
        async with self._state_changed:
            self._closed = True
            self._state_changed.notify_all()

    # -- consumer side -----------------------------------------------------------
    async def next_batch(
        self, max_batch: int = 64
    ) -> Optional[List[Arrival]]:
        """Take up to ``max_batch`` queued arrivals, waiting for at least
        one; returns None once the controller is closed *and* drained."""
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        async with self._state_changed:
            await self._state_changed.wait_for(
                lambda: self._queue or self._closed
            )
            if not self._queue:
                return None
            batch = [
                self._queue.popleft()
                for _ in range(min(max_batch, len(self._queue)))
            ]
            # slots opened: wake producers blocked on backpressure
            self._state_changed.notify_all()
            return batch
