"""Numba ``@njit`` kernels for the packing hot path.

Importing this module requires numba; the registry in
:mod:`repro.kernels` treats an ImportError as "backend unavailable".

The loops mirror the scalar reference exactly — sequential
ascending-index reductions, the same ``<= free + eps`` compare — so the
compiled kernels stay bit-identical to both the scalar oracle and the
numpy expressions (which degenerate to sequential summation at the
small dimension counts used by the resource models here).
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["fit_rows", "dot_rows", "combine_scores"]


@njit(cache=True)
def fit_rows(booked: np.ndarray, free: np.ndarray, eps: float) -> np.ndarray:
    n, dims = booked.shape
    out = np.empty(n, dtype=np.bool_)
    for i in range(n):
        ok = True
        for j in range(dims):
            if not booked[i, j] <= free[j] + eps:
                ok = False
                break
        out[i] = ok
    return out


@njit(cache=True)
def dot_rows(rows: np.ndarray, vec: np.ndarray) -> np.ndarray:
    n, dims = rows.shape
    out = np.empty(n)
    for i in range(n):
        acc = 0.0
        for j in range(dims):
            acc += rows[i, j] * vec[j]
        out[i] = acc
    return out


@njit(cache=True)
def combine_scores(
    align: np.ndarray, remaining: np.ndarray, w: float, srtf_w: float
) -> np.ndarray:
    n = align.shape[0]
    out = np.empty(n)
    for i in range(n):
        out[i] = w * align[i] - srtf_w * remaining[i]
    return out
