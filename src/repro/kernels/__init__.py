"""Pluggable kernel backends for the packing hot path.

The inner loops of the vectorized Tetris fill loop — the fit mask, the
alignment dot, and the score combine — are small dense-array kernels.
This package routes them through a registry so the same scheduler code
can run on:

- ``numpy`` (default): vectorized numpy expressions;
- ``numba``: ``@njit``-compiled loops, auto-detected — selecting it
  when numba is not importable raises, and :func:`available_backends`
  reports only what is usable;
- ``scalar``: pure-python reference loops, retained as the
  bit-identical oracle.

Every backend implements the same float semantics: elementwise
compares with the shared ``EPSILON`` slack, and sum reductions in
ascending-index order.  The resource models used here have at most a
handful of dimensions, where numpy's pairwise summation degenerates to
the same sequential order — which is what lets all three backends (and
the scalar object-path scheduler) produce bit-identical scores.  The
property suite in ``tests/test_soa_identity.py`` enforces this across
seeds.

Selection: ``get_backend(None)`` honours the ``REPRO_BACKEND``
environment variable and falls back to ``numpy``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "KernelBackend",
    "available_backends",
    "get_backend",
    "DEFAULT_BACKEND",
]

DEFAULT_BACKEND = "numpy"

#: environment override consulted when no explicit backend is named
ENV_VAR = "REPRO_BACKEND"


class KernelBackend:
    """One kernel implementation set.

    Attributes
    ----------
    name:
        Registry key (``scalar`` / ``numpy`` / ``numba``).
    vectorized:
        Whether the scheduler should run its batched fill loop (True)
        or the scalar reference loop (False).
    fit_rows:
        ``(rows, dims) booked × (dims,) free -> (rows,) bool``: which
        rows fit under ``free`` with ``eps`` slack on every dimension.
    dot_rows:
        ``(rows, dims) × (dims,) -> (rows,) float``: per-row dot
        product reduced in ascending index order.
    combine_scores:
        ``w * align - srtf_w * remaining`` elementwise.
    """

    __slots__ = ("name", "vectorized", "fit_rows", "dot_rows", "combine_scores")

    def __init__(
        self,
        name: str,
        vectorized: bool,
        fit_rows: Callable[[np.ndarray, np.ndarray, float], np.ndarray],
        dot_rows: Callable[[np.ndarray, np.ndarray], np.ndarray],
        combine_scores: Callable[
            [np.ndarray, np.ndarray, float, float], np.ndarray
        ],
    ):
        self.name = name
        self.vectorized = vectorized
        self.fit_rows = fit_rows
        self.dot_rows = dot_rows
        self.combine_scores = combine_scores

    def __repr__(self) -> str:
        return f"KernelBackend({self.name!r}, vectorized={self.vectorized})"


# -- numpy (default) -------------------------------------------------------

def _np_fit_rows(booked: np.ndarray, free: np.ndarray, eps: float) -> np.ndarray:
    return (booked <= free + eps).all(axis=1)


def _np_dot_rows(rows: np.ndarray, vec: np.ndarray) -> np.ndarray:
    # elementwise product + axis sum (not BLAS dot): at <= 8 dims the
    # axis reduction is sequential, matching the scalar oracle
    return (rows * vec).sum(axis=1)


def _np_combine(
    align: np.ndarray, remaining: np.ndarray, w: float, srtf_w: float
) -> np.ndarray:
    return w * align - srtf_w * remaining


# -- scalar reference ------------------------------------------------------

def _sc_fit_rows(booked: np.ndarray, free: np.ndarray, eps: float) -> np.ndarray:
    n, dims = booked.shape
    out = np.empty(n, dtype=bool)
    for i in range(n):
        ok = True
        for j in range(dims):
            if not booked[i, j] <= free[j] + eps:
                ok = False
                break
        out[i] = ok
    return out


def _sc_dot_rows(rows: np.ndarray, vec: np.ndarray) -> np.ndarray:
    n, dims = rows.shape
    out = np.empty(n)
    for i in range(n):
        acc = 0.0
        for j in range(dims):
            acc += rows[i, j] * vec[j]
        out[i] = acc
    return out


def _sc_combine(
    align: np.ndarray, remaining: np.ndarray, w: float, srtf_w: float
) -> np.ndarray:
    n = align.shape[0]
    out = np.empty(n)
    for i in range(n):
        out[i] = w * align[i] - srtf_w * remaining[i]
    return out


_REGISTRY: Dict[str, KernelBackend] = {
    "numpy": KernelBackend(
        "numpy", True, _np_fit_rows, _np_dot_rows, _np_combine
    ),
    "scalar": KernelBackend(
        "scalar", False, _sc_fit_rows, _sc_dot_rows, _sc_combine
    ),
}


def _try_numba() -> Optional[KernelBackend]:
    if "numba" in _REGISTRY:
        return _REGISTRY["numba"]
    try:
        from repro.kernels import numba_backend
    except ImportError:
        return None
    backend = KernelBackend(
        "numba",
        True,
        numba_backend.fit_rows,
        numba_backend.dot_rows,
        numba_backend.combine_scores,
    )
    _REGISTRY["numba"] = backend
    return backend


def available_backends() -> List[str]:
    """Backends usable in this process (numba only when importable)."""
    names = ["scalar", "numpy"]
    if _try_numba() is not None:
        names.append("numba")
    return names


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend by name, ``$REPRO_BACKEND``, or the default.

    Raises ``ValueError`` for unknown names and for ``numba`` when the
    package is not importable.
    """
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    name = name.lower()
    if name == "numba":
        backend = _try_numba()
        if backend is None:
            raise ValueError(
                "kernel backend 'numba' requested but numba is not "
                "installed (available: " + ", ".join(available_backends()) + ")"
            )
        return backend
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
