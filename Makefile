# Convenience targets for the Tetris reproduction.

PYTHON ?= python

.PHONY: install test bench bench-profiles bench-gate bench-history bench-trend serve sweep figures examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-profiles:
	$(PYTHON) -m repro bench run --quick -o bench-out

bench-gate: bench-profiles
	$(PYTHON) -m repro bench compare --current bench-out

# Capture the quick set and append to the per-commit history store
# (.bench-history/), refreshing the BENCH_<scenario>.json trajectory
# artifacts at the repo root (see docs/benchmarking.md).
bench-history:
	$(PYTHON) -m repro bench run --quick -o bench-out --history

# Per-commit perf trend of one scenario (SCENARIO=smoke by default).
SCENARIO ?= smoke
bench-trend:
	$(PYTHON) -m repro bench history --scenario $(SCENARIO)

# Streaming scheduler daemon over a generated trace (see docs/serving.md).
serve:
	$(PYTHON) -m repro generate --kind facebook --jobs 60 --horizon 1500 \
		--seed 7 -o serve-trace.json
	$(PYTHON) -m repro serve serve-trace.json --machines 20 \
		--json serve-report.json
	@echo "wrote serve-report.json"

# Parallel scheduler-comparison sweep over a generated workload.
# WORKERS controls the process pool (results are bit-identical to serial).
WORKERS ?= 4
sweep:
	$(PYTHON) -m repro generate --kind suite --jobs 30 --horizon 400 \
		--seed 1 -o sweep-trace.json
	$(PYTHON) -m repro compare sweep-trace.json --machines 20 \
		--schedulers tetris,slot-fair,drf,fifo --baseline fifo \
		--workers $(WORKERS) --json sweep-out.json
	@echo "wrote sweep-out.json"

figures:
	$(PYTHON) -m repro figures -o figures/

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; \
		$(PYTHON) $$f || exit 1; \
	done

clean:
	rm -rf figures/ .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
