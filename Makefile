# Convenience targets for the Tetris reproduction.

PYTHON ?= python

.PHONY: install test bench bench-profiles bench-gate figures examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-profiles:
	$(PYTHON) -m repro bench run --quick -o bench-out

bench-gate: bench-profiles
	$(PYTHON) -m repro bench compare --current bench-out

figures:
	$(PYTHON) -m repro figures -o figures/

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; \
		$(PYTHON) $$f || exit 1; \
	done

clean:
	rm -rf figures/ .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
