"""Baseline scheduler behavior tests: FIFO, slot-fair, capacity, DRF."""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.sim.engine import Engine, EngineConfig

from conftest import make_simple_job, make_task


def schedule_once(scheduler, jobs, num_machines=2):
    """Bind, arrive every job, and run one scheduling round."""
    cluster = Cluster(num_machines, machines_per_rack=2)
    scheduler.bind(cluster)
    for job in jobs:
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
    placements = scheduler.schedule(0.0)
    return cluster, placements


class TestFifo:
    def test_earlier_job_served_first(self):
        early = make_simple_job(num_tasks=64, arrival_time=0.0, cpu=8,
                                mem=24, name="early")
        late = make_simple_job(num_tasks=64, arrival_time=1.0, cpu=8,
                               mem=24, name="late")
        _, placements = schedule_once(FifoScheduler(), [early, late])
        # 2 machines x 2 tasks of (8 cpu / 24 mem) fit; all go to 'early'
        assert placements
        assert all(p.task.job.name == "early" for p in placements)

    def test_respects_cpu_and_memory(self):
        job = make_simple_job(num_tasks=10, cpu=8, mem=4)
        cluster, placements = schedule_once(FifoScheduler(), [job],
                                            num_machines=1)
        assert len(placements) == 2  # 16 cores / 8

    def test_ignores_network(self):
        """FIFO books network far beyond capacity — the over-allocation
        pathology."""
        tasks = 6
        from repro.workload.task import TaskInput

        job = make_simple_job(num_tasks=tasks, cpu=1, mem=1)
        for task in job.all_tasks():
            task.demands.set("netin", 100.0)
            task.inputs.append(TaskInput(10, (9,)))
        scheduler = FifoScheduler()
        scheduler.locality_delay = 0  # accept remote slots immediately
        cluster, placements = schedule_once(scheduler, [job],
                                            num_machines=1)
        # netin capacity is 125 but 6 x 100 get booked
        assert len(placements) == 6


class TestSlotFair:
    def test_slots_per_machine(self):
        scheduler = SlotFairScheduler(slot_mem_gb=2.0)
        scheduler.bind(Cluster(2))
        assert scheduler.slots_per_machine() == 24  # 48 GB / 2

    def test_task_slots_rounds_up(self):
        scheduler = SlotFairScheduler(slot_mem_gb=2.0)
        scheduler.bind(Cluster(1))
        assert scheduler.task_slots(make_task(mem=2.0)) == 1
        assert scheduler.task_slots(make_task(mem=3.0)) == 2
        assert scheduler.task_slots(make_task(mem=0.5)) == 1

    def test_fair_split_between_jobs(self):
        a = make_simple_job(num_tasks=100, mem=2, name="a")
        b = make_simple_job(num_tasks=100, mem=2, name="b")
        _, placements = schedule_once(
            SlotFairScheduler(slot_mem_gb=2.0), [a, b], num_machines=1
        )
        by_job = {"a": 0, "b": 0}
        for p in placements:
            by_job[p.task.job.name] += 1
        assert by_job["a"] == by_job["b"] == 12  # 24 slots split evenly

    def test_over_allocates_cpu(self):
        """Slots are defined on memory only; CPU gets oversubscribed."""
        job = make_simple_job(num_tasks=30, cpu=2, mem=2)
        cluster, placements = schedule_once(
            SlotFairScheduler(slot_mem_gb=2.0), [job], num_machines=1
        )
        assert len(placements) == 24  # every slot filled
        booked_cpu = sum(p.booked.get("cpu") for p in placements)
        assert booked_cpu == 48 > 16  # 3x the machine's cores

    def test_invalid_slot_size(self):
        with pytest.raises(ValueError):
            SlotFairScheduler(slot_mem_gb=0)

    def test_slots_returned_on_finish(self):
        job = make_simple_job(num_tasks=4, mem=2, cpu_work=5)
        cluster = Cluster(1)
        scheduler = SlotFairScheduler()
        engine = Engine(cluster, scheduler, [job])
        engine.run()
        assert scheduler._slots_free[0] == scheduler.slots_per_machine()


class TestCapacity:
    def test_round_robin_queue_assignment(self):
        scheduler = CapacityScheduler(num_queues=2)
        scheduler.bind(Cluster(1))
        jobs = [make_simple_job(num_tasks=1) for _ in range(4)]
        for job in jobs:
            job.arrive()
            scheduler.on_job_arrival(job, 0.0)
        queues = [scheduler._queue_of_job[j.job_id] for j in jobs]
        assert queues == [0, 1, 0, 1]

    def test_explicit_shares_normalized(self):
        scheduler = CapacityScheduler(queue_shares=[3, 1])
        assert scheduler.queue_shares == [0.75, 0.25]

    def test_invalid_shares(self):
        with pytest.raises(ValueError):
            CapacityScheduler(queue_shares=[0, 0])
        with pytest.raises(ValueError):
            CapacityScheduler(num_queues=0)

    def test_fifo_within_queue(self):
        scheduler = CapacityScheduler(num_queues=1)
        early = make_simple_job(num_tasks=60, mem=2, arrival_time=0.0,
                                name="early")
        late = make_simple_job(num_tasks=60, mem=2, arrival_time=1.0,
                               name="late")
        _, placements = schedule_once(scheduler, [early, late],
                                      num_machines=1)
        assert all(p.task.job.name == "early" for p in placements)

    def test_runs_end_to_end(self):
        jobs = [make_simple_job(num_tasks=3, arrival_time=i)
                for i in range(3)]
        cluster = Cluster(2, machines_per_rack=2)
        Engine(cluster, CapacityScheduler(), jobs).run()
        assert all(j.is_finished for j in jobs)


class TestDRF:
    def test_lowest_dominant_share_served_first(self):
        # job a is memory-heavy, job b cpu-heavy
        a = make_simple_job(num_tasks=50, cpu=1, mem=12, name="a")
        b = make_simple_job(num_tasks=50, cpu=4, mem=1, name="b")
        cluster, placements = schedule_once(DRFScheduler(), [a, b],
                                            num_machines=1)
        by_job = {"a": 0, "b": 0}
        for p in placements:
            by_job[p.task.job.name] += 1
        # dominant shares equalize: a's memory share ~ b's cpu share
        a_share = by_job["a"] * 12 / 48
        b_share = by_job["b"] * 4 / 16
        assert abs(a_share - b_share) <= 0.25 + 1e-9
        assert by_job["a"] >= 1 and by_job["b"] >= 1

    def test_checks_only_its_dims(self):
        job = make_simple_job(num_tasks=10, cpu=2, mem=2)
        for task in job.all_tasks():
            task.demands.set("diskw", 150.0)
            task.work.write_mb = 100.0
        cluster, placements = schedule_once(DRFScheduler(), [job],
                                            num_machines=1)
        # disk would limit to 1 task; DRF happily places 8 (cpu-bound)
        assert len(placements) == 8

    def test_needs_dims(self):
        with pytest.raises(ValueError):
            DRFScheduler(dims=())

    def test_extended_dims(self):
        scheduler = DRFScheduler(dims=("cpu", "mem", "netin"))
        scheduler.locality_delay = 0  # accept remote slots immediately
        job = make_simple_job(num_tasks=10, cpu=1, mem=1)
        from repro.workload.task import TaskInput
        for task in job.all_tasks():
            task.demands.set("netin", 60.0)
            task.inputs.append(TaskInput(10, (99,)))
        # placing on machine 0, inputs at "machine 99" (remote) -> netin
        cluster, placements = schedule_once(scheduler, [job],
                                            num_machines=1)
        assert len(placements) == 2  # 125 // 60

    def test_runs_end_to_end(self):
        jobs = [make_simple_job(num_tasks=4, arrival_time=i)
                for i in range(3)]
        cluster = Cluster(2, machines_per_rack=2)
        Engine(cluster, DRFScheduler(), jobs).run()
        assert all(j.is_finished for j in jobs)
